"""The simulator-PC end of the PIL link.

A PC UART: exact baud (no divider quantization worth modelling), a paced
transmit path, and a receive buffer.  It shares the MCU device's event
scheduler so the whole PIL system lives on one coherent timeline.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .line import Scheduler, SerialLine

BITS_PER_FRAME = 10  # 8N1


class HostSerialPort:
    """PC-side COM port bound to one endpoint of a :class:`SerialLine`."""

    def __init__(self, scheduler: Scheduler, baud: float):
        if baud <= 0:
            raise ValueError("baud must be positive")
        self.scheduler = scheduler
        self.baud = float(baud)
        self.line: Optional[SerialLine] = None
        self.endpoint: Optional[int] = None
        self._tx_fifo: deque[int] = deque()
        self._tx_busy = False
        self._rx_buffer = bytearray()
        self.on_byte: Optional[Callable[[int], None]] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def byte_time(self) -> float:
        return BITS_PER_FRAME / self.baud

    def connect(self, line: SerialLine, endpoint: int) -> None:
        self.line = line
        self.endpoint = endpoint
        line.bind(endpoint, self._on_wire_byte)
        line.declare_baud(endpoint, self.baud)

    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Queue bytes; pacing at one frame per byte time."""
        self._tx_fifo.extend(data)
        self._pump()

    def _pump(self) -> None:
        if self._tx_busy or not self._tx_fifo:
            return
        byte = self._tx_fifo.popleft()
        self._tx_busy = True

        def shifted() -> None:
            self._tx_busy = False
            self.bytes_sent += 1
            if self.line is not None and self.endpoint is not None:
                self.line.transmit(self.endpoint, byte, self.byte_time)
            self._pump()

        self.scheduler.schedule(self.scheduler.time + self.byte_time, shifted)

    def flush_tx(self) -> int:
        """Abort queued (not yet shifting) bytes; returns how many were
        discarded.  Recovery resync uses this to stop a stale backlog."""
        n = len(self._tx_fifo)
        self._tx_fifo.clear()
        return n

    @property
    def tx_idle(self) -> bool:
        return not self._tx_busy and not self._tx_fifo

    # ------------------------------------------------------------------
    def _on_wire_byte(self, byte: int) -> None:
        self.bytes_received += 1
        if self.on_byte is not None:
            self.on_byte(byte)
        else:
            self._rx_buffer.append(byte)

    def receive(self) -> bytes:
        """Drain the receive buffer (when no ``on_byte`` callback is set)."""
        out = bytes(self._rx_buffer)
        self._rx_buffer.clear()
        return out
