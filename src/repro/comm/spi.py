"""SPI bus model — the paper's future-work link (section 8).

"The disadvantages of the currently used xPC target are that it is
closed and does not allow us to implement a support for new
communications (e.g. SPI)."

SPI is synchronous and master-paced: the master clocks every transfer,
and each clocked byte moves *both* directions at once (full duplex from
the shift register's point of view).  The slave cannot initiate — it can
only pre-load its transmit FIFO and wait to be clocked, which is why the
PIL adapter built on this bus polls: every master transfer simultaneously
delivers the sensor frame and collects whatever actuation bytes the MCU
has queued.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .line import Scheduler

BITS_PER_WORD = 8


class SPIBus:
    """One master + one slave on a shared event scheduler."""

    def __init__(self, scheduler: Scheduler, clock_hz: float):
        if clock_hz <= 0:
            raise ValueError("SPI clock must be positive")
        self.scheduler = scheduler
        self.clock_hz = float(clock_hz)
        self._slave_tx: deque[int] = deque()
        self.on_slave_rx: Optional[Callable[[bytes], None]] = None
        self._busy = False
        self.bytes_transferred = 0
        self.transfers = 0

    @property
    def byte_time(self) -> float:
        return BITS_PER_WORD / self.clock_hz

    # ------------------------------------------------------------------
    # slave side
    # ------------------------------------------------------------------
    def slave_queue(self, data: bytes) -> None:
        """Pre-load the slave's shift FIFO (clocked out on the next
        master transfer)."""
        self._slave_tx.extend(data)

    @property
    def slave_pending(self) -> int:
        return len(self._slave_tx)

    # ------------------------------------------------------------------
    # master side
    # ------------------------------------------------------------------
    def transfer(
        self,
        master_tx: bytes,
        on_complete: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        """Clock ``len(master_tx)`` bytes; the same clock edges shift the
        slave's queued bytes back (0x00 fill when its FIFO runs dry).
        ``on_complete`` receives the master's received bytes.  A transfer
        while one is in flight is rejected (single chip-select)."""
        if self._busy:
            raise RuntimeError("SPI transfer already in progress")
        self._busy = True
        n = len(master_tx)
        duration = n * self.byte_time

        def complete() -> None:
            self._busy = False
            rx = bytes(
                self._slave_tx.popleft() if self._slave_tx else 0 for _ in range(n)
            )
            self.bytes_transferred += n
            self.transfers += 1
            if self.on_slave_rx is not None and n:
                self.on_slave_rx(bytes(master_tx))
            if on_complete is not None:
                on_complete(rx)

        self.scheduler.schedule(self.scheduler.time + duration, complete)

    @property
    def busy(self) -> bool:
        return self._busy
