"""Communication substrate: the PIL serial link.

Paper section 6: "the communication between the simulator PC and the
development board is provided by RS232 asynchronous serial line ... the
main advantage of this interface is that it is present on any development
board".  The link is deliberately slow, and the paper treats its overhead
as part of what PIL measures — so the wire is modelled, not abstracted:

* :class:`SerialLine` — the cable: two bound endpoints, per-direction byte
  accounting, optional error injection, baud-mismatch corruption.
* :class:`HostSerialPort` — the simulator-PC end (a PC UART with exact
  baud), pacing bytes just like the MCU's SCI does.
* :class:`PacketCodec` / :class:`PacketDecoder` — the framing protocol
  that "composes outcoming communication packets from the signals ... and
  parses incoming packets" with CRC-8 integrity and resynchronisation.
* :class:`ReliableChannel` — selective-repeat ARQ over the framing layer
  (ACK/NAK, duplicate suppression, retransmit with timeout/backoff), so
  a fault on the wire delays data instead of silently losing it.
"""

from .line import SerialLine
from .spi import SPIBus
from .can import CANBus, CANFrame
from .host import HostSerialPort
from .packets import (
    Packet,
    PacketCodec,
    PacketDecoder,
    PacketType,
    crc8,
)
from .reliable import ARQConfig, LinkHealth, ReliableChannel

__all__ = [
    "SerialLine",
    "SPIBus",
    "CANBus",
    "CANFrame",
    "HostSerialPort",
    "Packet",
    "PacketCodec",
    "PacketDecoder",
    "PacketType",
    "crc8",
    "ARQConfig",
    "LinkHealth",
    "ReliableChannel",
]
