"""ARQ reliability layer over the PIL packet protocol.

The raw link (:mod:`repro.comm.packets` over :mod:`repro.comm.line`)
*detects* corruption — CRC-8 plus resynchronisation — but then silently
loses the frame: the controller keeps actuating on stale data.  This
module adds the recovery half: a :class:`ReliableChannel` per endpoint
implements selective-repeat ARQ on top of any raw ``send(bytes)``
primitive:

* every data-bearing frame stays *pending* until the peer's ACK names its
  sequence number;
* a per-frame retransmit timer (configurable timeout, exponential
  backoff, bounded retry budget) re-sends unacknowledged frames;
* the receiver ACKs everything it accepts and suppresses duplicates by
  sequence number (a retransmission whose original did arrive is re-ACKed
  but not delivered twice);
* a CRC failure on the receive side optionally solicits an early
  retransmission with a NAK (rate-limited so a noise burst cannot start a
  NAK storm).

ACK/NAK frames are 5-byte zero-payload control frames whose SEQ field
*is* the reference (see :meth:`PacketCodec.encode_control`); they are not
themselves acknowledged — a lost ACK simply lets the data timer fire and
the duplicate is suppressed.

Everything is driven by the shared event scheduler, so runs are exactly
reproducible: same seeds, same timeline, same retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..obs.trace import get_tracer
from .packets import Packet, PacketCodec, PacketType

#: packet types the ARQ machinery tracks (everything that carries data)
_DATA_BEARING = frozenset(
    {PacketType.DATA, PacketType.ACTUATION, PacketType.EVENT,
     PacketType.SYNC, PacketType.CMD}
)


@dataclass(frozen=True)
class ARQConfig:
    """Tuning knobs of one reliable endpoint."""

    #: first retransmit deadline after a transmission (s); should exceed
    #: frame time + ACK time on the configured link
    timeout: float = 2e-3
    #: deadline multiplier applied per retry (exponential backoff)
    backoff: float = 1.5
    #: retransmissions allowed per frame before the send is abandoned
    max_retries: int = 6
    #: duplicate-suppression window, in sequence numbers (< 256)
    history: int = 64
    #: solicit early retransmission on CRC errors
    nak_enabled: bool = True
    #: stream semantics: a new send of a packet type abandons pending
    #: retries of *older* frames of that type.  Right for periodic
    #: sensor/actuation streams (only the freshest sample matters, and
    #: retrying superseded samples saturates the wire at high error
    #: rates); wrong for message streams where every word must arrive.
    supersede: bool = False

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("ARQ timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("ARQ backoff must be >= 1")
        if not (0 < self.history < 256):
            raise ValueError("ARQ history must be in 1..255 (seq is 8-bit)")


@dataclass
class LinkHealth:
    """Counters one reliable endpoint accumulates over a run."""

    sent: int = 0               # first transmissions of data frames
    retransmits: int = 0        # re-sends (timeout or NAK solicited)
    timeouts: int = 0           # retransmit timer expiries
    send_failures: int = 0      # frames abandoned after the retry budget
    acked: int = 0              # own frames confirmed by the peer
    superseded: int = 0         # pending retries abandoned by newer sends
    duplicates: int = 0         # received dups suppressed
    acks_sent: int = 0
    naks_sent: int = 0
    acks_received: int = 0
    naks_received: int = 0
    resyncs: int = 0            # channel resets (watchdog recovery)

    def merge(self, other: "LinkHealth") -> "LinkHealth":
        """Elementwise sum (combine the two endpoints of a link)."""
        return LinkHealth(**{
            k: getattr(self, k) + getattr(other, k)
            for k in self.__dataclass_fields__
        })


@dataclass
class _Pending:
    frame: bytes
    attempts: int = 0       # retransmissions so far
    generation: int = 0     # invalidates stale timers


class ReliableChannel:
    """One endpoint of an ARQ-protected link.

    Parameters
    ----------
    scheduler:
        the shared event timeline (``.time`` + ``.schedule(t, fn)``)
    raw_send:
        ships an encoded frame towards the peer (e.g. the link adapter's
        ``host_send``/``mcu_send``)
    deliver:
        upper-layer packet sink; called exactly once per accepted frame,
        in arrival order, with duplicates removed
    codec:
        the endpoint's sequence-numbering encoder (a fresh one is created
        when omitted)
    """

    def __init__(
        self,
        scheduler,
        raw_send: Callable[[bytes], None],
        deliver: Callable[[Packet], None],
        config: Optional[ARQConfig] = None,
        codec: Optional[PacketCodec] = None,
        name: str = "arq",
    ):
        self.scheduler = scheduler
        self.raw_send = raw_send
        self.deliver = deliver
        self.config = config or ARQConfig()
        self.codec = codec or PacketCodec()
        self.name = name
        self.health = LinkHealth()
        #: called with the abandoned seq after the retry budget runs out
        self.on_give_up: Optional[Callable[[int], None]] = None
        self._pending: dict[int, _Pending] = {}
        self._seen: dict[int, None] = {}  # insertion-ordered seq window
        self._last_nak_t = -1e30
        self._tracer = get_tracer()

    def _mark(self, event: str, **args) -> None:
        """Trace one frame-lifecycle instant on the shared sim timeline."""
        args["link"] = self.name
        self._tracer.instant(event, cat="link", sim_t=self.scheduler.time,
                             args=args)

    # ------------------------------------------------------------------
    # transmit side
    # ------------------------------------------------------------------
    def send(self, ptype: PacketType, words: Iterable[int]) -> int:
        """Encode, transmit and track one data-bearing frame; returns its
        sequence number (the caller's handle for latency pairing)."""
        frame = self.codec.encode(ptype, words)
        seq = frame[1]
        if self.config.supersede:
            # stream semantics: stop retrying older samples of this type
            stale = [
                s for s, p in self._pending.items() if p.frame[2] == int(ptype)
            ]
            for s in stale:
                del self._pending[s]  # deletion defuses the retry timer
                self.health.superseded += 1
                if self._tracer.enabled:
                    self._mark("link.superseded", seq=s, by=seq)
        # seq reuse after 256 in-flight-less sends: a still-pending frame
        # with the same number is superseded (its data is stale anyway)
        self._pending[seq] = _Pending(frame=frame)
        self.health.sent += 1
        if self._tracer.enabled:
            self._mark("link.send", seq=seq, ptype=ptype.name)
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        entry = self._pending.get(seq)
        if entry is None:
            return
        entry.generation += 1
        gen = entry.generation
        self.raw_send(entry.frame)
        deadline = self.scheduler.time + self.config.timeout * (
            self.config.backoff ** entry.attempts
        )
        self.scheduler.schedule(deadline, lambda: self._expire(seq, gen))

    def _expire(self, seq: int, gen: int) -> None:
        entry = self._pending.get(seq)
        if entry is None or entry.generation != gen:
            return  # acked or superseded meanwhile
        self.health.timeouts += 1
        traced = self._tracer.enabled
        if traced:
            self._mark("link.timeout", seq=seq, attempts=entry.attempts)
        if entry.attempts >= self.config.max_retries:
            del self._pending[seq]
            self.health.send_failures += 1
            if traced:
                self._mark("link.give_up", seq=seq)
            if self.on_give_up is not None:
                self.on_give_up(seq)
            return
        entry.attempts += 1
        self.health.retransmits += 1
        if traced:
            self._mark("link.retransmit", seq=seq, attempts=entry.attempts,
                       cause="timeout")
        self._transmit(seq)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # receive side (wire as the decoder's on_packet / on_error)
    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        if pkt.ptype is PacketType.ACK:
            self.health.acks_received += 1
            if self._pending.pop(pkt.seq, None) is not None:
                self.health.acked += 1
                if self._tracer.enabled:
                    self._mark("link.acked", seq=pkt.seq)
            return
        if pkt.ptype is PacketType.NAK:
            self.health.naks_received += 1
            self._retransmit_oldest()
            return
        if pkt.ptype not in _DATA_BEARING:  # pragma: no cover - future types
            self.deliver(pkt)
            return
        # acknowledge everything that arrives intact — including dups,
        # whose original ACK may have been the casualty
        self.raw_send(self.codec.encode_control(PacketType.ACK, pkt.seq))
        self.health.acks_sent += 1
        if pkt.seq in self._seen:
            self.health.duplicates += 1
            if self._tracer.enabled:
                self._mark("link.duplicate", seq=pkt.seq)
            return
        self._seen[pkt.seq] = None
        while len(self._seen) > self.config.history:
            self._seen.pop(next(iter(self._seen)))
        self.deliver(pkt)

    def on_frame_error(self) -> None:
        """Decoder rejected a frame: solicit an early retransmission
        (rate-limited to one NAK per half timeout)."""
        if not self.config.nak_enabled:
            return
        now = self.scheduler.time
        if now - self._last_nak_t < 0.5 * self.config.timeout:
            return
        self._last_nak_t = now
        self.raw_send(self.codec.encode_control(PacketType.NAK, 0))
        self.health.naks_sent += 1
        if self._tracer.enabled:
            self._mark("link.nak")

    def _retransmit_oldest(self) -> None:
        """NAK response: re-send the oldest pending frame right away (the
        one the corrupted bytes most plausibly belonged to); the
        generation bump supersedes its previous retransmit timer."""
        if not self._pending:
            return
        seq = next(iter(self._pending))
        self._pending[seq].attempts += 1
        self.health.retransmits += 1
        if self._tracer.enabled:
            self._mark("link.retransmit", seq=seq,
                       attempts=self._pending[seq].attempts, cause="nak")
        self._transmit(seq)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Recovery resync: abandon all pending frames and forget the
        duplicate window — both sides restart from a clean slate."""
        self._pending.clear()
        self._seen.clear()
        self.health.resyncs += 1
        if self._tracer.enabled:
            self._mark("link.resync")
