"""Loading and driving a compiled native step-loop extension.

The primary loader is cffi (``FFI.dlopen`` against the four ``nx_*``
symbols); when cffi is absent the plain-stdlib ctypes fallback loads
the same shared object.  Either way the extension *borrows* the
engine's numpy buffers — ``nx_bind`` receives raw ``double*`` views of
``sim.signals`` / ``sim.x``, so every value the C loop writes is
immediately visible to Python (co-simulation taps, scope logging, the
step hook) without copies.
"""

from __future__ import annotations

import ctypes
from typing import Optional

import numpy as np

_CDEF = """
void nx_bind(double *sigs, double *states, const double *dwork_init);
void nx_out_major(long long step);
void nx_finish(long long step);
void nx_run(long long start, long long n, double *scope_out,
            double *trace_out);
"""


class _CffiLib:
    def __init__(self, so_path: str):
        from cffi import FFI

        self._ffi = FFI()
        self._ffi.cdef(_CDEF)
        self._lib = self._ffi.dlopen(so_path)

    def _ptr(self, arr: Optional[np.ndarray]):
        if arr is None:
            return self._ffi.NULL
        return self._ffi.cast("double *", self._ffi.from_buffer(arr))

    def bind(self, sigs, states, dwork_init):
        self._lib.nx_bind(
            self._ptr(sigs), self._ptr(states), self._ptr(dwork_init)
        )

    def out_major(self, step: int):
        self._lib.nx_out_major(step)

    def finish(self, step: int):
        self._lib.nx_finish(step)

    def run(self, start: int, n: int, scope_out, trace_out):
        self._lib.nx_run(
            start, n, self._ptr(scope_out), self._ptr(trace_out)
        )


class _CtypesLib:
    def __init__(self, so_path: str):
        lib = ctypes.CDLL(so_path)
        dp = ctypes.POINTER(ctypes.c_double)
        lib.nx_bind.argtypes = [dp, dp, dp]
        lib.nx_bind.restype = None
        lib.nx_out_major.argtypes = [ctypes.c_longlong]
        lib.nx_out_major.restype = None
        lib.nx_finish.argtypes = [ctypes.c_longlong]
        lib.nx_finish.restype = None
        lib.nx_run.argtypes = [ctypes.c_longlong, ctypes.c_longlong, dp, dp]
        lib.nx_run.restype = None
        self._lib = lib
        self._dp = dp

    def _ptr(self, arr: Optional[np.ndarray]):
        if arr is None:
            return None
        return arr.ctypes.data_as(self._dp)

    def bind(self, sigs, states, dwork_init):
        self._lib.nx_bind(
            self._ptr(sigs), self._ptr(states), self._ptr(dwork_init)
        )

    def out_major(self, step: int):
        self._lib.nx_out_major(step)

    def finish(self, step: int):
        self._lib.nx_finish(step)

    def run(self, start: int, n: int, scope_out, trace_out):
        self._lib.nx_run(start, n, self._ptr(scope_out), self._ptr(trace_out))


def load_library(so_path: str):
    """cffi when available, ctypes otherwise — identical duck type."""
    try:
        return _CffiLib(so_path)
    except ImportError:
        return _CtypesLib(so_path)


class NativePath:
    """A bound native executor for one simulator's buffers.

    ``signals`` must be a contiguous float64 ndarray (the engine swaps
    its scalar list out right before binding); ``states`` is the
    engine's state vector, shared with every ``BlockContext.x`` view.
    """

    def __init__(self, program, so_path: str, signals: np.ndarray,
                 states: Optional[np.ndarray]):
        self.program = program
        self.so_path = so_path
        self._lib = load_library(so_path)
        self._sigs = signals
        self._states = states if program.n_states else None
        self._dwork = (
            np.asarray(program.dwork_init, dtype=np.float64)
            if program.n_dwork else None
        )
        if not isinstance(self._sigs, np.ndarray):
            raise TypeError("bind requires ndarray signals")
        self._lib.bind(self._sigs, self._states, self._dwork)

    def out_major(self, step: int) -> None:
        self._lib.out_major(step)

    def finish(self, step: int) -> None:
        self._lib.finish(step)

    def run_chunk(self, start: int, n: int, want_trace: bool):
        """Run ``n`` major steps; returns ``(scope_rows, trace_rows)``
        as ``(n, n_scopes)`` / ``(n, n_signals)`` arrays (trace is
        ``None`` unless requested)."""
        scope = np.empty((n, max(1, len(self.program.scope_sigs))))
        trace = np.empty((n, self.program.n_signals)) if want_trace else None
        self._lib.run(start, n, scope, trace)
        return scope, trace
