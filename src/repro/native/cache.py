"""Toolchain discovery and the on-disk compile cache.

Artifacts are keyed by ``sha256(doc_hash | TU sha | compiler
fingerprint | template version)`` — the canonical model-document hash
(:func:`repro.service.model_cache.model_content_hash`, already
process-stable) guards against semantically different models colliding,
the TU sha guards against emitter drift for models that cannot be
content-addressed, and the compiler fingerprint invalidates artifacts
across toolchain or architecture changes.  SimServe warm jobs and
process-pool children therefore ``dlopen`` an existing ``.so`` instead
of recompiling: the TU is still regenerated in-process (cheap,
deterministic) and only the compile step is skipped.

Layout under the cache dir (``$REPRO_NATIVE_CACHE`` or
``~/.cache/repro-native``): ``<key>.c``, ``<key>.so``, ``<key>.json``
(stats sidecar).  Writes go through a temp file + ``os.replace`` so
concurrent processes never observe a half-written artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from time import perf_counter
from typing import Optional

from .emit import TEMPLATE_VERSION


class ToolchainError(Exception):
    """No usable C compiler, or the compile itself failed."""


#: flags that pin IEEE-754 semantics: no fast-math value substitution,
#: no FMA contraction (contraction would change the association order
#: the Python reference performs)
CFLAGS = ["-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off"]

_lock = threading.Lock()
_cc_memo: Optional[tuple] = None  # (path|None, fingerprint|None)


def find_cc() -> Optional[str]:
    """The C compiler to use, or ``None`` when the host has no
    toolchain.  ``$REPRO_NATIVE_CC`` overrides discovery."""
    global _cc_memo
    override = os.environ.get("REPRO_NATIVE_CC")
    with _lock:
        if _cc_memo is not None and not override:
            return _cc_memo[0]
    if override:
        path = shutil.which(override)
        return path  # no memo: the env var may change between calls
    path = None
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            break
    fp = _probe_fingerprint(path) if path else None
    with _lock:
        _cc_memo = (path if fp else None, fp)
        return _cc_memo[0]


def _probe_fingerprint(cc: str) -> Optional[str]:
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        first = (out.stdout or out.stderr).splitlines()[0].strip()
    except Exception:
        return None
    return f"{first}|{platform.machine()}|v{TEMPLATE_VERSION}"


def compiler_fingerprint(cc: Optional[str] = None) -> Optional[str]:
    """Version/arch/template string folded into the cache key."""
    cc = cc or find_cc()
    if cc is None:
        return None
    override = os.environ.get("REPRO_NATIVE_CC")
    if override:
        return _probe_fingerprint(cc)
    with _lock:
        if _cc_memo and _cc_memo[0] == cc:
            return _cc_memo[1]
    return _probe_fingerprint(cc)


def cache_dir() -> str:
    d = os.environ.get("REPRO_NATIVE_CACHE")
    if not d:
        d = os.path.join(os.path.expanduser("~"), ".cache", "repro-native")
    os.makedirs(d, exist_ok=True)
    return d


def artifact_key(doc_hash: str, tu_sha: str, fingerprint: str) -> str:
    text = f"{doc_hash}|{tu_sha}|{fingerprint}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:40]


def doc_hash_for(sim) -> str:
    """Canonical content hash of the model under its run options, or
    ``""`` when the diagram cannot be content-addressed (live callables
    etc. — the TU sha still keys the artifact then)."""
    from repro.service.model_cache import model_content_hash

    try:
        return model_content_hash(
            sim.cm.source, dt=sim.options.dt, solver=sim.options.solver
        )
    except Exception:
        return ""


# ---------------------------------------------------------------------------
# stats (process-global, mirrored into the obs registry)
# ---------------------------------------------------------------------------
_stats_lock = threading.Lock()
_stats = {"hits": 0, "misses": 0, "compile_s_total": 0.0, "errors": 0}


def _count(kind: str, compile_s: float = 0.0) -> None:
    from repro.obs.metrics import get_registry

    with _stats_lock:
        if kind in ("hits", "misses", "errors"):
            _stats[kind] += 1
        _stats["compile_s_total"] += compile_s
    reg = get_registry()
    if kind == "hits":
        reg.counter("native_cache_hits_total",
                    "native compile cache hits (dlopen only)").inc()
    elif kind == "misses":
        reg.counter("native_cache_misses_total",
                    "native compile cache misses (cc invoked)").inc()
    elif kind == "errors":
        reg.counter("native_compile_errors_total",
                    "native compile failures").inc()
    if compile_s:
        reg.counter("native_compile_seconds_total",
                    "wall time spent in the C compiler").inc(compile_s)


def native_cache_stats() -> dict:
    """Snapshot of hit/miss/compile-time counters plus cache contents."""
    with _stats_lock:
        snap = dict(_stats)
    try:
        d = cache_dir()
        sos = [f for f in os.listdir(d) if f.endswith(".so")]
        snap["artifacts"] = len(sos)
        snap["bytes"] = sum(
            os.path.getsize(os.path.join(d, f)) for f in sos
        )
    except OSError:
        snap["artifacts"] = 0
        snap["bytes"] = 0
    snap["toolchain"] = find_cc() or ""
    return snap


# ---------------------------------------------------------------------------
# compile
# ---------------------------------------------------------------------------
def ensure_compiled(source: str, doc_hash: str) -> str:
    """Return the path of the compiled ``.so`` for ``source``, compiling
    at most once per (model, toolchain) across processes."""
    cc = find_cc()
    if cc is None:
        raise ToolchainError("no C compiler on PATH (cc/gcc/clang)")
    fp = compiler_fingerprint(cc)
    if fp is None:
        raise ToolchainError(f"compiler '{cc}' did not report a version")
    tu_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    key = artifact_key(doc_hash, tu_sha, fp)
    d = cache_dir()
    so_path = os.path.join(d, f"{key}.so")
    if os.path.exists(so_path):
        _count("hits")
        return so_path
    _count("misses")
    c_path = os.path.join(d, f"{key}.c")
    _atomic_write(c_path, source)
    t0 = perf_counter()
    fd, tmp_so = tempfile.mkstemp(suffix=".so.tmp", dir=d)
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp_so, c_path, "-lm"],
            capture_output=True, text=True, timeout=120,
        )
        if proc.returncode != 0:
            _count("errors")
            tail = (proc.stderr or proc.stdout).strip()[-2000:]
            raise ToolchainError(f"cc failed ({proc.returncode}): {tail}")
        os.replace(tmp_so, so_path)
    finally:
        if os.path.exists(tmp_so):
            os.unlink(tmp_so)
    compile_s = perf_counter() - t0
    _count("", compile_s=compile_s)
    _atomic_write(os.path.join(d, f"{key}.json"), json.dumps({
        "doc_hash": doc_hash,
        "tu_sha": tu_sha,
        "fingerprint": fp,
        "compile_s": compile_s,
        "template": TEMPLATE_VERSION,
    }, indent=2, sort_keys=True))
    return so_path


def _atomic_write(path: str, text: str) -> None:
    d = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
