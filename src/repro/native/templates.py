"""Native (simulation-exact) C templates for the block library.

These are the second template set carried by the shared
:class:`repro.codegen.templates.TemplateRegistry` (the first set is the
MCU/TLC templates that generate readable target code).  A native
template emits C whose IEEE-754 operation sequence mirrors the block's
Python ``outputs``/``update``/``derivatives`` callbacks *exactly* — same
association order, same comparison polarity (so NaN propagation
matches), libm calls for the ``math`` functions CPython itself defers to
libm.  The equivalence suite in ``tests/native`` pins the compiled
translation unit bit-identical (atol=0) to the reference interpreter.

A template may *refuse* a block instance (``refuse`` returns a reason
string): blocks with unreproducible semantics (RNG draws, Python-object
state, raising error paths that double as control flow) fall back to the
Python paths instead of risking divergence.
"""

from __future__ import annotations

from typing import Optional

from repro.model.block import Block


class NativeTemplate:
    """Base native template: override the hooks a block needs.

    ``em`` is the per-block emitter (see ``repro.native.emit``): ``em.u(i)``
    / ``em.y(p)`` are C expressions/lvalues for ports, ``em.dw(field)``
    addresses dwork slots, ``em.x(i)``/``em.xd(i)`` address continuous
    state and its derivative, ``em.lit(v)`` renders an exact C99 hex
    float literal, and ``em.line(...)`` appends a statement.
    """

    def refuse(self, block: Block) -> Optional[str]:
        return None

    def dwork(self, block: Block) -> list:
        """``[(field, n_slots), ...]`` — discrete-state layout."""
        return []

    def dwork_init(self, block: Block, ctx) -> list:
        """Initial slot values, flattened in :meth:`dwork` order (reads
        the started context, so ``block.start`` side effects carry
        over)."""
        out: list[float] = []
        for field, n in self.dwork(block):
            v = ctx.dwork[field]
            try:
                vals = [float(x) for x in v]
            except TypeError:  # a plain scalar slot
                vals = [float(v)]
            if len(vals) != n:
                raise ValueError(
                    f"dwork field '{field}' of {block.name}: "
                    f"expected {n} slots, got {len(vals)}"
                )
            out.extend(vals)
        return out

    def outputs(self, block: Block, em) -> None:
        pass

    def update(self, block: Block, em) -> None:
        pass

    def deriv(self, block: Block, em) -> None:
        pass


class Refuse(NativeTemplate):
    """Always falls back to the Python path, with a stated reason."""

    def __init__(self, reason: str):
        self._reason = reason

    def refuse(self, block: Block) -> Optional[str]:
        return f"{type(block).__name__}: {self._reason}"


# ---------------------------------------------------------------------------
# emission helpers
# ---------------------------------------------------------------------------
def _py_clamp(em, v: str, lo: float, hi: float) -> str:
    """C for Python's ``min(max(v, lo), hi)`` — including the first-arg
    NaN retention of Python ``min``/``max`` (comparisons with NaN are
    false, so the running value is kept)."""
    m = em.tmp()
    em.line(f"double {m} = ({em.lit(lo)} > {v}) ? {em.lit(lo)} : {v};")
    r = em.tmp()
    em.line(f"double {r} = ({em.lit(hi)} < {m}) ? {em.lit(hi)} : {m};")
    return r


def _np_clip(em, v: str, lo: float, hi: float) -> str:
    """C for ``np.clip(v, lo, hi)`` — NaN propagates (both comparisons
    false keep the NaN input)."""
    m = em.tmp()
    em.line(f"double {m} = ({v} < {em.lit(lo)}) ? {em.lit(lo)} : {v};")
    r = em.tmp()
    em.line(f"double {r} = ({m} > {em.lit(hi)}) ? {em.lit(hi)} : {m};")
    return r


def _u16_wrap(em, v: str) -> str:
    """C for Python's ``int(v) % 65536`` (truncate, then non-negative
    modulo)."""
    r = em.tmp()
    em.line(f"double {r} = fmod(trunc({v}), 65536.0);")
    em.line(f"if ({r} < 0.0) {r} += 65536.0;")
    return r


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------
class _Constant(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.lit(b.value)};")


class _Step(NativeTemplate):
    def outputs(self, b, em):
        em.line(
            f"{em.y(0)} = (t >= {em.lit(b.step_time)}) ? "
            f"{em.lit(b.final)} : {em.lit(b.initial)};"
        )


class _Ramp(NativeTemplate):
    def outputs(self, b, em):
        em.line(
            f"{em.y(0)} = (t < {em.lit(b.start_time)}) ? {em.lit(b.initial)} : "
            f"({em.lit(b.initial)} + {em.lit(b.slope)} * (t - {em.lit(b.start_time)}));"
        )


class _SineWave(NativeTemplate):
    def outputs(self, b, em):
        import math
        w = 2 * math.pi * b.frequency  # same fold order as the Python expr
        em.line(
            f"{em.y(0)} = {em.lit(b.bias)} + {em.lit(b.amplitude)} * "
            f"sin({em.lit(w)} * t + {em.lit(b.phase)});"
        )


class _PulseGenerator(NativeTemplate):
    def outputs(self, b, em):
        ph = em.tmp()
        r = em.tmp()
        em.line(f"double {r};")
        em.line(f"if (t < {em.lit(b.delay)}) {{ {r} = 0.0; }}")
        em.line(
            f"else {{ double {ph} = fmod(t - {em.lit(b.delay)}, "
            f"{em.lit(b.period)}) / {em.lit(b.period)};"
        )
        em.line(f"  {r} = ({ph} < {em.lit(b.duty)}) ? {em.lit(b.amplitude)} : 0.0; }}")
        em.line(f"{em.y(0)} = {r};")


class _Clock(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = t;")


# ---------------------------------------------------------------------------
# math
# ---------------------------------------------------------------------------
class _Gain(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.lit(b.gain)} * {em.u(0)};")


class _Bias(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.u(0)} + {em.lit(b.bias)};")


class _Sum(NativeTemplate):
    def outputs(self, b, em):
        # faithful to the Python accumulator: acc = 0.0; acc += ±u_i
        expr = "0.0"
        for i, s in enumerate(b.signs):
            expr += f" + {em.u(i)}" if s == "+" else f" + -{em.u(i)}"
        em.line(f"{em.y(0)} = {expr};")


class _Product(NativeTemplate):
    def refuse(self, b):
        if "/" in b.ops:
            return (f"Product '{b.name}' divides (Python raises "
                    "ZeroDivisionError on zero operands)")
        return None

    def outputs(self, b, em):
        expr = "1.0"
        for i in range(len(b.ops)):
            expr += f" * {em.u(i)}"
        em.line(f"{em.y(0)} = {expr};")


class _Abs(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = fabs({em.u(0)});")


class _Sign(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = ({em.u(0)} == 0.0) ? 0.0 : copysign(1.0, {em.u(0)});")


class _MinMax(NativeTemplate):
    def outputs(self, b, em):
        # Python min/max over the input list: sequential compares keeping
        # the running value on False (NaN included)
        m = em.tmp()
        em.line(f"double {m} = {em.u(0)};")
        op = "<" if b.mode == "min" else ">"
        for i in range(1, b.n_in):
            em.line(f"{m} = ({em.u(i)} {op} {m}) ? {em.u(i)} : {m};")
        em.line(f"{em.y(0)} = {m};")


_MATH_FN_C = {
    "sin": "sin({u})", "cos": "cos({u})", "tan": "tan({u})",
    "exp": "exp({u})", "log": "log({u})", "log10": "log10({u})",
    "sqrt": "sqrt({u})", "atan": "atan({u})",
    "square": "{u} * {u}", "reciprocal": "1.0 / {u}",
}


class _MathFunction(NativeTemplate):
    def refuse(self, b):
        if b.function not in _MATH_FN_C:
            return f"MathFunction '{b.function}' has no native form"
        return None

    def outputs(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        em.line(f"{em.y(0)} = {_MATH_FN_C[b.function].format(u=v)};")


class _Relational(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = ({em.u(0)} {b.op} {em.u(1)}) ? 1.0 : 0.0;")


class _Logical(NativeTemplate):
    def outputs(self, b, em):
        bits = [f"({em.u(i)} != 0.0)" for i in range(b.n_in)]
        if b.op == "AND":
            cond = " && ".join(bits)
        elif b.op == "OR":
            cond = " || ".join(bits)
        elif b.op == "XOR":
            cond = "((" + " + ".join(bits) + ") % 2 == 1)"
        else:  # NOT
            cond = f"!{bits[0]}"
        em.line(f"{em.y(0)} = ({cond}) ? 1.0 : 0.0;")


# ---------------------------------------------------------------------------
# discrete
# ---------------------------------------------------------------------------
class _UnitDelay(NativeTemplate):
    def dwork(self, b):
        return [("x", 1)]

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.dw('x')};")

    def update(self, b, em):
        em.line(f"{em.dw('x')} = {em.u(0)};")


class _ZeroOrderHold(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.u(0)};")


class _DiscreteIntegrator(NativeTemplate):
    def dwork(self, b):
        return [("x", 1)]

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.dw('x')};")

    def update(self, b, em):
        gt = b.gain * b.sample_time  # fold of the left-assoc g*Ts product
        nx = em.tmp()
        em.line(f"double {nx} = {em.dw('x')} + {em.lit(gt)} * {em.u(0)};")
        r = _py_clamp(em, nx, b.lower, b.upper)
        em.line(f"{em.dw('x')} = {r};")


class _DiscreteTransferFunction(NativeTemplate):
    def dwork(self, b):
        n = len(b.a) - 1
        return [("s", n)] if n else []

    def outputs(self, b, em):
        b0 = float(b.b[0])
        n = len(b.a) - 1
        u0 = em.u(0) if b.direct_feedthrough else "0.0"
        s0 = em.dw("s", 0) if n else "0.0"
        em.line(f"{em.y(0)} = {em.lit(b0)} * {u0} + {s0};")

    def update(self, b, em):
        n = len(b.a) - 1
        if n == 0:
            return
        u0 = em.tmp()
        em.line(f"double {u0} = {em.u(0)};")
        y = em.tmp()
        em.line(f"double {y} = {em.lit(float(b.b[0]))} * {u0} + {em.dw('s', 0)};")
        news = []
        for i in range(n):
            nxt = em.dw("s", i + 1) if i + 1 < n else "0.0"
            nv = em.tmp()
            em.line(
                f"double {nv} = {em.lit(float(b.b[i + 1]))} * {u0} - "
                f"{em.lit(float(b.a[i + 1]))} * {y} + {nxt};"
            )
            news.append(nv)
        for i, nv in enumerate(news):
            em.line(f"{em.dw('s', i)} = {nv};")


class _DiscreteDerivative(NativeTemplate):
    def dwork(self, b):
        return [("prev", 1), ("y", 1)]

    def outputs(self, b, em):
        em.line(
            f"{em.y(0)} = {em.lit(b.gain)} * ({em.u(0)} - {em.dw('prev')}) / "
            f"{em.lit(b.sample_time)};"
        )

    def update(self, b, em):
        em.line(f"{em.dw('prev')} = {em.u(0)};")


# ---------------------------------------------------------------------------
# nonlinear / discontinuities
# ---------------------------------------------------------------------------
class _Saturation(NativeTemplate):
    def outputs(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        r = _py_clamp(em, v, b.lower, b.upper)
        em.line(f"{em.y(0)} = {r};")


class _DeadZone(NativeTemplate):
    def outputs(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        em.line(
            f"{em.y(0)} = ({v} > {em.lit(b.zone_end)}) ? ({v} - {em.lit(b.zone_end)}) : "
            f"(({v} < {em.lit(b.zone_start)}) ? ({v} - {em.lit(b.zone_start)}) : 0.0);"
        )


class _Relay(NativeTemplate):
    def dwork(self, b):
        return [("on", 1)]

    def _next(self, b, em, v: str) -> str:
        nxt = em.tmp()
        em.line(
            f"double {nxt} = ({v} >= {em.lit(b.on_point)}) ? 1.0 : "
            f"(({v} <= {em.lit(b.off_point)}) ? 0.0 : {em.dw('on')});"
        )
        return nxt

    def outputs(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        nxt = self._next(b, em, v)
        em.line(f"{em.y(0)} = ({nxt} != 0.0) ? {em.lit(b.on_value)} : {em.lit(b.off_value)};")

    def update(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        nxt = self._next(b, em, v)
        em.line(f"{em.dw('on')} = {nxt};")


class _RateLimiter(NativeTemplate):
    def dwork(self, b):
        return [("y", 1)]

    def _limited(self, b, em) -> str:
        dmax = b.rising * b.sample_time
        dmin = b.falling * b.sample_time
        d = em.tmp()
        em.line(f"double {d} = {em.u(0)} - {em.dw('y')};")
        r = _py_clamp(em, d, dmin, dmax)
        out = em.tmp()
        em.line(f"double {out} = {em.dw('y')} + {r};")
        return out

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {self._limited(b, em)};")

    def update(self, b, em):
        em.line(f"{em.dw('y')} = {self._limited(b, em)};")


class _Quantizer(NativeTemplate):
    def outputs(self, b, em):
        iv = em.lit(b.interval)
        em.line(f"{em.y(0)} = {iv} * floor({em.u(0)} / {iv} + 0.5);")


class _Coulomb(NativeTemplate):
    def outputs(self, b, em):
        v = em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        em.line(
            f"{em.y(0)} = ({v} == 0.0) ? 0.0 : "
            f"copysign({em.lit(b.offset)} + {em.lit(b.gain)} * fabs({v}), {v});"
        )


# ---------------------------------------------------------------------------
# extras
# ---------------------------------------------------------------------------
class _TransportDelay(NativeTemplate):
    def dwork(self, b):
        return [("fifo", b.delay_steps), ("pos", 1)]

    def dwork_init(self, b, ctx):
        return [float(v) for v in ctx.dwork["fifo"]] + [0.0]

    def outputs(self, b, em):
        p = em.tmp()
        em.line(f"int {p} = (int){em.dw('pos')};")
        em.line(f"{em.y(0)} = DW[{em.dw_index('fifo')} + {p}];")

    def update(self, b, em):
        p = em.tmp()
        em.line(f"int {p} = (int){em.dw('pos')};")
        em.line(f"DW[{em.dw_index('fifo')} + {p}] = {em.u(0)};")
        em.line(f"{p} = {p} + 1;")
        em.line(f"if ({p} >= {b.delay_steps}) {p} = 0;")
        em.line(f"{em.dw('pos')} = (double){p};")


class _Backlash(NativeTemplate):
    def dwork(self, b):
        return [("y", 1)]

    def _engaged(self, b, em) -> str:
        half = em.lit(b.width / 2.0)
        u0 = em.tmp()
        em.line(f"double {u0} = {em.u(0)};")
        r = em.tmp()
        em.line(
            f"double {r} = (({u0} - {em.dw('y')}) > {half}) ? ({u0} - {half}) : "
            f"((({em.dw('y')} - {u0}) > {half}) ? ({u0} + {half}) : {em.dw('y')});"
        )
        return r

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {self._engaged(b, em)};")

    def update(self, b, em):
        em.line(f"{em.dw('y')} = {self._engaged(b, em)};")


class _EdgeDetector(NativeTemplate):
    def dwork(self, b):
        return [("prev", 1)]

    def outputs(self, b, em):
        lv = em.tmp()
        em.line(f"double {lv} = ({em.u(0)} != 0.0) ? 1.0 : 0.0;")
        rising = f"(({em.dw('prev')} == 0.0) && ({lv} != 0.0))"
        falling = f"(({em.dw('prev')} != 0.0) && ({lv} == 0.0))"
        cond = {"rising": rising, "falling": falling,
                "both": f"({rising} || {falling})"}[b.edge]
        em.line(f"{em.y(0)} = {cond} ? 1.0 : 0.0;")

    def update(self, b, em):
        em.line(f"{em.dw('prev')} = ({em.u(0)} != 0.0) ? 1.0 : 0.0;")


# ---------------------------------------------------------------------------
# routing / lookup / conversion
# ---------------------------------------------------------------------------
class _Switch(NativeTemplate):
    def outputs(self, b, em):
        em.line(
            f"{em.y(0)} = ({em.u(1)} >= {em.lit(b.threshold)}) ? {em.u(0)} : {em.u(2)};"
        )


class _ManualSwitch(NativeTemplate):
    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.u(b.position)};")


class _Lookup1D(NativeTemplate):
    def outputs(self, b, em):
        n = len(b.breakpoints)
        bp = em.const_arr([float(v) for v in b.breakpoints])
        vv = em.const_arr([float(v) for v in b.values])
        x = em.tmp()
        em.line(f"double {x} = {em.u(0)};")
        r = em.tmp()
        em.line(f"double {r};")
        if b.mode == "linear":
            # mirrors numpy's compiled_interp double path (incl. the
            # NaN-retry and exact-breakpoint shortcut)
            j, k, sl = em.tmp(), em.tmp(), em.tmp()
            em.line(f"if (isnan({x})) {r} = {x};")
            em.line(f"else if ({x} < {bp}[0]) {r} = {vv}[0];")
            em.line(f"else if ({x} >= {bp}[{n - 1}]) {r} = {vv}[{n - 1}];")
            em.line("else {")
            em.line(f"  int {j} = 0; int {k};")
            em.line(f"  for ({k} = 1; {k} < {n - 1}; {k}++) "
                    f"{{ if ({bp}[{k}] <= {x}) {j} = {k}; else break; }}")
            em.line(f"  if ({bp}[{j}] == {x}) {r} = {vv}[{j}];")
            em.line("  else {")
            em.line(f"    double {sl} = ({vv}[{j}+1] - {vv}[{j}]) / "
                    f"({bp}[{j}+1] - {bp}[{j}]);")
            em.line(f"    {r} = {sl} * ({x} - {bp}[{j}]) + {vv}[{j}];")
            em.line(f"    if (isnan({r})) {{")
            em.line(f"      {r} = {sl} * ({x} - {bp}[{j}+1]) + {vv}[{j}+1];")
            em.line(f"      if (isnan({r}) && {vv}[{j}] == {vv}[{j}+1]) {r} = {vv}[{j}];")
            em.line("    }")
            em.line("  }")
            em.line("}")
        else:  # flat: searchsorted(side="right") - 1, clipped
            j, k = em.tmp(), em.tmp()
            em.line(f"int {j};")
            em.line(f"if (isnan({x})) {j} = {n - 1};")  # NaN sorts last
            em.line("else {")
            em.line(f"  {j} = -1; int {k};")
            em.line(f"  for ({k} = 0; {k} < {n}; {k}++) "
                    f"{{ if ({bp}[{k}] <= {x}) {j} = {k}; else break; }}")
            em.line(f"  if ({j} < 0) {j} = 0;")
            em.line("}")
            em.line(f"{r} = {vv}[{j}];")
        em.line(f"{em.y(0)} = {r};")


class _DataTypeConversion(NativeTemplate):
    def refuse(self, b):
        f = b.target.fixpt
        if f is None:
            return None
        from repro.fixpt.types import Overflow
        if f.overflow is Overflow.WRAP:
            return (f"DataTypeConversion '{b.name}': WRAP overflow needs "
                    "arbitrary-precision integer wrap")
        if f.word_length > 52:
            return (f"DataTypeConversion '{b.name}': word length "
                    f"{f.word_length} exceeds exact double range")
        return None

    def outputs(self, b, em):
        f = b.target.fixpt
        if f is None:
            if b.target.name == "boolean":
                em.line(f"{em.y(0)} = ({em.u(0)} != 0.0) ? 1.0 : 0.0;")
            else:
                em.line(f"{em.y(0)} = {em.u(0)};")
            return
        from repro.fixpt.types import Rounding
        scale = em.lit(f.scale)
        rmin = em.lit(float(f.raw_min))
        rmax = em.lit(float(f.raw_max))
        x, r, q = em.tmp(), em.tmp(), em.tmp()
        em.line(f"double {x} = {em.u(0)};")
        em.line(f"double {r};")
        # NaN: Python raises here; the C path yields NaN (never reached
        # by a run the Python paths complete)
        em.line(f"if (isnan({x})) {r} = {x};")
        em.line(f"else if (isinf({x})) {r} = ({x} > 0.0) ? {rmax} : {rmin};")
        em.line("else {")
        em.line(f"  double {q} = {x} / {scale};")
        if f.rounding is Rounding.FLOOR:
            em.line(f"  {q} = floor({q});")
        elif f.rounding is Rounding.CEIL:
            em.line(f"  {q} = ceil({q});")
        elif f.rounding is Rounding.ZERO:
            em.line(f"  {q} = trunc({q});")
        else:  # NEAREST: ties away from zero
            em.line(f"  {q} = ({q} >= 0.0) ? floor({q} + 0.5) : ceil({q} - 0.5);")
        em.line(f"  if ({q} < {rmin}) {q} = {rmin}; "
                f"else if ({q} > {rmax}) {q} = {rmax};")
        em.line(f"  {r} = {q};")
        em.line("}")
        em.line(f"{em.y(0)} = {r} * {scale};")


# ---------------------------------------------------------------------------
# continuous
# ---------------------------------------------------------------------------
class _Integrator(NativeTemplate):
    def outputs(self, b, em):
        x = em.tmp()
        em.line(f"double {x} = {em.x(0)};")
        r = _np_clip(em, x, b.lower, b.upper)
        em.line(f"{em.y(0)} = {r};")

    def deriv(self, b, em):
        x, u0 = em.tmp(), em.tmp()
        em.line(f"double {x} = {em.x(0)};")
        em.line(f"double {u0} = {em.u(0)};")
        em.line(
            f"{em.xd(0)} = (({x} >= {em.lit(b.upper)}) && ({u0} > 0.0)) ? 0.0 : "
            f"((({x} <= {em.lit(b.lower)}) && ({u0} < 0.0)) ? 0.0 : {u0});"
        )


class _StateSpace(NativeTemplate):
    def refuse(self, b):
        if b.A.shape[0] != 1 or b.n_in != 1:
            return (f"StateSpace '{b.name}' has {b.A.shape[0]} states / "
                    f"{b.n_in} inputs; only 1x1 avoids BLAS accumulation "
                    "order differences")
        return None

    def outputs(self, b, em):
        x0, u0 = em.tmp(), em.tmp()
        em.line(f"double {x0} = {em.x(0)};")
        em.line(f"double {u0} = {em.u(0)};")
        for p in range(b.n_out):
            em.line(
                f"{em.y(p)} = {em.lit(float(b.C[p, 0]))} * {x0} + "
                f"{em.lit(float(b.D[p, 0]))} * {u0};"
            )

    def deriv(self, b, em):
        em.line(
            f"{em.xd(0)} = {em.lit(float(b.A[0, 0]))} * {em.x(0)} + "
            f"{em.lit(float(b.B[0, 0]))} * {em.u(0)};"
        )


# ---------------------------------------------------------------------------
# control blocks
# ---------------------------------------------------------------------------
class _PIDController(NativeTemplate):
    def dwork(self, b):
        return [("i", 1), ("e_prev", 1)]

    def outputs(self, b, em):
        g = b.gains
        e, d = em.tmp(), em.tmp()
        em.line(f"double {e} = {em.u(0)};")
        if g.kd:
            em.line(f"double {d} = ({e} - {em.dw('e_prev')}) / {em.lit(b.sample_time)};")
        else:
            em.line(f"double {d} = 0.0;")
        uu = em.tmp()
        em.line(
            f"double {uu} = {em.lit(g.kp)} * {e} + {em.dw('i')} + {em.lit(g.kd)} * {d};"
        )
        r = _py_clamp(em, uu, g.u_min, g.u_max)
        em.line(f"{em.y(0)} = {r};")

    def update(self, b, em):
        g = b.gains
        kits = g.ki * b.sample_time  # fold of the left-assoc ki*Ts product
        e, us, ig = em.tmp(), em.tmp(), em.tmp()
        em.line(f"double {e} = {em.u(0)};")
        em.line(f"double {us} = {em.lit(g.kp)} * {e} + {em.dw('i')};")
        em.line(
            f"int {ig} = (({em.lit(g.u_min)} < {us}) && ({us} < {em.lit(g.u_max)})) || "
            f"(({us} >= {em.lit(g.u_max)}) && ({e} < 0.0)) || "
            f"(({us} <= {em.lit(g.u_min)}) && ({e} > 0.0));"
        )
        em.line(f"if ({ig}) {em.dw('i')} = {em.dw('i')} + {em.lit(kits)} * {e};")
        em.line(f"{em.dw('e_prev')} = {e};")


class _LowPassFilter(NativeTemplate):
    def dwork(self, b):
        return [("y", 1)]

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {em.dw('y')};")

    def update(self, b, em):
        em.line(
            f"{em.dw('y')} = {em.dw('y')} + {em.lit(b.alpha)} * "
            f"({em.u(0)} - {em.dw('y')});"
        )


class _QuadratureSpeed(NativeTemplate):
    def dwork(self, b):
        return [("prev", 1), ("primed", 1)]

    def outputs(self, b, em):
        nr = _u16_wrap(em, em.u(0))
        r, d = em.tmp(), em.tmp()
        em.line(f"double {r};")
        em.line(f"if ({em.dw('primed')} == 0.0) {r} = 0.0;")
        em.line("else {")
        em.line(f"  double {d} = fmod({nr} - {em.dw('prev')}, 65536.0);")
        em.line(f"  if ({d} < 0.0) {d} += 65536.0;")
        em.line(f"  if ({d} >= 32768.0) {d} -= 65536.0;")
        em.line(f"  {r} = {d} * {em.lit(b.rad_per_count)} / {em.lit(b.sample_time)};")
        em.line("}")
        em.line(f"{em.y(0)} = {r};")

    def update(self, b, em):
        nr = _u16_wrap(em, em.u(0))
        em.line(f"{em.dw('prev')} = {nr};")
        em.line(f"{em.dw('primed')} = 1.0;")


class _Staircase(NativeTemplate):
    def outputs(self, b, em):
        n = len(b.times)
        tt = em.const_arr([float(v) for v in b.times])
        ll = em.const_arr([float(v) for v in b.levels])
        j, k = em.tmp(), em.tmp()
        em.line(f"int {j} = -1; int {k};")
        em.line(f"for ({k} = 0; {k} < {n}; {k}++) "
                f"{{ if ({tt}[{k}] <= t) {j} = {k}; else break; }}")
        em.line(f"{em.y(0)} = ({j} >= 0) ? {ll}[{j}] : 0.0;")


# ---------------------------------------------------------------------------
# plant blocks
# ---------------------------------------------------------------------------
class _PowerStage(NativeTemplate):
    def outputs(self, b, em):
        u0 = em.tmp()
        em.line(f"double {u0} = {em.u(0)};")
        duty = _py_clamp(em, u0, 0.0, 1.0)
        v = em.tmp()
        if b.bipolar:
            em.line(f"double {v} = (2.0 * {duty} - 1.0) * {em.lit(b.v_supply)};")
        else:
            em.line(f"double {v} = {duty} * {em.lit(b.v_supply)};")
        vd = em.lit(b.v_drop)
        em.line(f"if ({v} > {vd}) {v} = {v} - {vd};")
        em.line(f"else if ({v} < -{vd}) {v} = {v} + {vd};")
        em.line(f"else {v} = 0.0;")
        em.line(f"{em.y(0)} = {v};")


class _DCMotor(NativeTemplate):
    def outputs(self, b, em):
        # [speed, angle, current] from states [current, speed, angle]
        em.line(f"{em.y(0)} = {em.x(1)};")
        em.line(f"{em.y(1)} = {em.x(2)};")
        em.line(f"{em.y(2)} = {em.x(0)};")

    def deriv(self, b, em):
        p = b.params
        v, tl, i, w = em.tmp(), em.tmp(), em.tmp(), em.tmp()
        em.line(f"double {v} = {em.u(0)};")
        em.line(f"double {tl} = {em.u(1)};")
        em.line(f"double {i} = {em.x(0)};")
        em.line(f"double {w} = {em.x(1)};")
        em.line(
            f"{em.xd(0)} = ({v} - {em.lit(p.R)} * {i} - {em.lit(p.Ke)} * {w}) / "
            f"{em.lit(p.L)};"
        )
        tc = em.tmp()
        em.line(
            f"double {tc} = (fabs({w}) > 0x1.47ae147ae147bp-7) ? "
            f"copysign({em.lit(p.tau_coulomb)}, {w}) : "
            f"({em.lit(p.tau_coulomb)} * {w} / 0x1.47ae147ae147bp-7);"
        )
        em.line(
            f"{em.xd(1)} = ({em.lit(p.Kt)} * {i} - {em.lit(p.b)} * {w} - {tc} - {tl}) / "
            f"{em.lit(p.J)};"
        )
        em.line(f"{em.xd(2)} = {w};")


class _IRCEncoder(NativeTemplate):
    def outputs(self, b, em):
        import math
        turns, counts, frac, r = em.tmp(), em.tmp(), em.tmp(), em.tmp()
        em.line(f"double {turns} = {em.u(0)} / {em.lit(2 * math.pi)};")
        em.line(f"double {counts} = floor({turns} * {em.lit(float(b._cpr))});")
        em.line(f"double {frac} = {turns} - floor({turns});")
        em.line(f"double {r} = fmod({counts}, 65536.0);")
        em.line(f"if ({r} < 0.0) {r} += 65536.0;")
        em.line(f"{em.y(0)} = {r};")
        em.line(f"{em.y(1)} = ({frac} < {em.lit(b._index_width)}) ? 1.0 : 0.0;")


# ---------------------------------------------------------------------------
# Processor Expert peripheral blocks (MIL mode only — PIL/HW touch the
# serial link / hardware bean and must stay on the Python path)
# ---------------------------------------------------------------------------
def _pe_mil_only(block) -> Optional[str]:
    from repro.core.blocks import PEBlockMode
    if block.mode is not PEBlockMode.MIL:
        return f"PE block '{block.name}' is in {block.mode.name} mode"
    return None


class _ADCBlock(NativeTemplate):
    def refuse(self, b):
        r = _pe_mil_only(b)
        if r:
            return r
        try:
            b.bean.effective_bits
        except Exception as exc:  # bean not configured for MIL math
            return f"ADC '{b.name}': {exc}"
        return None

    def outputs(self, b, em):
        bits = b.bean.effective_bits
        raw_max = (1 << bits) - 1
        span = b.vref_high - b.vref_low
        c = em.tmp()
        em.line(
            f"double {c} = trunc((({em.u(0)} - {em.lit(b.vref_low)}) / "
            f"{em.lit(span)}) * {em.lit(float(raw_max + 1))});"
        )
        em.line(f"{c} = (0.0 > {c}) ? 0.0 : {c};")
        em.line(f"{em.y(0)} = ({em.lit(float(raw_max))} < {c}) ? "
                f"{em.lit(float(raw_max))} : {c};")


class _PWMBlock(NativeTemplate):
    def refuse(self, b):
        return _pe_mil_only(b)

    def outputs(self, b, em):
        u0 = em.tmp()
        em.line(f"double {u0} = {em.u(0)};")
        duty = _py_clamp(em, u0, 0.0, 1.0)
        res = b.bean._derived.get("duty_resolution")
        if res is None:
            em.line(f"{em.y(0)} = {duty};")
        else:
            # Python round() is half-even — nearbyint under the default
            # FE_TONEAREST mode
            em.line(f"{em.y(0)} = nearbyint({duty} / {em.lit(res)}) * {em.lit(res)};")


class _QuadDecBlock(NativeTemplate):
    def refuse(self, b):
        return _pe_mil_only(b)

    def outputs(self, b, em):
        em.line(f"{em.y(0)} = {_u16_wrap(em, em.u(0))};")


class _TimerIntBlock(NativeTemplate):
    def refuse(self, b):
        return _pe_mil_only(b)
    # no ports; the OnInterrupt fire is a no-op when nothing is wired
    # (the planner-level event check guarantees that before lowering)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------
_installed = False


def install(reg) -> None:
    """Register every native template on ``reg`` (idempotent per
    registry: re-registration just overwrites with equal templates)."""
    from repro.model import library as lib
    from repro.control.pid import PIDController, FixedPointPID
    from repro.control.filters import LowPassFilter
    from repro.control.speed import QuadratureSpeed
    from repro.control.setpoint import Staircase
    from repro.plants.power_stage import PowerStage
    from repro.plants.dc_motor import DCMotor
    from repro.plants.encoder import IRCEncoder
    from repro.core.blocks import (
        ADCBlock, PWMBlock, QuadDecBlock, TimerIntBlock, BitIOBlock,
    )
    from repro.stateflow.block import ChartBlock

    r = reg.register_native
    # sources
    r(lib.Constant, _Constant())
    r(lib.Step, _Step())
    r(lib.Ramp, _Ramp())
    r(lib.SineWave, _SineWave())
    r(lib.PulseGenerator, _PulseGenerator())
    r(lib.Clock, _Clock())
    r(lib.WhiteNoise, Refuse("draws RNG samples in outputs()"))
    # math
    r(lib.Gain, _Gain())
    r(lib.Bias, _Bias())
    r(lib.Sum, _Sum())
    r(lib.Product, _Product())
    r(lib.Abs, _Abs())
    r(lib.Sign, _Sign())
    r(lib.MinMax, _MinMax())
    r(lib.MathFunction, _MathFunction())
    r(lib.RelationalOperator, _Relational())
    r(lib.LogicalOperator, _Logical())
    # discrete
    r(lib.UnitDelay, _UnitDelay())
    r(lib.Memory, _UnitDelay())  # identical dwork/output/update shape
    r(lib.ZeroOrderHold, _ZeroOrderHold())
    r(lib.DiscreteIntegrator, _DiscreteIntegrator())
    r(lib.DiscreteTransferFunction, _DiscreteTransferFunction())
    r(lib.DiscreteDerivative, _DiscreteDerivative())
    # nonlinear
    r(lib.Saturation, _Saturation())
    r(lib.DeadZone, _DeadZone())
    r(lib.Relay, _Relay())
    r(lib.RateLimiter, _RateLimiter())
    r(lib.Quantizer, _Quantizer())
    r(lib.Coulomb, _Coulomb())
    # extras
    r(lib.TransportDelay, _TransportDelay())
    r(lib.Backlash, _Backlash())
    r(lib.EdgeDetector, _EdgeDetector())
    # routing / lookup / conversion
    r(lib.Switch, _Switch())
    r(lib.ManualSwitch, _ManualSwitch())
    r(lib.Lookup1D, _Lookup1D())
    r(lib.DataTypeConversion, _DataTypeConversion())
    # continuous (TransferFunction resolves to _StateSpace via the MRO)
    r(lib.Integrator, _Integrator())
    r(lib.StateSpace, _StateSpace())
    # boundary / impossible blocks
    r(lib.Inport, Refuse("co-simulation boundary port"))
    r(lib.Outport, Refuse("co-simulation boundary port"))
    r(lib.Assertion, Refuse("raises on violated invariants"))
    # control
    r(PIDController, _PIDController())
    r(FixedPointPID, Refuse("computes in Fx fixed-point objects"))
    r(LowPassFilter, _LowPassFilter())
    r(QuadratureSpeed, _QuadratureSpeed())
    r(Staircase, _Staircase())
    # plants
    r(PowerStage, _PowerStage())
    r(DCMotor, _DCMotor())
    r(IRCEncoder, _IRCEncoder())
    # PE peripherals
    r(ADCBlock, _ADCBlock())
    r(PWMBlock, _PWMBlock())
    r(QuadDecBlock, _QuadDecBlock())
    r(TimerIntBlock, _TimerIntBlock())
    r(BitIOBlock, Refuse("edge-event I/O with wired side effects"))
    r(ChartBlock, Refuse("stateflow charts execute Python actions"))


def ensure_installed():
    """Install the native set on the shared default registry once and
    return that registry."""
    global _installed
    from repro.codegen.templates import default_registry

    reg = default_registry()
    if not _installed:
        install(reg)
        _installed = True
    return reg
