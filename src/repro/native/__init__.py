"""repro.native — the compiled C fast path behind the kernel planner.

Lowers a planned model (:mod:`repro.model.kernels`) to one C
translation unit (:mod:`repro.native.emit`) through the native half of
the shared template registry (:mod:`repro.native.templates` /
:mod:`repro.codegen.templates`), compiles it with the host toolchain
into a disk-cached shared object (:mod:`repro.native.cache`), and
hot-loads it as the engine's step-loop executor
(:mod:`repro.native.executor`).  Bit-exactness vs the reference
interpreter is the contract; every failure rung (no toolchain, plan
refused, compile error) falls back to the existing Python paths and
increments ``kernel_fallback_total{reason=...}``.
"""

from __future__ import annotations

from typing import Optional

from .cache import (
    ToolchainError,
    compiler_fingerprint,
    doc_hash_for,
    ensure_compiled,
    find_cc,
    native_cache_stats,
)
from .emit import (
    TEMPLATE_VERSION,
    NativeLoweringError,
    NativeProgram,
    generate_program,
)
from .executor import NativePath
from .templates import NativeTemplate, ensure_installed

__all__ = [
    "TEMPLATE_VERSION",
    "NativeLoweringError",
    "NativeProgram",
    "NativePath",
    "NativeTemplate",
    "ToolchainError",
    "build_native_path",
    "compiler_fingerprint",
    "count_fallback",
    "doc_hash_for",
    "ensure_compiled",
    "ensure_installed",
    "find_cc",
    "generate_program",
    "native_cache_stats",
]

#: the fallback-reason taxonomy surfaced on ``kernel_fallback_total``
FALLBACK_REASONS = (
    "disabled",
    "below_auto_threshold",
    "plan_refused",
    "toolchain_missing",
    "compile_error",
)


def count_fallback(reason: str) -> None:
    """Bump ``kernel_fallback_total{reason=...}`` in the process-global
    metrics registry."""
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "kernel_fallback_total",
        "native/kernel fast-path fallbacks by reason",
        labels={"reason": reason},
    ).inc()


def generate_tu(sim, plan=None) -> str:
    """The C translation unit for a simulator (the ``python -m
    repro.codegen dump`` entry point).  Initializes the sim if needed —
    dwork initial values are read from the started block contexts."""
    if not sim._initialized:
        sim.initialize()
    if plan is None:
        from repro.model.kernels import plan_kernels

        plan = plan_kernels(sim.cm)
    return generate_program(sim, plan).source


def build_native_path(sim, plan=None) -> NativePath:
    """Lower, compile (or reuse the cached artifact), and load the
    native executor for ``sim``.

    Raises :class:`NativeLoweringError` when the model refuses to lower
    and :class:`ToolchainError` when no compiler is present or the
    compile fails.  The caller (``Simulator._bind_native``) maps those
    onto the fallback ladder.
    """
    import numpy as np

    if plan is None:
        from repro.model.kernels import plan_kernels

        plan = plan_kernels(sim.cm)
    program = generate_program(sim, plan)
    so_path = ensure_compiled(program.source, doc_hash_for(sim))
    if not isinstance(sim.signals, np.ndarray):
        # the extension borrows this buffer; scalar list -> ndarray
        sim.signals = np.ascontiguousarray(sim.signals, dtype=np.float64)
    return NativePath(program, so_path, sim.signals, sim.x)
