"""Lowering a :class:`~repro.model.kernels.KernelPlan` to one C
translation unit.

The generated TU mirrors the engine's pass structure exactly — major
output pass over the plan entries (affine rows inline, template blocks
per block), the pruned minor pass, the rate-guarded update pass, the
derivative pass, and the fixed-step integrator with the reference
association order — so a compiled run is bit-identical (atol=0) to the
reference interpreter.  Exported symbols:

``void nx_bind(double *sigs, double *states, const double *dwork_init)``
    Borrow the engine's signal/state buffers and load discrete state.
``void nx_out_major(long long step)`` / ``void nx_finish(long long step)``
    The two halves of one major step, split where the engine logs
    scopes and runs ``step_hook``.
``void nx_run(long long start, long long n, double *scope_out,
double *trace_out)``
    The whole-loop executor: ``n`` major steps with scope rows (and
    optionally full signal rows) written per step.

The TU text is deterministic for a given model/options (no timestamps,
stable iteration orders, exact hex float literals), so it doubles as
the compile-cache key material and as golden-test content.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.model.block import Block
from repro.model.kernels import AffineRow, AffineRun, BlockEntry, KernelPlan

#: Bump when emitted C changes shape — part of the disk-cache key, so
#: stale artifacts from older emitters can never be dlopen'ed.
TEMPLATE_VERSION = "1"


class NativeLoweringError(Exception):
    """The model cannot be lowered to native C (unsupported block,
    wired events, ...); the engine falls back to the Python paths."""


def clit(v: float) -> str:
    """Exact C99 literal for a Python float (hex float notation keeps
    every bit; negatives are parenthesized so token pasting like
    ``- -0x1p+0`` can never produce ``--``)."""
    v = float(v)
    if math.isinf(v):
        return "INFINITY" if v > 0 else "(-INFINITY)"
    if math.isnan(v):
        return "NAN"
    h = v.hex()
    return f"({h})" if h.startswith("-") else h


def _affine_c(row: AffineRow) -> str:
    """C mirror of :func:`repro.model.kernels._affine_expr` — identical
    term order and association (C ``+``/``-`` are left-associative and
    ``*`` binds tighter, exactly like the Python expression)."""
    parts: list[str] = []
    if row.const != 0.0 or not row.coeffs:
        parts.append(clit(row.const))
    for c, s in zip(row.coeffs, row.in_sigs):
        ref = f"S[{s}]"
        if not parts:
            if c == 1.0:
                parts.append(ref)
            elif c == -1.0:
                parts.append(f"-{ref}")
            else:
                parts.append(f"{clit(c)} * {ref}")
        elif c == 1.0:
            parts.append(f"+ {ref}")
        elif c == -1.0:
            parts.append(f"- {ref}")
        else:
            parts.append(f"+ {clit(c)} * {ref}")
    return " ".join(parts)


class BlockEmitter:
    """Per-block emission context handed to native templates."""

    def __init__(self, tu: "_TU", in_sigs, out_sigs, dwork_off, state_off):
        self._tu = tu
        self._in = in_sigs
        self._out = out_sigs
        self._dw = dwork_off  # field -> absolute DW index
        self._x0 = state_off
        self.lines: list[str] = []

    def u(self, i: int) -> str:
        return f"S[{self._in[i]}]"

    def y(self, p: int) -> str:
        return f"S[{self._out[p]}]"

    def dw(self, fld: str, k: int = 0) -> str:
        return f"DW[{self._dw[fld] + k}]"

    def dw_index(self, fld: str) -> int:
        return self._dw[fld]

    def x(self, i: int) -> str:
        return f"X[{self._x0 + i}]"

    def xd(self, i: int) -> str:
        return f"XD[{self._x0 + i}]"

    def lit(self, v: float) -> str:
        return clit(v)

    def tmp(self) -> str:
        self._tu.n_tmp += 1
        return f"v{self._tu.n_tmp}"

    def line(self, s: str) -> None:
        self.lines.append(s)

    def const_arr(self, values) -> str:
        return self._tu.const_arr(values)


@dataclass
class _TU:
    arrays: list = field(default_factory=list)  # (name, values)
    n_tmp: int = 0

    def const_arr(self, values) -> str:
        name = f"CA{len(self.arrays)}"
        self.arrays.append((name, [float(v) for v in values]))
        return name


@dataclass
class NativeProgram:
    """A lowered model: the TU text plus everything the executor needs
    to bind it (sizes, scope gather order, this run's discrete-state
    init vector)."""

    source: str
    n_signals: int
    n_states: int
    n_dwork: int
    scope_sigs: list[int]
    dwork_init: list[float]


def _block_chunk(qname, tpl, method, block, em) -> list[str]:
    getattr(tpl, method)(block, em)
    lines = em.lines
    em.lines = []
    if not lines:
        return []
    out = [f"  {{ /* {qname} */"]
    out += [f"    {ln}" for ln in lines]
    out.append("  }")
    return out


def _guarded(div: int, lines: list[str]) -> list[str]:
    if div in (0, 1) or not lines:
        return lines
    return ([f"  if (step % {div} == 0) {{"]
            + ["  " + ln for ln in lines]
            + ["  }"])


def generate_program(sim, plan: KernelPlan) -> NativeProgram:
    """Lower ``sim`` (initialized) under ``plan`` to a C TU, or raise
    :class:`NativeLoweringError` with the first refusal reason."""
    from .templates import ensure_installed

    cm = sim.cm
    reg = ensure_installed()

    for (qname, port), targets in sorted(cm.event_targets.items()):
        if targets:
            raise NativeLoweringError(
                f"event ({qname}, {port}) has wired function-call targets; "
                "ISR replay stays on the Python paths"
            )

    # ---- per-block validation + discrete-state layout --------------------
    recs: dict[str, tuple] = {}  # qname -> (block, template, dwork_off)
    n_dwork = 0
    dwork_init: list[float] = []
    for entry in plan.entries:
        if isinstance(entry, AffineRun):
            continue
        qname = entry.qname
        block = cm.nodes[qname]
        tpl = reg.lookup_native(type(block))
        if tpl is None:
            raise NativeLoweringError(
                f"no native template for {type(block).__name__} ('{qname}')"
            )
        reason = tpl.refuse(block)
        if reason:
            raise NativeLoweringError(reason)
        offs: dict[str, int] = {}
        want = 0
        for fld, n in tpl.dwork(block):
            offs[fld] = n_dwork + want
            want += n
        vals = tpl.dwork_init(block, sim._ctxs[qname])
        if len(vals) != want:
            raise NativeLoweringError(
                f"dwork init size mismatch for '{qname}': "
                f"{len(vals)} != {want}"
            )
        n_dwork += want
        dwork_init.extend(vals)
        recs[qname] = (block, tpl, offs)

    tu = _TU()

    def emitter(qname) -> BlockEmitter:
        block, _tpl, offs = recs[qname]
        in_sigs = tuple(cm.input_map[qname])
        out_sigs = tuple(cm.sig_index[(qname, p)] for p in range(block.n_out))
        return BlockEmitter(tu, in_sigs, out_sigs, offs, cm.state_offset[qname])

    # ---- major output pass ----------------------------------------------
    out_lines: list[str] = []
    for entry in plan.entries:
        if isinstance(entry, AffineRun):
            rows = [f"  S[{r.out_sig}] = {_affine_c(r)};" for r in entry.rows]
            out_lines += _guarded(entry.divisor, rows)
            continue
        block, tpl, _offs = recs[entry.qname]
        chunk = _block_chunk(entry.qname, tpl, "outputs", block, emitter(entry.qname))
        out_lines += _guarded(entry.divisor, chunk)

    # ---- minor pass (dirty closure) -------------------------------------
    minor_lines: list[str] = []
    for qname in plan.minor_qnames:
        rows = plan.affine_rows.get(qname)
        if rows is not None:
            minor_lines += [f"  S[{r.out_sig}] = {_affine_c(r)};" for r in rows]
            continue
        block, tpl, _offs = recs[qname]
        minor_lines += _block_chunk(qname, tpl, "outputs", block, emitter(qname))

    # ---- update pass -----------------------------------------------------
    upd_lines: list[str] = []
    for entry in plan.entries:
        if isinstance(entry, AffineRun):
            continue
        block, tpl, _offs = recs[entry.qname]
        if type(block).update is Block.update:
            continue
        chunk = _block_chunk(entry.qname, tpl, "update", block, emitter(entry.qname))
        upd_lines += _guarded(entry.divisor, chunk)

    # ---- derivative pass -------------------------------------------------
    deriv_lines: list[str] = []
    for qname in cm.order:
        if not cm.state_count[qname]:
            continue
        if getattr(cm.nodes[qname], "triggerable", False):
            continue
        rec = recs.get(qname)
        if rec is None:
            raise NativeLoweringError(
                f"stateful block '{qname}' is outside the lowered schedule"
            )
        block, tpl, _offs = rec
        deriv_lines += _block_chunk(qname, tpl, "deriv", block, emitter(qname))

    scope_sigs = [idx for _qname, idx in sim._scope_sched]

    src = _render(
        cm=cm,
        sim=sim,
        tu=tu,
        n_dwork=n_dwork,
        scope_sigs=scope_sigs,
        out_lines=out_lines,
        minor_lines=minor_lines,
        upd_lines=upd_lines,
        deriv_lines=deriv_lines,
    )
    return NativeProgram(
        source=src,
        n_signals=cm.n_signals,
        n_states=cm.n_states,
        n_dwork=n_dwork,
        scope_sigs=scope_sigs,
        dwork_init=dwork_init,
    )


def _render(cm, sim, tu, n_dwork, scope_sigs, out_lines, minor_lines,
            upd_lines, deriv_lines) -> str:
    opts = sim.options
    n_states = cm.n_states
    n_sigs = cm.n_signals
    name = getattr(getattr(cm, "source", None), "name", None) or "model"
    L: list[str] = []
    w = L.append
    w("/* generated by repro.native — do not edit")
    w(f" * model: {name}")
    w(f" * dt: {opts.dt!r}  solver: {opts.solver}  template: v{TEMPLATE_VERSION}")
    w(" * bit-exact mirror of repro.model.engine reference passes")
    w(" */")
    w("#include <math.h>")
    w("#include <string.h>")
    w("")
    w(f"#define DT {clit(opts.dt)}")
    w(f"#define NSIG {n_sigs}")
    w(f"#define NSTATE {n_states}")
    w(f"#define NDW {n_dwork}")
    w("")
    w("static double *S;")
    if n_states:
        w("static double *X;")
        w(f"static double X0[NSTATE], K1[NSTATE], K2[NSTATE], "
          f"K3[NSTATE], K4[NSTATE];")
    w(f"static double DW[{max(1, n_dwork)}];")
    for aname, values in tu.arrays:
        body = ", ".join(clit(v) for v in values)
        w(f"static const double {aname}[{len(values)}] = {{ {body} }};")
    w("")
    w("void nx_bind(double *sigs, double *states, const double *dwork_init)")
    w("{")
    w("  S = sigs;")
    if n_states:
        w("  X = states;")
    else:
        w("  (void)states;")
    if n_dwork:
        w("  if (dwork_init) memcpy(DW, dwork_init, sizeof(double) * NDW);")
    else:
        w("  (void)dwork_init;")
    w("}")
    w("")
    w("static void out_major(long long step, double t)")
    w("{")
    w("  (void)step; (void)t;")
    L.extend(out_lines)
    w("}")
    w("")
    w("static void out_minor(double t)")
    w("{")
    w("  (void)t;")
    L.extend(minor_lines)
    w("}")
    w("")
    w("static void upd(long long step, double t)")
    w("{")
    w("  (void)step; (void)t;")
    L.extend(upd_lines)
    w("}")
    w("")
    if n_states:
        w("static void deriv(double t, double *XD)")
        w("{")
        w("  (void)t;")
        L.extend(deriv_lines)
        w("}")
        w("")
    w("static void integrate(double t)")
    w("{")
    if not n_states:
        w("  (void)t;")
    elif opts.solver == "euler":
        w("  int i;")
        w("  deriv(t, K1);")
        w("  for (i = 0; i < NSTATE; i++) X[i] = X[i] + DT * K1[i];")
    else:
        # classic RK4 in the engine's exact association order (see
        # Simulator._integrate: both its scalar and NumPy forms perform
        # these IEEE operations elementwise)
        w("  int i;")
        w("  double half_dt = 0.5 * DT;")
        w("  double half = t + half_dt;")
        w("  double sixth = DT / 6.0;")
        w("  for (i = 0; i < NSTATE; i++) X0[i] = X[i];")
        w("  deriv(t, K1);")
        w("  for (i = 0; i < NSTATE; i++) X[i] = X0[i] + half_dt * K1[i];")
        w("  out_minor(half);")
        w("  deriv(half, K2);")
        w("  for (i = 0; i < NSTATE; i++) X[i] = X0[i] + half_dt * K2[i];")
        w("  out_minor(half);")
        w("  deriv(half, K3);")
        w("  for (i = 0; i < NSTATE; i++) X[i] = X0[i] + DT * K3[i];")
        w("  out_minor(t + DT);")
        w("  deriv(t + DT, K4);")
        w("  for (i = 0; i < NSTATE; i++)")
        w("    X[i] = X0[i] + sixth * (K1[i] + 2.0 * K2[i] + 2.0 * K3[i] + K4[i]);")
    w("}")
    w("")
    w("void nx_out_major(long long step)")
    w("{")
    w("  out_major(step, (double)step * DT);")
    w("}")
    w("")
    w("void nx_finish(long long step)")
    w("{")
    w("  double t = (double)step * DT;")
    w("  upd(step, t);")
    w("  integrate(t);")
    w("}")
    w("")
    w("void nx_run(long long start, long long n, double *scope_out, "
      "double *trace_out)")
    w("{")
    w("  long long i;")
    w("  for (i = 0; i < n; i++) {")
    w("    long long step = start + i;")
    w("    double t = (double)step * DT;")
    w("    out_major(step, t);")
    for j, idx in enumerate(scope_sigs):
        w(f"    scope_out[i * {len(scope_sigs)} + {j}] = S[{idx}];")
    if not scope_sigs:
        w("    (void)scope_out;")
    w("    if (trace_out) memcpy(trace_out + i * NSIG, S, "
      "sizeof(double) * NSIG);")
    w("    upd(step, t);")
    w("    integrate(t);")
    w("  }")
    w("}")
    return "\n".join(L) + "\n"
