"""HAL C source generation.

Generates the per-bean driver sources the way Processor Expert does: one
``.h`` with the uniform method API and one ``.c`` whose *body* is chip-
specific (register names, divider constants from the expert system) while
the *interface* is chip-independent — the property experiment E4 checks by
diffing the headers across retargets.

Two API styles exist because the paper maintains two block-set variants
(section 8): the native PE style (``AD1_Measure``) and an AUTOSAR-flavoured
style (``Adc_StartGroupConversion``) whose names follow the MCAL modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .bean import Bean
    from .project import PEProject


class ApiStyle(enum.Enum):
    PE = "pe"
    AUTOSAR = "autosar"


#: bean TYPE -> AUTOSAR MCAL module prefix
_AUTOSAR_MODULES = {
    "ADC": "Adc",
    "PWM": "Pwm",
    "TimerInt": "Gpt",
    "QuadDec": "Icu",
    "BitIO": "Dio",
    "AsynchroSerial": "Uart",
    "WatchDog": "Wdg",
    "CPU": "Mcu",
}

#: (bean TYPE, PE method) -> AUTOSAR service name
_AUTOSAR_METHODS = {
    ("ADC", "Measure"): "StartGroupConversion",
    ("ADC", "GetValue"): "ReadGroup",
    ("ADC", "Enable"): "Init",
    ("ADC", "Disable"): "DeInit",
    ("PWM", "SetRatio16"): "SetDutyCycle",
    ("PWM", "SetDutyPercent"): "SetDutyCyclePercent",
    ("PWM", "Enable"): "EnableNotification",
    ("PWM", "Disable"): "DisableNotification",
    ("TimerInt", "Enable"): "StartTimer",
    ("TimerInt", "Disable"): "StopTimer",
    ("QuadDec", "GetPosition"): "GetEdgeNumbers",
    ("QuadDec", "SetPosition"): "SetEdgeNumbers",
    ("BitIO", "GetVal"): "ReadChannel",
    ("BitIO", "PutVal"): "WriteChannel",
    ("BitIO", "NegVal"): "FlipChannel",
    ("AsynchroSerial", "SendChar"): "Transmit",
    ("AsynchroSerial", "RecvChar"): "Receive",
    ("WatchDog", "Clear"): "Trigger",
}


def method_symbol(bean: "Bean", method: str, style: ApiStyle) -> str:
    """The generated C symbol for one bean method in the given style."""
    if style is ApiStyle.PE:
        return f"{bean.name}_{method}"
    module = _AUTOSAR_MODULES.get(bean.TYPE, bean.TYPE)
    service = _AUTOSAR_METHODS.get((bean.TYPE, method), method)
    return f"{module}_{service}_{bean.name}"


@dataclass
class HalBundle:
    """A generated set of C sources (filename -> contents)."""

    style: ApiStyle
    chip: str
    files: dict[str, str] = field(default_factory=dict)

    @property
    def total_loc(self) -> int:
        return sum(src.count("\n") + 1 for src in self.files.values())

    def headers(self) -> dict[str, str]:
        return {n: s for n, s in self.files.items() if n.endswith(".h")}

    def sources(self) -> dict[str, str]:
        return {n: s for n, s in self.files.items() if n.endswith(".c")}

    def symbol_table(self) -> set[str]:
        """All generated public function names (from the headers)."""
        symbols: set[str] = set()
        for src in self.headers().values():
            for line in src.splitlines():
                line = line.strip()
                if line.endswith(");") and "(" in line and not line.startswith(("/*", "*", "#")):
                    name = line.split("(")[0].split()[-1].lstrip("*")
                    symbols.add(name)
        return symbols


def _header_for(bean: "Bean", style: ApiStyle, chip: str) -> str:
    guard = f"__{bean.name.upper()}_H"
    lines = [
        f"/* {bean.name}.h — {bean.TYPE} bean interface",
        f" * Generated for: {chip}  (API style: {style.value})",
        " * NOTE: this interface is identical for every supported MCU;",
        " *       only the matching .c body is chip-specific.",
        " */",
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
        '#include "PE_Types.h"',
        "",
        f"void {bean.name}_Init(void);",
    ]
    for m in bean.methods.values():
        sym = method_symbol(bean, m.name, style)
        lines.append(f"{m.c_return} {sym}({m.c_args});")
    for e in bean.events.values():
        if e.enabled:
            lines.append(f"void {bean.name}_{e.name}(void); /* event callback */")
    lines += ["", f"#endif /* {guard} */", ""]
    return "\n".join(lines)


def _init_body(bean: "Bean", chip: str) -> list[str]:
    """Synthesised register initialisation from the validated properties —
    the chip-specific part of the driver."""
    lines = [f"void {bean.name}_Init(void)", "{"]
    for pname in list(bean._values) + list(bean._derived):
        try:
            value = bean.get_property(pname)
        except Exception:
            continue
        reg = f"{bean.TYPE.upper()}_{pname.upper()}_REG"
        if isinstance(value, float):
            lines.append(f"    /* {pname} = {value!r} */")
        else:
            lines.append(f"    {reg} = {value!r}; /* {chip} */".replace("'", '"'))
    lines.append("}")
    return lines


def _source_for(bean: "Bean", style: ApiStyle, chip: str) -> str:
    lines = [
        f"/* {bean.name}.c — {bean.TYPE} driver body for {chip}.",
        " * Machine generated; do not edit.",
        " */",
        f'#include "{bean.name}.h"',
        "",
    ]
    lines += _init_body(bean, chip)
    lines.append("")
    for m in bean.methods.values():
        sym = method_symbol(bean, m.name, style)
        lines.append(f"{m.c_return} {sym}({m.c_args})")
        lines.append("{")
        for op, n in m.ops.items():
            lines.append(f"    /* ~{n:g} x {op} on the {chip} core */")
        if m.c_return != "void":
            lines.append(f"    return ({m.c_return})0; /* value path bound in simulation */")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


def generate_hal(project: "PEProject", style: ApiStyle = ApiStyle.PE) -> HalBundle:
    """Generate headers and sources for every bean in the project."""
    chip = project.chip.name
    bundle = HalBundle(style=style, chip=chip)
    bundle.files["PE_Types.h"] = _pe_types()
    for bean in project.all_beans():
        bundle.files[f"{bean.name}.h"] = _header_for(bean, style, chip)
        bundle.files[f"{bean.name}.c"] = _source_for(bean, style, chip)
    return bundle


def _pe_types() -> str:
    return "\n".join(
        [
            "/* PE_Types.h — shared scalar typedefs (Processor Expert style). */",
            "#ifndef __PE_TYPES_H",
            "#define __PE_TYPES_H",
            "typedef unsigned char bool;",
            "typedef unsigned char byte;",
            "typedef unsigned short word;",
            "typedef unsigned long dword;",
            "typedef signed short int16;",
            "typedef signed long int32;",
            "#endif /* __PE_TYPES_H */",
            "",
        ]
    )
