"""The Processor Expert project.

A PE project is the bean set plus the selected CPU.  The paper's workflow
touches it three ways:

* the Simulink model synchronises blocks into beans (handled by
  :mod:`repro.core.sync`);
* the expert system validates the whole set against the chip
  (:meth:`PEProject.validate`);
* code generation produces the HAL sources and — uniquely to this
  reproduction — *binds* the beans onto a simulated
  :class:`~repro.mcu.device.MCUDevice`, which is the step that stands in
  for flashing a development board.

Retargeting is one call: :meth:`set_cpu` swaps the CPU bean and every
other bean revalidates, the paper's portability claim (experiment E4).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.mcu.device import MCUDevice
from repro.mcu.interrupts import DispatchMode

from .bean import Bean
from .beans.cpu import CPUBean
from .expert import ExpertSystem, ValidationReport
from .halgen import ApiStyle, HalBundle, generate_hal


class PEProjectError(Exception):
    """Project-level failure (validation errors at generation time, etc.)."""


class PEProject:
    """Bean container bound to one target CPU."""

    def __init__(self, name: str, cpu: Union[CPUBean, str] = "MC56F8367"):
        self.name = name
        if isinstance(cpu, str):
            cpu = CPUBean("Cpu", chip=cpu)
        self.cpu = cpu
        self.beans: dict[str, Bean] = {}
        self.generation_count = 0
        #: edit observers, called as fn(event, *names) — counterpart of the
        #: Model observer list for the bidirectional sync bus
        self.observers: list = []

    def _notify(self, event: str, *names: str) -> None:
        for fn in self.observers:
            fn(event, *names)

    # ------------------------------------------------------------------
    # bean management (driven directly or through the model sync bus)
    # ------------------------------------------------------------------
    def add_bean(self, bean: Bean) -> Bean:
        if bean.name in self.beans or bean.name == self.cpu.name:
            raise PEProjectError(f"duplicate bean name '{bean.name}'")
        self.beans[bean.name] = bean
        self._notify("add", bean.name)
        return bean

    def remove_bean(self, name: str) -> None:
        if name not in self.beans:
            raise PEProjectError(f"no bean named '{name}'")
        del self.beans[name]
        self._notify("remove", name)

    def rename_bean(self, old: str, new: str) -> None:
        if old not in self.beans:
            raise PEProjectError(f"no bean named '{old}'")
        if new in self.beans:
            raise PEProjectError(f"duplicate bean name '{new}'")
        bean = self.beans.pop(old)
        bean.name = new
        self.beans[new] = bean
        self._notify("rename", old, new)

    def bean(self, name: str) -> Bean:
        try:
            return self.beans[name]
        except KeyError:
            raise PEProjectError(
                f"no bean named '{name}'; project has {sorted(self.beans)}"
            ) from None

    def all_beans(self) -> list[Bean]:
        """CPU bean first, then the peripheral beans in insertion order."""
        return [self.cpu, *self.beans.values()]

    # ------------------------------------------------------------------
    # retargeting
    # ------------------------------------------------------------------
    def set_cpu(self, cpu: Union[CPUBean, str]) -> ValidationReport:
        """Swap the target chip ("selecting another CPU bean in the PE
        project window") and revalidate everything."""
        if isinstance(cpu, str):
            cpu = CPUBean(self.cpu.name, chip=cpu)
        self.cpu = cpu
        return self.validate()

    @property
    def chip(self):
        return self.cpu.descriptor

    # ------------------------------------------------------------------
    # validation and generation
    # ------------------------------------------------------------------
    def expert(self) -> ExpertSystem:
        return ExpertSystem(self.cpu.descriptor, self.cpu.clock_tree())

    def validate(self) -> ValidationReport:
        """Run the expert system over the full bean set."""
        return self.expert().validate(self.all_beans())

    def generate_hal(self, style: ApiStyle = ApiStyle.PE) -> HalBundle:
        """Generate the HAL C sources (refuses on validation errors)."""
        report = self.validate()
        if not report.ok:
            raise PEProjectError(
                "cannot generate code with validation errors:\n"
                + "\n".join(str(f) for f in report.errors)
            )
        self.generation_count += 1
        return generate_hal(self, style)

    def build_device(
        self, dispatch_mode: DispatchMode = DispatchMode.NONPREEMPTIVE
    ) -> MCUDevice:
        """Instantiate the target MCU and bind every bean to its allocated
        peripheral — the simulation equivalent of flash-and-boot."""
        report = self.validate()
        if not report.ok:
            raise PEProjectError(
                "cannot build with validation errors:\n"
                + "\n".join(str(f) for f in report.errors)
            )
        device = MCUDevice(self.cpu.descriptor, self.cpu.clock_tree(),
                           dispatch_mode=dispatch_mode)
        self.cpu.bind(device, None)
        for bean in self.beans.values():
            bean.bind(device, report.allocation.get(bean.name))
        return device

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PEProject '{self.name}' on {self.cpu.get_property('chip')}: "
            f"{len(self.beans)} beans>"
        )
