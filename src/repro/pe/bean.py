"""Embedded Bean base class.

"An interface to a bean is provided via properties, methods, and events"
(section 4):

* **properties** — design-time HW settings, validated on assignment;
* **methods** — the uniform runtime API the application (and the code
  generated from the Simulink model) calls: "the same methods on
  different MCUs are compatible from the application point of view";
* **events** — interrupt notifications ("bean events can be used by the
  user to handle interrupts").

A bean lives through three phases: configure (set properties), validate
(expert-system checks against the selected chip), and **bind** — attach to
a concrete on-chip peripheral instance of an :class:`~repro.mcu.device.
MCUDevice`, after which its methods are callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, TYPE_CHECKING

from .properties import BeanConfigError, DerivedProperty, Property

if TYPE_CHECKING:  # pragma: no cover
    from repro.mcu.database import ChipDescriptor
    from repro.mcu.device import MCUDevice
    from repro.mcu.clock import ClockTree
    from .expert import Finding


@dataclass
class BeanMethod:
    """One entry of the bean's C API.

    ``ops`` is the operation mix of the generated method body, costed
    against the chip's :class:`~repro.mcu.database.CycleCosts` — this is
    how "methods code is ... highly optimized and scaled to the selected
    MCU" becomes measurable.
    """

    name: str
    c_return: str = "void"
    c_args: str = "void"
    ops: Mapping[str, float] = field(default_factory=lambda: {"call": 1, "load_store": 4})

    def cost_cycles(self, chip: "ChipDescriptor") -> float:
        return sum(chip.costs.op(op) * n for op, n in self.ops.items())

    def c_prototype(self, owner: str) -> str:
        return f"{self.c_return} {owner}_{self.name}({self.c_args});"


@dataclass
class BeanEvent:
    """An interrupt-backed event (e.g. ``OnEnd`` of an ADC)."""

    name: str
    hint: str = ""
    enabled: bool = False


class Bean:
    """Base Embedded Bean.

    Subclasses declare ``TYPE`` (the PE bean type, e.g. ``"ADC"``),
    ``RESOURCE`` (the on-chip peripheral kind they consume, e.g.
    ``"adc"``; None for pure-software beans), ``PROPERTIES``, ``METHODS``
    and ``EVENTS``.
    """

    TYPE: str = "Bean"
    RESOURCE: Optional[str] = None
    PROPERTIES: Sequence[Property] = ()
    METHODS: Sequence[BeanMethod] = ()
    EVENTS: Sequence[BeanEvent] = ()

    def __init__(self, name: str, **props: Any):
        if not name or not name.isidentifier():
            raise ValueError(f"bean name must be a C identifier, got {name!r}")
        self.name = name
        self._props: dict[str, Property] = {p.name: p for p in self.PROPERTIES}
        self._values: dict[str, Any] = {p.name: p.default for p in self.PROPERTIES}
        self._derived: dict[str, Any] = {}
        self.methods: dict[str, BeanMethod] = {m.name: m for m in self.METHODS}
        self.events: dict[str, BeanEvent] = {
            e.name: BeanEvent(e.name, e.hint, e.enabled) for e in self.EVENTS
        }
        self._impl: dict[str, Callable[..., Any]] = {}
        self.device: Optional["MCUDevice"] = None
        self.resource_name: Optional[str] = None
        for k, v in props.items():
            self.set_property(k, v)

    # ------------------------------------------------------------------
    # properties (design time)
    # ------------------------------------------------------------------
    def set_property(self, name: str, value: Any) -> None:
        """Assign a property; invalid values raise immediately."""
        prop = self._props.get(name)
        if prop is None:
            raise BeanConfigError(self.name, name, "no such property")
        self._values[name] = prop.validate(self.name, value)

    def get_property(self, name: str) -> Any:
        if name in self._derived:
            return self._derived[name]
        if name not in self._values:
            raise BeanConfigError(self.name, name, "no such property")
        return self._values[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.set_property(name, value)

    def __getitem__(self, name: str) -> Any:
        return self.get_property(name)

    def set_derived(self, name: str, value: Any) -> None:
        """Expert-system write of a computed (read-only) property."""
        self._derived[name] = value

    def enable_event(self, name: str, enabled: bool = True) -> None:
        if name not in self.events:
            raise BeanConfigError(self.name, name, "no such event")
        self.events[name].enabled = enabled

    # ------------------------------------------------------------------
    # inspector (Fig 4.1)
    # ------------------------------------------------------------------
    def inspector(self) -> str:
        """Textual Bean Inspector: properties, methods, events."""
        lines = [f"Bean Inspector — {self.name} : {self.TYPE}"]
        lines.append("  Properties:")
        for p in self.PROPERTIES:
            v = self._derived.get(p.name, self._values.get(p.name))
            ro = " (computed)" if isinstance(p, DerivedProperty) else ""
            lines.append(f"    {p.name:<24} = {v!r:<16} [{p.describe()}]{ro}")
        if self.methods:
            lines.append("  Methods:")
            for m in self.methods.values():
                lines.append(f"    {m.c_prototype(self.name)}")
        if self.events:
            lines.append("  Events:")
            for e in self.events.values():
                state = "enabled" if e.enabled else "disabled"
                lines.append(f"    {e.name:<24} [{state}] {e.hint}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # validation / binding (subclass hooks)
    # ------------------------------------------------------------------
    def check(
        self, chip: "ChipDescriptor", clock: "ClockTree", expert: "Any"
    ) -> list["Finding"]:
        """Bean-specific design checks; subclasses extend.  Returns
        findings (errors block code generation)."""
        return []

    def bind(self, device: "MCUDevice", resource_name: Optional[str]) -> None:
        """Attach to a concrete peripheral and install method impls."""
        self.device = device
        self.resource_name = resource_name
        self._impl = self._build_impl(device)

    def _build_impl(self, device: "MCUDevice") -> dict[str, Callable[..., Any]]:
        """Subclass hook: map method names to Python callables."""
        return {}

    @property
    def bound(self) -> bool:
        return self.device is not None

    def call(self, method: str, *args: Any) -> Any:
        """Invoke a bean method on the bound peripheral (the runtime path
        generated C would take through the HAL)."""
        if method not in self.methods:
            raise BeanConfigError(self.name, method, "no such method")
        if method not in self._impl:
            raise RuntimeError(
                f"bean '{self.name}' is not bound (call PEProject.bind first)"
            )
        return self._impl[method](*args)

    def event_vector(self, event: str) -> str:
        """Interrupt-source name for one of this bean's events."""
        if event not in self.events:
            raise BeanConfigError(self.name, event, "no such event")
        return f"{self.name}_{event}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.TYPE} bean '{self.name}'>"
