"""Processor Expert substitute.

Section 4 of the paper describes PE: "a component oriented tool ...  Its
main task is to manage the HW resources of the MCU and to allow the design
at the high level.  The functionality of the basic elements ... are
encapsulated in Embedded Beans.  An interface to a bean is provided via
properties, methods, and events."

This package rebuilds that framework:

* :mod:`repro.pe.properties` — typed bean properties whose setters validate
  immediately ("they are therefore immediately verified by the PE
  knowledge base", section 5);
* :mod:`repro.pe.bean` — the Embedded Bean base: properties, methods with
  a chip-independent API, events mapped to interrupt vectors;
* :mod:`repro.pe.beans` — the bean library (CPU, ADC, PWM, TimerInt,
  QuadDec, BitIO, AsynchroSerial, WatchDog);
* :mod:`repro.pe.expert` — the expert system: prescaler derivation,
  resource allocation, conflict detection, timing feasibility;
* :mod:`repro.pe.project` — the PE project: bean set + CPU selection,
  cross-bean validation, code generation, one-line retargeting;
* :mod:`repro.pe.halgen` — generation of the HAL C sources, in the PE API
  style or the AUTOSAR-flavoured style (the paper's two block-set
  variants, section 8).
"""

from .properties import (
    BeanConfigError,
    BoolProperty,
    EnumProperty,
    FloatProperty,
    IntProperty,
    DerivedProperty,
    Property,
)
from .bean import Bean, BeanEvent, BeanMethod
from .expert import ExpertSystem, ResourceConflictError, ValidationReport, Finding
from .project import PEProject
from .halgen import ApiStyle, HalBundle
from . import beans

__all__ = [
    "BeanConfigError",
    "BoolProperty",
    "EnumProperty",
    "FloatProperty",
    "IntProperty",
    "DerivedProperty",
    "Property",
    "Bean",
    "BeanEvent",
    "BeanMethod",
    "ExpertSystem",
    "ResourceConflictError",
    "ValidationReport",
    "Finding",
    "PEProject",
    "ApiStyle",
    "HalBundle",
    "beans",
]
