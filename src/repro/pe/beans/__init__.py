"""The Embedded Bean library.

One bean type per peripheral class, mirroring the Processor Expert
catalogue the paper's block set wraps (section 5): "Timers, ADC, PWM,
PortIO, Quadrature Decoder etc.", plus the CPU bean whose exchange is the
paper's one-line portability story ("the model with the PE blocks can be
moreover extremely simply ported to another MCU by selecting another CPU
bean").
"""

from .cpu import CPUBean
from .adc import ADCBean
from .pwm import PWMBean
from .timerint import TimerIntBean
from .quaddec import QuadDecBean
from .bitio import BitIOBean
from .serial import AsynchroSerialBean
from .watchdog import WatchDogBean

__all__ = [
    "CPUBean",
    "ADCBean",
    "PWMBean",
    "TimerIntBean",
    "QuadDecBean",
    "BitIOBean",
    "AsynchroSerialBean",
    "WatchDogBean",
]

#: bean TYPE string -> class, for project (de)serialisation and the sync bus
BEAN_TYPES = {
    cls.TYPE: cls
    for cls in (
        CPUBean,
        ADCBean,
        PWMBean,
        TimerIntBean,
        QuadDecBean,
        BitIOBean,
        AsynchroSerialBean,
        WatchDogBean,
    )
}
