"""Quadrature decoder bean (PE type "QuadDec") — the case-study feedback
path for the IRC encoder (section 7)."""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding
from ..properties import BoolProperty, EnumProperty


class QuadDecBean(Bean):
    """Incremental encoder interface."""

    TYPE = "QuadDec"
    RESOURCE = "qdec"
    PROPERTIES = (
        EnumProperty("device", ["auto", "qdec0", "qdec1"], default="auto",
                     hint="decoder instance"),
        BoolProperty("reset_on_index", default=False,
                     hint="zero the position counter on the index pulse"),
    )
    METHODS = (
        BeanMethod("GetPosition", c_return="word",
                   ops={"call": 1, "load_store": 2}),
        BeanMethod("SetPosition", c_args="word Position",
                   ops={"call": 1, "load_store": 2}),
    )
    EVENTS = (
        BeanEvent("OnIndex", "index pulse (one per revolution)"),
    )

    def check(self, chip, clock, expert) -> list[Finding]:
        spec = chip.peripheral_spec("qdec")
        if spec is None or spec.count == 0:
            return [
                Finding("error", self.name,
                        f"{chip.name} has no quadrature decoder; route the "
                        f"encoder to timer capture inputs instead")
            ]
        return []

    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        qdec = device.peripheral(resource_name)
        qdec.reset_on_index = self.get_property("reset_on_index")
        if self.events["OnIndex"].enabled:
            qdec.irq_vector = self.event_vector("OnIndex")

    def _build_impl(self, device) -> dict[str, Any]:
        qdec = device.peripheral(self.resource_name)
        return {
            "GetPosition": qdec.read_position,
            "SetPosition": qdec.set_position,
        }
