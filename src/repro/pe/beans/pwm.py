"""PWM bean (PE type "PWM")."""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding, RATE_WARNING_THRESHOLD
from ..properties import DerivedProperty, EnumProperty, FloatProperty, IntProperty


class PWMBean(Bean):
    """Pulse-width modulated output channel."""

    TYPE = "PWM"
    RESOURCE = "pwm"
    PROPERTIES = (
        EnumProperty("device", ["auto", "pwm0", "pwm1"], default="auto",
                     hint="modulator instance"),
        IntProperty("channel", default=0, minimum=0, maximum=15,
                    hint="output channel"),
        FloatProperty("frequency", default=20e3, minimum=0.01, unit="Hz",
                      hint="carrier frequency"),
        EnumProperty("alignment", ["edge", "center"], default="edge",
                     hint="counter alignment"),
        EnumProperty("polarity", ["high", "low"], default="high",
                     hint="active level"),
        DerivedProperty("achieved_frequency", hint="divider-realised carrier (Hz)"),
        DerivedProperty("duty_resolution", hint="smallest duty step (fraction)"),
    )
    METHODS = (
        BeanMethod("Enable", ops={"call": 1, "load_store": 2}),
        BeanMethod("Disable", ops={"call": 1, "load_store": 2}),
        BeanMethod("SetRatio16", c_args="word Ratio",
                   ops={"call": 1, "load_store": 3, "int_mul": 1}),
        BeanMethod("SetDutyPercent", c_args="byte Duty",
                   ops={"call": 1, "load_store": 3, "int_mul": 1, "int_div": 1}),
    )
    EVENTS = (
        BeanEvent("OnEnd", "PWM period reload interrupt"),
    )

    # ------------------------------------------------------------------
    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        spec = chip.peripheral_spec("pwm")
        if spec is None or spec.count == 0:
            return [Finding("error", self.name, f"{chip.name} has no PWM")]
        if self.get_property("channel") >= spec.params.get("channels", 6):
            findings.append(
                Finding("error", self.name,
                        f"channel {self.get_property('channel')} out of range")
            )
        sol = expert.solve_pwm_frequency(self.get_property("frequency"))
        if sol is None:
            findings.append(
                Finding("error", self.name,
                        f"carrier {self.get_property('frequency'):.1f} Hz is "
                        f"unreachable from the {chip.name} bus clock")
            )
        else:
            self.set_derived("achieved_frequency", sol.achieved)
            self.set_derived("duty_resolution", 1.0 / sol.modulo)
            if sol.relative_error > RATE_WARNING_THRESHOLD:
                findings.append(
                    Finding("warning", self.name,
                            f"achieved carrier {sol.achieved:.1f} Hz deviates "
                            f"{sol.relative_error*100:.2f}% from the request")
                )
        return findings

    # ------------------------------------------------------------------
    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        pwm = device.peripheral(resource_name)
        pwm.alignment = self.get_property("alignment")
        pwm.configure(self.get_property("frequency"))
        if self.events["OnEnd"].enabled:
            pwm.irq_vector = self.event_vector("OnEnd")

    def _build_impl(self, device) -> dict[str, Any]:
        pwm = device.peripheral(self.resource_name)
        channel = self.get_property("channel")
        invert = self.get_property("polarity") == "low"

        def set_ratio16(ratio: int) -> float:
            frac = (int(ratio) & 0xFFFF) / 65535.0
            if invert:
                frac = 1.0 - frac
            return pwm.set_duty(channel, frac)

        def set_duty_percent(duty: int) -> float:
            return set_ratio16(int(min(max(duty, 0), 100) * 65535 / 100))

        return {
            "Enable": lambda: pwm.enable(True),
            "Disable": lambda: pwm.enable(False),
            "SetRatio16": set_ratio16,
            "SetDutyPercent": set_duty_percent,
        }
