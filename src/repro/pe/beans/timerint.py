"""Periodic interrupt bean (PE type "TimerInt").

The control loop's heartbeat: the PEERT runtime executes the periodic
model step inside this bean's ``OnInterrupt`` event (section 5).
"""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding, RATE_WARNING_THRESHOLD
from ..properties import DerivedProperty, EnumProperty, FloatProperty


class TimerIntBean(Bean):
    """Periodic interrupt source."""

    TYPE = "TimerInt"
    RESOURCE = "timer"
    PROPERTIES = (
        EnumProperty("device", ["auto", "timer0", "timer1", "timer2", "timer3"],
                     default="auto", hint="counter instance"),
        FloatProperty("period", default=1e-3, minimum=1e-9, unit="s",
                      hint="interrupt period"),
        DerivedProperty("achieved_period", hint="divider-realised period (s)"),
    )
    METHODS = (
        BeanMethod("Enable", ops={"call": 1, "load_store": 2}),
        BeanMethod("Disable", ops={"call": 1, "load_store": 2}),
    )
    EVENTS = (
        BeanEvent("OnInterrupt", "periodic tick", enabled=True),
    )

    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        spec = chip.peripheral_spec("timer")
        if spec is None or spec.count == 0:
            return [Finding("error", self.name, f"{chip.name} has no timer")]
        sol = expert.solve_timer_period(self.get_property("period"))
        if sol is None:
            findings.append(
                Finding("error", self.name,
                        f"period {self.get_property('period')} s is unreachable "
                        f"on the {chip.name} counter")
            )
        else:
            self.set_derived("achieved_period", sol.achieved)
            if sol.relative_error > RATE_WARNING_THRESHOLD:
                findings.append(
                    Finding("warning", self.name,
                            f"achieved period {sol.achieved:.3e} s deviates "
                            f"{sol.relative_error*100:.2f}% from the request")
                )
        return findings

    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        timer = device.peripheral(resource_name)
        timer.configure(self.get_property("period"))
        timer.irq_vector = self.event_vector("OnInterrupt")

    def _build_impl(self, device) -> dict[str, Any]:
        timer = device.peripheral(self.resource_name)
        return {
            "Enable": timer.start,
            "Disable": timer.stop,
        }

    @property
    def achieved_period(self) -> float:
        return float(self.get_property("achieved_period"))
