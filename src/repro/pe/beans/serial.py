"""Asynchronous serial bean (PE type "AsynchroSerial") — the PIL link's
MCU-side endpoint."""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding, RATE_WARNING_THRESHOLD
from ..properties import DerivedProperty, EnumProperty, FloatProperty

#: Above this relative baud error the receiver cannot frame bytes at all.
BAUD_ERROR_LIMIT = 0.03


class AsynchroSerialBean(Bean):
    """UART channel (8N1)."""

    TYPE = "AsynchroSerial"
    RESOURCE = "sci"
    PROPERTIES = (
        EnumProperty("device", ["auto", "sci0", "sci1", "sci2"], default="auto",
                     hint="SCI instance"),
        FloatProperty("baud", default=115200.0, minimum=1.0, unit="baud",
                      hint="requested baud rate"),
        DerivedProperty("achieved_baud", hint="divider-realised baud"),
    )
    METHODS = (
        BeanMethod("SendChar", c_args="byte Chr",
                   ops={"call": 1, "load_store": 3}),
        BeanMethod("SendBlock", c_args="byte *Ptr, word Size",
                   ops={"call": 1, "load_store": 6, "branch": 2}),
        BeanMethod("RecvChar", c_return="byte", c_args="byte *Chr",
                   ops={"call": 1, "load_store": 3}),
        BeanMethod("RecvBlock", c_return="word", c_args="byte *Ptr, word Size",
                   ops={"call": 1, "load_store": 6, "branch": 2}),
        BeanMethod("GetCharsInRxBuf", c_return="word",
                   ops={"call": 1, "load_store": 1}),
    )
    EVENTS = (
        BeanEvent("OnRxChar", "byte received"),
        BeanEvent("OnTxComplete", "byte shifted out"),
    )

    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        spec = chip.peripheral_spec("sci")
        if spec is None or spec.count == 0:
            return [Finding("error", self.name, f"{chip.name} has no SCI")]
        baud = self.get_property("baud")
        div_max = spec.params.get("divisor_max", 0xFFF)
        div = max(1, min(div_max, round(clock.f_bus / (16.0 * baud))))
        achieved = clock.f_bus / (16.0 * div)
        err = abs(achieved - baud) / baud
        self.set_derived("achieved_baud", achieved)
        if err > BAUD_ERROR_LIMIT:
            findings.append(
                Finding("error", self.name,
                        f"baud {baud:.0f} has {err*100:.1f}% divider error on "
                        f"{chip.name} — receiver cannot frame bytes")
            )
        elif err > RATE_WARNING_THRESHOLD:
            findings.append(
                Finding("warning", self.name,
                        f"achieved baud {achieved:.0f} deviates {err*100:.2f}% "
                        f"from the request")
            )
        return findings

    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        sci = device.peripheral(resource_name)
        sci.configure(self.get_property("baud"))
        if self.events["OnRxChar"].enabled:
            sci.rx_irq_vector = self.event_vector("OnRxChar")
        if self.events["OnTxComplete"].enabled:
            sci.tx_irq_vector = self.event_vector("OnTxComplete")

    def _build_impl(self, device) -> dict[str, Any]:
        sci = device.peripheral(self.resource_name)

        def send_char(chr_: int) -> int:
            return sci.send(bytes([chr_ & 0xFF]))

        def recv_char() -> int:
            data = sci.receive(1)
            return data[0] if data else -1

        return {
            "SendChar": send_char,
            "SendBlock": lambda data: sci.send(bytes(data)),
            "RecvChar": recv_char,
            "RecvBlock": lambda n: sci.receive(n),
            "GetCharsInRxBuf": lambda: sci.rx_available,
        }

    @property
    def sci(self):
        """The bound SCI peripheral (for wiring to a serial line)."""
        if not self.bound:
            raise RuntimeError(f"bean '{self.name}' not bound")
        return self.device.peripheral(self.resource_name)
