"""CPU bean: chip selection and the clock design.

Swapping the project's CPU bean is the paper's portability mechanism; all
other beans revalidate against the new chip and the application code is
untouched ("the application design in Simulink therefore becomes HW
independent", section 1).
"""

from __future__ import annotations

from typing import Any

from repro.mcu.clock import ClockTree
from repro.mcu.database import CHIPS, ChipDescriptor, get_chip
from ..bean import Bean, BeanMethod
from ..expert import Finding
from ..properties import DerivedProperty, EnumProperty, FloatProperty, IntProperty


class CPUBean(Bean):
    """Selects the target derivative and its clocking."""

    TYPE = "CPU"
    RESOURCE = None
    PROPERTIES = (
        EnumProperty("chip", sorted(CHIPS), default="MC56F8367",
                     hint="target derivative"),
        FloatProperty("xtal", default=0.0, minimum=0.0, unit="Hz",
                      hint="crystal frequency; 0 selects the chip default"),
        IntProperty("pll_mult", default=0, minimum=0,
                    hint="PLL multiplier; 0 selects the chip default"),
        IntProperty("pll_div", default=0, minimum=0,
                    hint="PLL divider; 0 selects the chip default"),
        DerivedProperty("f_sys", hint="achieved core clock (Hz)"),
        DerivedProperty("f_bus", hint="achieved peripheral clock (Hz)"),
    )
    METHODS = (
        BeanMethod("SetWaitMode", ops={"call": 1, "load_store": 1}),
        BeanMethod("GetSpeedMode", c_return="word", ops={"call": 1, "load_store": 1}),
    )

    @property
    def descriptor(self) -> ChipDescriptor:
        return get_chip(self.get_property("chip"))

    def clock_tree(self) -> ClockTree:
        """Build (and validate) the clock tree from the properties."""
        chip = self.descriptor
        xtal = self.get_property("xtal") or chip.default_xtal
        mult = self.get_property("pll_mult") or chip.default_pll_mult
        div = self.get_property("pll_div") or chip.default_pll_div
        return ClockTree(xtal, mult, div, f_sys_max=chip.f_sys_max)

    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        try:
            ct = self.clock_tree()
            self.set_derived("f_sys", ct.f_sys)
            self.set_derived("f_bus", ct.f_bus)
        except ValueError as e:
            findings.append(Finding("error", self.name, str(e)))
        return findings

    def _build_impl(self, device) -> dict[str, Any]:
        return {
            "SetWaitMode": lambda: None,
            "GetSpeedMode": lambda: 0,
        }
