"""Watchdog bean (PE type "WatchDog")."""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding
from ..properties import FloatProperty


class WatchDogBean(Bean):
    """Computer-operating-properly timer."""

    TYPE = "WatchDog"
    RESOURCE = "wdog"
    PROPERTIES = (
        FloatProperty("timeout", default=10e-3, minimum=1e-6, unit="s",
                      hint="reset deadline; Clear must be called within it"),
    )
    METHODS = (
        BeanMethod("Enable", ops={"call": 1, "load_store": 2}),
        BeanMethod("Disable", ops={"call": 1, "load_store": 2}),
        BeanMethod("Clear", ops={"call": 1, "load_store": 2}),
    )
    EVENTS = (
        BeanEvent("OnWatchDog", "deadline missed (pre-reset interrupt)"),
    )

    def check(self, chip, clock, expert) -> list[Finding]:
        spec = chip.peripheral_spec("wdog")
        if spec is None or spec.count == 0:
            return [Finding("error", self.name, f"{chip.name} has no watchdog")]
        return []

    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        wd = device.peripheral(resource_name)
        wd.configure(self.get_property("timeout"))
        if self.events["OnWatchDog"].enabled:
            wd.irq_vector = self.event_vector("OnWatchDog")

    def _build_impl(self, device) -> dict[str, Any]:
        wd = device.peripheral(self.resource_name)
        return {
            "Enable": wd.start,
            "Disable": wd.stop,
            "Clear": wd.kick,
        }
