"""Single-pin digital I/O bean (PE type "BitIO").

The case study's keyboard buttons enter through BitIO beans; the expert
system's pin-budget check catches two beans claiming one pin.
"""

from __future__ import annotations

from typing import Any, Optional

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding
from ..properties import EnumProperty, IntProperty


class BitIOBean(Bean):
    """One GPIO pin, input or output.

    ``pin`` is a package-global pin index; the bean resolves it to
    ``gpio{pin // width}`` pin ``pin % width`` at bind time.  Edge
    interrupts share the *port's* single vector — a real constraint the
    expert system warns about when two beans arm edges on one port.
    """

    TYPE = "BitIO"
    RESOURCE = None  # allocates a pin, not a whole port
    PROPERTIES = (
        IntProperty("pin", default=0, minimum=0,
                    hint="package-global pin index"),
        EnumProperty("direction", ["input", "output"], default="input"),
        IntProperty("init_value", default=0, minimum=0, maximum=1,
                    hint="output latch after init"),
        EnumProperty("edge_irq", ["none", "rising", "falling", "both"],
                     default="none", hint="input edge interrupt"),
    )
    METHODS = (
        BeanMethod("GetVal", c_return="bool", ops={"call": 1, "load_store": 1}),
        BeanMethod("PutVal", c_args="bool Val", ops={"call": 1, "load_store": 1}),
        BeanMethod("NegVal", ops={"call": 1, "load_store": 2}),
    )
    EVENTS = (
        BeanEvent("OnEdge", "input edge interrupt (port-shared vector)"),
    )

    # ------------------------------------------------------------------
    def _port_geometry(self, chip) -> Optional[tuple[int, int]]:
        spec = chip.peripheral_spec("gpio")
        if spec is None or spec.count == 0:
            return None
        return spec.count, spec.params.get("width", 8)

    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        geom = self._port_geometry(chip)
        if geom is None:
            return [Finding("error", self.name, f"{chip.name} has no GPIO")]
        n_ports, width = geom
        pin = self.get_property("pin")
        if pin >= n_ports * width:
            findings.append(
                Finding("error", self.name,
                        f"pin {pin} exceeds the {n_ports * width} GPIO pins "
                        f"of {chip.name}")
            )
        if (
            self.get_property("edge_irq") != "none"
            and self.get_property("direction") != "input"
        ):
            findings.append(
                Finding("error", self.name, "edge interrupt requires an input pin")
            )
        return findings

    # ------------------------------------------------------------------
    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        spec = device.chip.peripheral_spec("gpio")
        width = spec.params.get("width", 8)
        pin = self.get_property("pin")
        port = device.gpio(pin // width)
        local = pin % width
        self._port, self._local = port, local
        port.set_direction(local, "out" if self.get_property("direction") == "output" else "in")
        if self.get_property("direction") == "output":
            port.write(local, self.get_property("init_value"))
        edge = self.get_property("edge_irq")
        if edge != "none":
            port.enable_edge_irq(local, edge)
            port.irq_vector = self.event_vector("OnEdge")

    def _build_impl(self, device) -> dict[str, Any]:
        def get_val() -> int:
            return self._port.read(self._local)

        def put_val(v: int) -> None:
            self._port.write(self._local, v)

        def neg_val() -> None:
            put_val(1 - get_val())

        return {"GetVal": get_val, "PutVal": put_val, "NegVal": neg_val}

    # simulation-side helper: the external world toggles the pin ---------
    def drive(self, level: int) -> None:
        """Drive the (input) pin from outside — a button press."""
        if not self.bound:
            raise RuntimeError(f"bean '{self.name}' not bound")
        self._port.drive_input(self._local, level)
