"""ADC bean (PE type "ADC").

Design-time properties: converter instance, channel, resolution, mode.
The paper's example settings ("the resolution of ADC, the input pin, the
conversion time, the mode of operation") map one-to-one; ``Measure`` and
``GetValue`` are the two methods section 2 quotes.
"""

from __future__ import annotations

from typing import Any

from ..bean import Bean, BeanEvent, BeanMethod
from ..expert import Finding
from ..properties import DerivedProperty, EnumProperty, IntProperty


class ADCBean(Bean):
    """Analogue measurement bean."""

    TYPE = "ADC"
    RESOURCE = "adc"
    PROPERTIES = (
        EnumProperty("device", ["auto", "adc0", "adc1"], default="auto",
                     hint="converter instance"),
        IntProperty("channel", default=0, minimum=0, maximum=15,
                    hint="input channel / pin"),
        EnumProperty("resolution", [8, 10, 12, 16], default=12,
                     hint="bits of the returned value"),
        EnumProperty("mode", ["once", "continuous"], default="once",
                     hint="single conversion per Measure, or free-running"),
        DerivedProperty("conversion_time", hint="achieved conversion time (s)"),
    )
    METHODS = (
        BeanMethod("Measure", c_args="bool WaitForResult",
                   ops={"call": 1, "load_store": 3, "branch": 1}),
        BeanMethod("GetValue", c_return="word",
                   ops={"call": 1, "load_store": 2, "int_add": 1}),
        BeanMethod("Enable", ops={"call": 1, "load_store": 1}),
        BeanMethod("Disable", ops={"call": 1, "load_store": 1}),
    )
    EVENTS = (
        BeanEvent("OnEnd", "conversion complete (end-of-scan interrupt)"),
    )

    # ------------------------------------------------------------------
    def check(self, chip, clock, expert) -> list[Finding]:
        findings: list[Finding] = []
        spec = chip.peripheral_spec("adc")
        if spec is None or spec.count == 0:
            return [Finding("error", self.name, f"{chip.name} has no ADC")]
        hw_bits = spec.params.get("resolution_bits", 12)
        if self.get_property("resolution") > hw_bits:
            findings.append(
                Finding(
                    "error", self.name,
                    f"requested {self.get_property('resolution')}-bit resolution "
                    f"exceeds the {hw_bits}-bit converter of {chip.name}",
                )
            )
        channels = spec.params.get("channels", 8)
        if self.get_property("channel") >= channels:
            findings.append(
                Finding(
                    "error", self.name,
                    f"channel {self.get_property('channel')} out of range "
                    f"(converter has {channels} channels)",
                )
            )
        tconv = expert.adc_conversion_time()
        if tconv is not None:
            self.set_derived("conversion_time", tconv)
        return findings

    # ------------------------------------------------------------------
    def bind(self, device, resource_name) -> None:
        super().bind(device, resource_name)
        adc = device.peripheral(resource_name)
        if self.events["OnEnd"].enabled:
            adc.irq_vector = self.event_vector("OnEnd")
        if self.get_property("mode") == "continuous":
            adc.set_continuous(self.get_property("channel"))

    def _build_impl(self, device) -> dict[str, Any]:
        adc = device.peripheral(self.resource_name)
        channel = self.get_property("channel")
        hw_bits = adc.resolution_bits
        bean_bits = self.get_property("resolution")
        shift = max(0, hw_bits - bean_bits)

        def measure(wait: bool = False) -> None:
            adc.start_conversion(channel)

        def get_value() -> int:
            return adc.read(channel) >> shift

        return {
            "Measure": measure,
            "GetValue": get_value,
            "Enable": lambda: None,
            "Disable": lambda: None,
        }

    # simulation-side helpers -------------------------------------------
    @property
    def effective_bits(self) -> int:
        return int(self.get_property("resolution"))

    def raw_max(self) -> int:
        return (1 << self.effective_bits) - 1
