"""The expert system: resource allocation and design validation.

"Some design parameters, such as settings of common prescalers or useable
resources for the needed functionality are calculated by the expert
system.  Verification of user decisions is provided." (section 4)

The expert system answers three questions about a set of configured beans
and a selected chip:

1. **Allocation** — which concrete on-chip instance serves each bean, with
   conflicts (two beans on one timer, more ADC beans than converters)
   reported as errors;
2. **Derivation** — what dividers realise each requested rate, and how far
   the achieved value is from the request;
3. **Feasibility** — cross-cutting timing checks (e.g. an ADC whose
   conversion time exceeds the sampling period, CPU utilisation above 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.mcu.clock import ClockTree, DividerSolution, PrescalerChain
from repro.mcu.database import ChipDescriptor

#: Achieved-vs-requested relative error above which a derived divider
#: setting is reported as a warning.
RATE_WARNING_THRESHOLD = 0.01


class ResourceConflictError(Exception):
    """Raised when allocation cannot satisfy the bean set."""


@dataclass(frozen=True)
class Finding:
    """One validation message."""

    level: str  # "error" | "warning" | "info"
    bean: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - presentation
        return f"[{self.level}] {self.bean}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of a project validation pass."""

    findings: list[Finding] = field(default_factory=list)
    allocation: dict[str, str] = field(default_factory=dict)

    def add(self, level: str, bean: str, message: str) -> None:
        self.findings.append(Finding(level, bean, message))

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.findings)} finding(s) total"
        )


class ExpertSystem:
    """Knowledge-base reasoning for one chip."""

    def __init__(self, chip: ChipDescriptor, clock: Optional[ClockTree] = None):
        self.chip = chip
        self.clock = clock or ClockTree(
            chip.default_xtal, chip.default_pll_mult, chip.default_pll_div,
            f_sys_max=chip.f_sys_max,
        )

    # ------------------------------------------------------------------
    # divider derivation
    # ------------------------------------------------------------------
    def _chain_for(self, kind: str) -> Optional[PrescalerChain]:
        spec = self.chip.peripheral_spec(kind)
        if spec is None:
            return None
        params = spec.params
        if "prescalers" in params and "modulo_max" in params:
            return PrescalerChain(params["prescalers"], params["modulo_max"])
        return None

    def solve_timer_period(self, period: float) -> Optional[DividerSolution]:
        chain = self._chain_for("timer")
        if chain is None:
            return None
        return chain.solve_period(self.clock.f_bus, period)

    def solve_pwm_frequency(self, frequency: float) -> Optional[DividerSolution]:
        chain = self._chain_for("pwm")
        if chain is None:
            return None
        return chain.solve_rate(self.clock.f_bus, frequency)

    def adc_conversion_time(self) -> Optional[float]:
        spec = self.chip.peripheral_spec("adc")
        if spec is None:
            return None
        return spec.params.get("conversion_cycles", 50) / self.clock.f_bus

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, beans: Sequence[Any], report: ValidationReport) -> dict[str, str]:
        """Assign a concrete peripheral instance to each resource-hungry
        bean.  Beans may pin a device via a ``device`` property (e.g.
        ``"adc1"``); the rest are packed onto the remaining instances."""
        remaining: dict[str, list[str]] = {}
        for spec in self.chip.peripherals:
            remaining[spec.kind] = [f"{spec.kind}{i}" for i in range(spec.count)]

        allocation: dict[str, str] = {}
        # pass 1: explicit requests
        for bean in beans:
            kind = bean.RESOURCE
            if kind is None:
                continue
            wanted = None
            try:
                wanted = bean.get_property("device")
            except Exception:
                wanted = None
            if not wanted or wanted == "auto":
                continue
            pool = remaining.get(kind, [])
            if wanted not in pool:
                if kind not in remaining or wanted not in [
                    f"{kind}{i}" for i in range(self.chip.peripheral_spec(kind).count if self.chip.peripheral_spec(kind) else 0)
                ]:
                    report.add("error", bean.name, f"{self.chip.name} has no {kind} instance '{wanted}'")
                else:
                    report.add("error", bean.name, f"{kind} instance '{wanted}' already allocated")
                continue
            pool.remove(wanted)
            allocation[bean.name] = wanted
        # pass 2: automatic packing
        for bean in beans:
            kind = bean.RESOURCE
            if kind is None or bean.name in allocation:
                continue
            pool = remaining.get(kind)
            if not pool:
                if self.chip.peripheral_spec(kind) is None or self.chip.peripheral_spec(kind).count == 0:
                    report.add(
                        "error", bean.name,
                        f"{self.chip.name} has no on-chip {kind}; bean type {bean.TYPE} unsupported",
                    )
                else:
                    report.add(
                        "error", bean.name,
                        f"all {kind} instances of {self.chip.name} are already allocated",
                    )
                continue
            allocation[bean.name] = pool.pop(0)
        report.allocation = allocation
        return allocation

    # ------------------------------------------------------------------
    # project-level validation
    # ------------------------------------------------------------------
    def validate(self, beans: Sequence[Any]) -> ValidationReport:
        """Full pass: allocation, per-bean checks, cross-bean feasibility."""
        report = ValidationReport()
        names = [b.name for b in beans]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            report.add("error", dupes[0], "duplicate bean name in project")
        self.allocate(beans, report)
        for bean in beans:
            for finding in bean.check(self.chip, self.clock, self):
                report.findings.append(finding)
        self._check_pin_budget(beans, report)
        return report

    def _check_pin_budget(self, beans: Sequence[Any], report: ValidationReport) -> None:
        pins_used: dict[int, str] = {}
        for bean in beans:
            try:
                pin = bean.get_property("pin")
            except Exception:
                continue
            if pin is None:
                continue
            if pin in pins_used:
                report.add(
                    "error", bean.name,
                    f"pin {pin} already used by bean '{pins_used[pin]}'",
                )
            elif not (0 <= pin < self.chip.pin_count):
                report.add(
                    "error", bean.name,
                    f"pin {pin} outside the {self.chip.name} package "
                    f"(0..{self.chip.pin_count - 1})",
                )
            else:
                pins_used[pin] = bean.name
