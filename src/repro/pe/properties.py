"""Typed bean properties with immediate validation.

"Bean properties are used to specify the HW setting at the design-time.
Since it is done via well arranged dialogs of the Bean Inspector menu, it
is not necessary to study the HW details and the registers values"
(section 4).  A :class:`Property` is one row of that inspector: a typed
value, its allowed domain, and a human-readable hint.  Assigning an
invalid value raises :class:`BeanConfigError` at assignment time — the
design-time validation the paper contrasts with error-prone manual
register work.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence


class BeanConfigError(Exception):
    """An invalid bean configuration, caught at design time."""

    def __init__(self, bean: str, prop: str, message: str):
        self.bean = bean
        self.prop = prop
        super().__init__(f"{bean}.{prop}: {message}")


class Property:
    """Base property: name, default, docstring-ish hint."""

    def __init__(self, name: str, default: Any = None, hint: str = ""):
        self.name = name
        self.default = default
        self.hint = hint

    def validate(self, bean_name: str, value: Any) -> Any:
        """Return the normalised value or raise :class:`BeanConfigError`."""
        return value

    def describe(self) -> str:
        """Inspector row text for the allowed domain."""
        return "any value"


class EnumProperty(Property):
    """Value restricted to a fixed choice list."""

    def __init__(self, name: str, choices: Sequence[Any], default: Any = None, hint: str = ""):
        if not choices:
            raise ValueError("choices must be non-empty")
        super().__init__(name, default if default is not None else choices[0], hint)
        self.choices = list(choices)

    def validate(self, bean_name: str, value: Any) -> Any:
        if value not in self.choices:
            raise BeanConfigError(
                bean_name, self.name, f"{value!r} not in {self.choices!r}"
            )
        return value

    def describe(self) -> str:
        return f"one of {self.choices!r}"


class IntProperty(Property):
    """Bounded integer."""

    def __init__(
        self,
        name: str,
        default: int = 0,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
        hint: str = "",
    ):
        super().__init__(name, default, hint)
        self.minimum = minimum
        self.maximum = maximum

    def validate(self, bean_name: str, value: Any) -> int:
        try:
            v = int(value)
        except (TypeError, ValueError):
            raise BeanConfigError(bean_name, self.name, f"{value!r} is not an integer") from None
        if v != value and not isinstance(value, bool) and float(value) != v:
            raise BeanConfigError(bean_name, self.name, f"{value!r} is not an integer")
        if self.minimum is not None and v < self.minimum:
            raise BeanConfigError(bean_name, self.name, f"{v} < minimum {self.minimum}")
        if self.maximum is not None and v > self.maximum:
            raise BeanConfigError(bean_name, self.name, f"{v} > maximum {self.maximum}")
        return v

    def describe(self) -> str:
        lo = "-inf" if self.minimum is None else str(self.minimum)
        hi = "+inf" if self.maximum is None else str(self.maximum)
        return f"integer in [{lo}, {hi}]"


class FloatProperty(Property):
    """Bounded real value (frequencies, periods, voltages)."""

    def __init__(
        self,
        name: str,
        default: float = 0.0,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        unit: str = "",
        hint: str = "",
    ):
        super().__init__(name, default, hint)
        self.minimum = minimum
        self.maximum = maximum
        self.unit = unit

    def validate(self, bean_name: str, value: Any) -> float:
        try:
            v = float(value)
        except (TypeError, ValueError):
            raise BeanConfigError(bean_name, self.name, f"{value!r} is not a number") from None
        if v != v:  # NaN
            raise BeanConfigError(bean_name, self.name, "NaN is not allowed")
        if self.minimum is not None and v < self.minimum:
            raise BeanConfigError(
                bean_name, self.name, f"{v} {self.unit} < minimum {self.minimum} {self.unit}"
            )
        if self.maximum is not None and v > self.maximum:
            raise BeanConfigError(
                bean_name, self.name, f"{v} {self.unit} > maximum {self.maximum} {self.unit}"
            )
        return v

    def describe(self) -> str:
        lo = "-inf" if self.minimum is None else f"{self.minimum}"
        hi = "+inf" if self.maximum is None else f"{self.maximum}"
        u = f" {self.unit}" if self.unit else ""
        return f"real in [{lo}, {hi}]{u}"


class BoolProperty(Property):
    """Enabled/disabled style setting."""

    def __init__(self, name: str, default: bool = False, hint: str = ""):
        super().__init__(name, bool(default), hint)

    def validate(self, bean_name: str, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise BeanConfigError(bean_name, self.name, f"{value!r} is not a boolean")

    def describe(self) -> str:
        return "yes / no"


class DerivedProperty(Property):
    """Read-only value computed by the expert system (e.g. the achieved
    timer period).  Users cannot assign it."""

    def __init__(self, name: str, default: Any = None, hint: str = ""):
        super().__init__(name, default, hint)

    def validate(self, bean_name: str, value: Any) -> Any:
        raise BeanConfigError(
            bean_name, self.name, "read-only property computed by the expert system"
        )

    def describe(self) -> str:
        return "computed (read-only)"
