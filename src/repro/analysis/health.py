"""PIL link-health scoring: control quality under faults.

Joins the two sides of the fault-tolerance question into one row: what
the link went through (CRC errors, retransmits, recoveries, loss runs)
and what that did to the control loop (IAE against the reference,
divergence verdict, staleness statistics).  Campaigns and E14 build
their tables from these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .stability import is_diverging
from .step_metrics import iae


@dataclass(frozen=True)
class PILHealthReport:
    """One PIL run's fault-tolerance scorecard."""

    iae: float
    diverged: bool
    crc_errors: int
    retransmits: int
    timeouts: int
    send_failures: int
    recoveries: int
    max_consecutive_loss: int
    safe_state_steps: int
    mean_latency: float
    max_latency: float
    reliable: bool

    def stable_within(self, iae_budget: float, latency_budget: float) -> bool:
        """Did the loop stay healthy: not diverging, control error within
        ``iae_budget``, worst sensor staleness within ``latency_budget``?"""
        return (
            not self.diverged
            and self.iae <= iae_budget
            and self.max_latency <= latency_budget
        )

    def summary(self) -> str:
        state = "DIVERGED" if self.diverged else "stable"
        return (
            f"{state}, IAE {self.iae:.2f}, {self.retransmits} rexmit, "
            f"{self.recoveries} recoveries, worst loss run "
            f"{self.max_consecutive_loss}, stale max {self.max_latency*1e3:.2f} ms"
        )


def pil_health(
    pil_result,
    reference: float,
    signal: str = "speed",
    t: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> PILHealthReport:
    """Score a :class:`~repro.sim.PILResult` against its set-point.

    ``t``/``y`` override the trajectory (for pre-sliced windows);
    otherwise ``pil_result.result[signal]`` is scored whole.
    """
    if t is None or y is None:
        t = pil_result.result.t
        y = pil_result.result[signal]
    y = np.asarray(y, dtype=np.float64)
    err = reference - y
    # the envelope heuristic needs >= 9 samples; a shorter window (e.g. a
    # run cut down by safe-state entry) cannot be judged diverging yet
    diverged = is_diverging(t, y, reference) if y.size >= 9 else False
    return PILHealthReport(
        iae=iae(t, err),
        diverged=diverged,
        crc_errors=pil_result.crc_errors,
        retransmits=pil_result.retransmits,
        timeouts=pil_result.arq_timeouts,
        send_failures=pil_result.send_failures,
        recoveries=pil_result.recoveries,
        max_consecutive_loss=pil_result.max_consecutive_loss,
        safe_state_steps=pil_result.safe_state_steps,
        mean_latency=pil_result.mean_data_latency,
        max_latency=pil_result.max_data_latency,
        reliable=pil_result.reliable,
    )
