"""Control-quality and trajectory analysis.

Quantifies the properties the paper's motivation names — "control
performance (e.g. rise time, overshoot, and stability)" (section 1) — and
the MIL/PIL trajectory comparisons the fidelity experiments need.
"""

from .step_metrics import StepMetrics, step_metrics, iae, ise, itae
from .compare import trajectory_rmse, trajectory_max_error, resample_to
from .stability import is_diverging
from .health import PILHealthReport, pil_health

__all__ = [
    "StepMetrics",
    "step_metrics",
    "iae",
    "ise",
    "itae",
    "trajectory_rmse",
    "trajectory_max_error",
    "resample_to",
    "is_diverging",
    "PILHealthReport",
    "pil_health",
]
