"""Divergence detection.

The paper warns that timing variations "may in extreme cases lead to the
instability" (section 1); experiment E6 sweeps jitter and delay and needs
a robust detector for when the loop has actually let go.
"""

from __future__ import annotations

import numpy as np


def is_diverging(
    t: np.ndarray,
    y: np.ndarray,
    reference: float,
    blowup_factor: float = 5.0,
    growth_factor: float = 1.5,
) -> bool:
    """Heuristic instability check.

    Diverging when either (a) the signal exceeds ``blowup_factor`` times
    the reference magnitude, or (b) the error envelope of the last third
    grew by ``growth_factor`` over the middle third (sustained growth).
    """
    y = np.asarray(y, dtype=np.float64)
    if y.size < 9:
        raise ValueError("need at least 9 samples")
    ref_mag = max(abs(reference), 1e-9)
    if np.max(np.abs(y)) > blowup_factor * ref_mag:
        return True
    err = np.abs(y - reference)
    n = len(err)
    mid = err[n // 3: 2 * n // 3]
    late = err[2 * n // 3:]
    mid_env = np.max(mid) if mid.size else 0.0
    late_env = np.max(late) if late.size else 0.0
    if mid_env < 1e-6 * ref_mag:
        return False
    return late_env > growth_factor * mid_env and late_env > 0.2 * ref_mag
