"""Step-response quality metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

_trapz = getattr(np, "trapezoid", None) or np.trapz  # numpy 2 renamed trapz


@dataclass(frozen=True)
class StepMetrics:
    """Classic step-response figures of merit."""

    final_value: float
    rise_time: Optional[float]       # 10% -> 90% of the final value
    overshoot_pct: float             # peak above final, % of the step size
    settling_time: Optional[float]   # last exit from the +/- band
    steady_state_error: float        # |reference - final|

    def summary(self) -> str:
        rt = f"{self.rise_time*1e3:.1f} ms" if self.rise_time is not None else "n/a"
        st = f"{self.settling_time*1e3:.1f} ms" if self.settling_time is not None else "n/a"
        return (
            f"rise {rt}, overshoot {self.overshoot_pct:.1f}%, settle {st}, "
            f"ss-err {self.steady_state_error:.3g}"
        )


def step_metrics(
    t: np.ndarray,
    y: np.ndarray,
    reference: float,
    t_step: float = 0.0,
    settle_band: float = 0.02,
    initial: float = 0.0,
) -> StepMetrics:
    """Analyse the response of ``y`` to a reference step at ``t_step``.

    ``settle_band`` is relative to the step size.  The final value is the
    mean of the last 5 % of samples (robust against ripple).
    """
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape or t.size < 4:
        raise ValueError("t and y must be equal-length arrays of >= 4 samples")
    mask = t >= t_step
    t, y = t[mask], y[mask]
    tail = max(2, int(0.05 * len(y)))
    final = float(np.mean(y[-tail:]))
    step_size = reference - initial
    if step_size == 0:
        raise ValueError("reference step size is zero")

    # rise time 10% -> 90% of the step
    lo = initial + 0.1 * step_size
    hi = initial + 0.9 * step_size
    above_lo = np.nonzero((y - lo) * np.sign(step_size) >= 0)[0]
    above_hi = np.nonzero((y - hi) * np.sign(step_size) >= 0)[0]
    rise: Optional[float] = None
    if above_lo.size and above_hi.size and above_hi[0] >= above_lo[0]:
        rise = float(t[above_hi[0]] - t[above_lo[0]])

    # overshoot relative to the step size
    if step_size > 0:
        peak = float(np.max(y))
        over = max(0.0, peak - final)
    else:
        peak = float(np.min(y))
        over = max(0.0, final - peak)
    overshoot_pct = 100.0 * over / abs(step_size)

    # settling: last time outside the band
    band = abs(step_size) * settle_band
    outside = np.nonzero(np.abs(y - final) > band)[0]
    settling: Optional[float] = None
    if outside.size == 0:
        settling = 0.0
    elif outside[-1] + 1 < len(t):
        settling = float(t[outside[-1] + 1] - t[0])

    return StepMetrics(
        final_value=final,
        rise_time=rise,
        overshoot_pct=overshoot_pct,
        settling_time=settling,
        steady_state_error=abs(reference - final),
    )


def iae(t: np.ndarray, e: np.ndarray) -> float:
    """Integral of absolute error."""
    return float(_trapz(np.abs(e), t))


def ise(t: np.ndarray, e: np.ndarray) -> float:
    """Integral of squared error."""
    return float(_trapz(np.square(e), t))


def itae(t: np.ndarray, e: np.ndarray) -> float:
    """Time-weighted integral of absolute error."""
    t = np.asarray(t, dtype=np.float64)
    return float(_trapz((t - t[0]) * np.abs(e), t))
