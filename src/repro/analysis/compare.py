"""Trajectory comparison helpers (MIL vs PIL fidelity measurements)."""

from __future__ import annotations

import numpy as np


def resample_to(
    t_ref: np.ndarray, t: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Linear resampling of ``(t, y)`` onto ``t_ref`` (clipped at the ends)."""
    return np.interp(np.asarray(t_ref), np.asarray(t), np.asarray(y))


def trajectory_rmse(
    t_a: np.ndarray, y_a: np.ndarray, t_b: np.ndarray, y_b: np.ndarray
) -> float:
    """RMS difference of two trajectories over their common time span."""
    t0 = max(t_a[0], t_b[0])
    t1 = min(t_a[-1], t_b[-1])
    if t1 <= t0:
        raise ValueError("trajectories do not overlap in time")
    grid = np.linspace(t0, t1, 500)
    a = resample_to(grid, t_a, y_a)
    b = resample_to(grid, t_b, y_b)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def trajectory_max_error(
    t_a: np.ndarray, y_a: np.ndarray, t_b: np.ndarray, y_b: np.ndarray
) -> float:
    """Maximum absolute difference over the common time span."""
    t0 = max(t_a[0], t_b[0])
    t1 = min(t_a[-1], t_b[-1])
    if t1 <= t0:
        raise ValueError("trajectories do not overlap in time")
    grid = np.linspace(t0, t1, 500)
    a = resample_to(grid, t_a, y_a)
    b = resample_to(grid, t_b, y_b)
    return float(np.max(np.abs(a - b)))
