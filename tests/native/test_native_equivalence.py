"""Equivalence matrix: native C extension vs reference interpreter.

The same matrix as ``tests/model/test_kernels.py``, but the second leg
forces ``native=True``: the model is lowered to one C translation unit,
compiled, dlopen'd, and driven through the extension step loop.  Every
trajectory must be **bit-identical** (``np.array_equal``, atol=0) to the
reference block-by-block interpreter.  Blocks the native lowering
refuses (stochastic state, wired events) must fall back gracefully to
the Python paths and *still* match the reference.

The whole module auto-skips with a clear notice when the host has no C
toolchain; the fallback-ladder tests at the bottom run regardless.
"""

import numpy as np
import pytest

from repro.model import Simulator, SimulationOptions
from repro.native import find_cc, native_cache_stats

from tests.model.test_kernels import (  # noqa: F401  (reuse the matrix)
    LIBRARY,
    event_model,
    harness,
    long_hyperperiod_model,
    mixed_rate_model,
    wide_affine_model,
)
from tests.native.conftest import require_cc

#: library entries the native lowering refuses by design; they must fall
#: back (reason ``plan_refused``) and still match the reference bit-for-bit.
NATIVE_EXPECTED_FALLBACK = {"white_noise"}


def run_both_native(factory, t_final=0.05, dt=1e-3, solver="rk4", hook=None):
    """Reference interpreter vs forced-native; return (ref, native, sims)."""
    results, sims = [], []
    for native in (False, True):
        sim = Simulator(
            factory().compile(dt),
            SimulationOptions(
                dt=dt,
                t_final=t_final,
                solver=solver,
                log_all_signals=True,
                step_hook=hook,
                use_kernels=native,
                native=native,
            ),
        )
        results.append(sim.run())
        sims.append(sim)
    return results[0], results[1], sims


def assert_identical(ref, native):
    assert np.array_equal(ref.t, native.t)
    assert ref.names == native.names
    for name in ref.names:
        assert np.array_equal(ref[name], native[name]), (
            f"signal '{name}' diverges: max |Δ| = "
            f"{np.max(np.abs(ref[name] - native[name]))}"
        )


def assert_native_active(sims):
    assert sims[1].native_active, sims[1].native_fallback_reason
    assert not sims[0].native_active


# ---------------------------------------------------------------------------
# whole-library matrix
# ---------------------------------------------------------------------------
class TestLibraryMatrix:
    @pytest.mark.parametrize("key", sorted(LIBRARY))
    def test_block_bit_identical(self, key):
        require_cc()
        ref, native, sims = run_both_native(harness(LIBRARY[key]))
        if key in NATIVE_EXPECTED_FALLBACK:
            assert not sims[1].native_active
            assert sims[1].native_fallback_reason.startswith("plan_refused")
        else:
            assert_native_active(sims)
        assert_identical(ref, native)

    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_solvers(self, solver):
        require_cc()
        ref, native, sims = run_both_native(
            harness(LIBRARY["transfer_function"]), solver=solver, t_final=0.2
        )
        assert_native_active(sims)
        assert_identical(ref, native)


# ---------------------------------------------------------------------------
# structure-specific models
# ---------------------------------------------------------------------------
class TestStructures:
    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_mixed_rates(self, solver):
        require_cc()
        ref, native, sims = run_both_native(
            mixed_rate_model, t_final=0.3, solver=solver
        )
        assert_native_active(sims)
        assert_identical(ref, native)

    def test_hyperperiod_overflow_guarded_passes(self):
        require_cc()
        ref, native, sims = run_both_native(long_hyperperiod_model, t_final=1.0)
        assert_native_active(sims)
        assert_identical(ref, native)

    def test_wide_affine(self):
        require_cc()
        ref, native, sims = run_both_native(wide_affine_model, t_final=0.2)
        assert_native_active(sims)
        assert_identical(ref, native)

    def test_event_model_falls_back(self):
        """Wired function-call events stay on the Python paths."""
        require_cc()
        ref, native, sims = run_both_native(event_model, t_final=0.05)
        assert not sims[1].native_active
        assert sims[1].native_fallback_reason.startswith("plan_refused")
        assert_identical(ref, native)

    def test_step_hook_injection(self):
        """Co-simulation hook forces per-step advance(); the native
        extension still executes each major step and sees the injected
        write through the shared signal buffer."""
        require_cc()

        def hook(t, sim):
            if 0.01 <= t <= 0.02:
                sim.write_signal("hold", 0, -5.0)

        ref, native, sims = run_both_native(
            mixed_rate_model, t_final=0.1, hook=hook
        )
        assert_native_active(sims)
        assert_identical(ref, native)


class TestServoCaseStudy:
    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_full_case_study_bit_identical(self, solver):
        require_cc()
        from repro.casestudy import ServoConfig, build_servo_model

        def factory():
            return build_servo_model(ServoConfig(setpoint=100.0)).model

        ref, native, sims = run_both_native(
            factory, t_final=0.2, dt=1e-4, solver=solver
        )
        assert_native_active(sims)
        assert_identical(ref, native)

    def test_warm_cache_reuses_artifact(self):
        require_cc()
        from repro.casestudy import ServoConfig, build_servo_model

        def factory():
            return build_servo_model(ServoConfig(setpoint=100.0)).model

        before = native_cache_stats()
        _, _, sims = run_both_native(factory, t_final=0.01, dt=1e-4)
        assert_native_active(sims)
        mid = native_cache_stats()
        assert mid["misses"] == before["misses"] + 1
        _, _, sims = run_both_native(factory, t_final=0.01, dt=1e-4)
        assert_native_active(sims)
        after = native_cache_stats()
        assert after["hits"] == mid["hits"] + 1
        assert after["misses"] == mid["misses"]


# ---------------------------------------------------------------------------
# fallback ladder — these run with or without a compiler
# ---------------------------------------------------------------------------
class TestFallbackLadder:
    def _counter_value(self, reason):
        from repro.obs.metrics import get_registry

        c = get_registry().counter(
            "kernel_fallback_total", labels={"reason": reason}
        )
        return c.value

    def test_disabled_by_options(self):
        ref, native, sims = run_both_native(mixed_rate_model, t_final=0.02)
        assert not sims[0].native_active
        assert sims[0].native_fallback_reason == "disabled"

    def test_env_off_overrides_options(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "off")
        before = self._counter_value("disabled")
        ref, native, sims = run_both_native(mixed_rate_model, t_final=0.05)
        assert not sims[1].native_active
        assert sims[1].native_fallback_reason == "disabled"
        assert self._counter_value("disabled") >= before + 1
        assert_identical(ref, native)

    def test_auto_below_threshold_stays_python(self):
        sim = Simulator(
            mixed_rate_model().compile(1e-3),
            SimulationOptions(dt=1e-3, t_final=0.02, native="auto"),
        )
        sim.run()
        assert not sim.native_active
        assert sim.native_fallback_reason == "below_auto_threshold"

    def test_toolchain_missing_counts_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/cc-not-here")
        before = self._counter_value("toolchain_missing")
        ref, native, sims = run_both_native(mixed_rate_model, t_final=0.05)
        assert not sims[1].native_active
        assert sims[1].native_fallback_reason.startswith("toolchain_missing")
        assert self._counter_value("toolchain_missing") >= before + 1
        assert_identical(ref, native)
