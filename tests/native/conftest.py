"""Shared fixtures for the native-path suite.

Every test in this package compiles into a session-scoped temporary
cache directory (never the user's ``~/.cache/repro-native``), and the
whole package auto-skips with a clear notice when the host has no C
toolchain — except the tests that exercise the fallback ladder itself,
which mark themselves independent of the compiler.
"""

import pytest


@pytest.fixture(autouse=True)
def _tmp_native_cache(tmp_path_factory, monkeypatch):
    cache = tmp_path_factory.mktemp("native-cache")
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
    # the suite controls the mode explicitly through SimulationOptions
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    monkeypatch.delenv("REPRO_NATIVE_THRESHOLD", raising=False)
    yield cache


def require_cc():
    from repro.native import find_cc

    if find_cc() is None:
        pytest.skip(
            "no C compiler on PATH (cc/gcc/clang) — native path untestable "
            "here; the Python fallback legs still run"
        )
