"""Tests for the PowerPC MPC5554 chip model (FPU-equipped, section 8)."""

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.codegen import step_cost_cycles
from repro.core import PEERTTarget
from repro.core.templates import pe_registry
from repro.mcu import CHIPS, MC56F8367, MCUDevice, MPC5554


class TestDescriptor:
    def test_in_catalogue(self):
        assert "MPC5554" in CHIPS
        assert MPC5554.has_fpu
        assert MPC5554.word_bits == 32

    def test_default_clock(self):
        dev = MCUDevice(MPC5554)
        assert dev.clock.f_sys == pytest.approx(132e6)

    def test_rich_peripheral_complement(self):
        dev = MCUDevice(MPC5554)
        assert "timer7" in dev.peripherals
        assert "spi2" in dev.peripherals
        assert dev.adc(0).channels == 16


class TestFpuEconomics:
    def test_double_controller_is_cheap_with_fpu(self):
        sm = build_servo_model(ServoConfig())
        app = PEERTTarget(sm.model).build()
        reg = pe_registry()
        c_dsp = step_cost_cycles(app.cm, MC56F8367, reg)
        c_ppc = step_cost_cycles(app.cm, MPC5554, reg)
        # hardware floating point removes the emulation penalty entirely
        assert c_ppc < c_dsp / 5

    def test_fixed_point_advantage_vanishes_with_fpu(self):
        sm_f = build_servo_model(ServoConfig(fixed_point=False))
        sm_q = build_servo_model(ServoConfig(fixed_point=True))
        app_f = PEERTTarget(sm_f.model).build()
        app_q = PEERTTarget(sm_q.model).build()
        reg = pe_registry()
        ratio_dsp = step_cost_cycles(app_f.cm, MC56F8367, reg) / step_cost_cycles(
            app_q.cm, MC56F8367, reg
        )
        ratio_ppc = step_cost_cycles(app_f.cm, MPC5554, reg) / step_cost_cycles(
            app_q.cm, MPC5554, reg
        )
        # the case study's Q15 conversion pays off on the DSP, barely on
        # the FPU part — the data-type decision is chip-dependent
        assert ratio_dsp > 2.0
        assert ratio_ppc < 1.5


class TestRetarget:
    def test_servo_retargets_to_powerpc(self):
        sm = build_servo_model(ServoConfig())
        sm.pe_config.set_property("chip", "MPC5554")
        app = PEERTTarget(sm.model).build()
        assert app.project.chip.name == "MPC5554"
        # and it runs deployed
        from repro.sim import HILSimulator

        res = HILSimulator(app, plant_dt=1e-4).run(0.3)
        assert res.final("speed") == pytest.approx(100.0, abs=10.0)
