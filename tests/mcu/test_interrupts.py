"""Tests for the interrupt controller and CPU occupancy model."""

import pytest

from repro.mcu import DispatchMode, InterruptSource, MCUDevice, MC56F8367


def device(mode=DispatchMode.NONPREEMPTIVE):
    return MCUDevice(MC56F8367, dispatch_mode=mode)


class TestBasicDispatch:
    def test_single_isr_runs(self):
        dev = device()
        ran = []
        dev.intc.register(
            InterruptSource("t", priority=1, cycles=600, on_complete=lambda d: ran.append(d.time))
        )
        dev.intc.request("t")
        dev.run_until(1e-3)
        assert len(ran) == 1
        rec = dev.cpu.records[0]
        assert rec.name == "t"
        # latency 22 cycles + 600 cycles at 60 MHz
        assert rec.start_latency == pytest.approx(22 / 60e6)
        assert rec.execution_time == pytest.approx(600 / 60e6)

    def test_disabled_source_dropped(self):
        dev = device()
        dev.intc.register(InterruptSource("t", priority=1, cycles=100))
        dev.intc.enable("t", False)
        dev.intc.request("t")
        dev.run_until(1e-3)
        assert dev.cpu.records == []
        assert dev.intc.dropped == [("t", 0.0)]

    def test_duplicate_registration_rejected(self):
        dev = device()
        dev.intc.register(InterruptSource("t", priority=1))
        with pytest.raises(ValueError):
            dev.intc.register(InterruptSource("t", priority=2))

    def test_callable_cost(self):
        dev = device()
        costs = iter([100.0, 200.0])
        dev.intc.register(InterruptSource("t", priority=1, cycles=lambda: next(costs)))
        dev.intc.request("t")
        dev.run_until(1e-4)
        dev.intc.request("t")
        dev.run_until(2e-4)
        assert [r.cycles for r in dev.cpu.records] == [100.0, 200.0]

    def test_busy_accounting(self):
        dev = device()
        dev.intc.register(InterruptSource("t", priority=1, cycles=6000))
        dev.intc.request("t")
        dev.run_until(1e-3)
        assert dev.cpu.busy_time == pytest.approx(6000 / 60e6)
        assert dev.cpu.utilization(1e-3) == pytest.approx(0.1)


class TestNonPreemptive:
    def test_lower_priority_waits(self):
        dev = device(DispatchMode.NONPREEMPTIVE)
        order = []
        dev.intc.register(
            InterruptSource("low", priority=5, cycles=6000, on_complete=lambda d: order.append("low"))
        )
        dev.intc.register(
            InterruptSource("high", priority=1, cycles=600, on_complete=lambda d: order.append("high"))
        )
        dev.intc.request("low")
        dev.schedule(1e-5, lambda: dev.intc.request("high"))  # arrives mid-low
        dev.run_until(1e-3)
        assert order == ["low", "high"]  # no preemption
        low = dev.cpu.records_for("low")[0]
        high = dev.cpu.records_for("high")[0]
        assert high.t_start >= low.t_end  # high waited for low to finish
        assert low.preemptions == 0

    def test_priority_orders_pending_queue(self):
        dev = device(DispatchMode.NONPREEMPTIVE)
        order = []
        dev.intc.register(
            InterruptSource("a", priority=5, cycles=6000, on_complete=lambda d: order.append("a"))
        )
        dev.intc.register(
            InterruptSource("b", priority=2, cycles=600, on_complete=lambda d: order.append("b"))
        )
        dev.intc.register(
            InterruptSource("c", priority=1, cycles=600, on_complete=lambda d: order.append("c"))
        )
        dev.intc.request("a")
        dev.schedule(1e-6, lambda: dev.intc.request("b"))
        dev.schedule(2e-6, lambda: dev.intc.request("c"))
        dev.run_until(1e-3)
        assert order == ["a", "c", "b"]  # after a, highest priority first

    def test_max_nesting_is_one(self):
        dev = device(DispatchMode.NONPREEMPTIVE)
        dev.intc.register(InterruptSource("a", priority=5, cycles=6000))
        dev.intc.register(InterruptSource("b", priority=1, cycles=600))
        dev.intc.request("a")
        dev.schedule(1e-5, lambda: dev.intc.request("b"))
        dev.run_until(1e-3)
        assert dev.cpu.max_nesting == 1


class TestPreemptive:
    def test_high_priority_preempts(self):
        dev = device(DispatchMode.PREEMPTIVE)
        order = []
        dev.intc.register(
            InterruptSource("low", priority=5, cycles=6000, on_complete=lambda d: order.append("low"))
        )
        dev.intc.register(
            InterruptSource("high", priority=1, cycles=600, on_complete=lambda d: order.append("high"))
        )
        dev.intc.request("low")
        dev.schedule(1e-5, lambda: dev.intc.request("high"))
        dev.run_until(1e-3)
        assert order == ["high", "low"]
        low = dev.cpu.records_for("low")[0]
        high = dev.cpu.records_for("high")[0]
        assert low.preemptions == 1
        assert high.nesting_depth == 2
        # high's response time is short despite low running
        assert high.response_time < low.response_time

    def test_preempted_total_time_preserved(self):
        dev = device(DispatchMode.PREEMPTIVE)
        dev.intc.register(InterruptSource("low", priority=5, cycles=6000))
        dev.intc.register(InterruptSource("high", priority=1, cycles=600))
        dev.intc.request("low")
        dev.schedule(1e-5, lambda: dev.intc.request("high"))
        dev.run_until(1e-3)
        low = dev.cpu.records_for("low")[0]
        # execution window = own cycles + high's cycles + high's entry latency
        expected = (6000 + 600 + 22) / 60e6
        assert low.execution_time == pytest.approx(expected, rel=1e-6)

    def test_equal_priority_does_not_preempt(self):
        dev = device(DispatchMode.PREEMPTIVE)
        order = []
        dev.intc.register(
            InterruptSource("a", priority=3, cycles=6000, on_complete=lambda d: order.append("a"))
        )
        dev.intc.register(
            InterruptSource("b", priority=3, cycles=600, on_complete=lambda d: order.append("b"))
        )
        dev.intc.request("a")
        dev.schedule(1e-5, lambda: dev.intc.request("b"))
        dev.run_until(1e-3)
        assert order == ["a", "b"]

    def test_stack_model_grows_with_nesting(self):
        dev = device(DispatchMode.PREEMPTIVE)
        dev.intc.register(InterruptSource("l1", priority=9, cycles=60000))
        dev.intc.register(InterruptSource("l2", priority=5, cycles=6000))
        dev.intc.register(InterruptSource("l3", priority=1, cycles=600))
        dev.intc.request("l1")
        dev.schedule(1e-5, lambda: dev.intc.request("l2"))
        dev.schedule(2e-5, lambda: dev.intc.request("l3"))
        dev.run_until(1e-2)
        assert dev.cpu.max_nesting == 3
        assert dev.cpu.max_stack_bytes == 64 + 3 * 32


class TestDeviceScheduler:
    def test_events_run_in_time_order(self):
        dev = device()
        seen = []
        dev.schedule(3e-3, lambda: seen.append("c"))
        dev.schedule(1e-3, lambda: seen.append("a"))
        dev.schedule(2e-3, lambda: seen.append("b"))
        dev.run_until(5e-3)
        assert seen == ["a", "b", "c"]

    def test_fifo_for_same_timestamp(self):
        dev = device()
        seen = []
        dev.schedule(1e-3, lambda: seen.append(1))
        dev.schedule(1e-3, lambda: seen.append(2))
        dev.run_until(1e-3)
        assert seen == [1, 2]

    def test_cannot_run_backwards(self):
        dev = device()
        dev.run_until(1e-3)
        with pytest.raises(ValueError):
            dev.run_until(0.5e-3)

    def test_past_event_clamps_to_now(self):
        dev = device()
        dev.run_until(1e-3)
        seen = []
        dev.schedule(0.0, lambda: seen.append(dev.time))
        dev.run_until(1e-3)
        assert seen == [1e-3]
