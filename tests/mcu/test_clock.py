"""Unit tests for the clock tree and divider solver."""

import pytest

from repro.mcu import ClockTree, PrescalerChain


class TestClockTree:
    def test_pll_math(self):
        ct = ClockTree(8e6, pll_mult=15, pll_div=2)
        assert ct.f_sys == 60e6
        assert ct.f_bus == 60e6

    def test_bus_divider(self):
        ct = ClockTree(8e6, pll_mult=15, pll_div=2, bus_div=2)
        assert ct.f_bus == 30e6

    def test_overclock_rejected(self):
        with pytest.raises(ValueError):
            ClockTree(8e6, pll_mult=20, pll_div=1, f_sys_max=60e6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClockTree(0.0)
        with pytest.raises(ValueError):
            ClockTree(8e6, pll_mult=0)

    def test_cycle_conversions_roundtrip(self):
        ct = ClockTree(8e6, pll_mult=15, pll_div=2)
        assert ct.seconds_to_cycles(ct.cycles_to_seconds(1234)) == pytest.approx(1234)


class TestPrescalerChain:
    def test_exact_solution(self):
        ch = PrescalerChain([1, 2, 4, 8], 0xFFFF)
        sol = ch.solve_period(60e6, 1e-3)  # 60000 ticks = presc 1, mod 60000
        assert sol is not None
        assert sol.exact
        assert sol.achieved == pytest.approx(1e-3)

    def test_needs_prescaler(self):
        ch = PrescalerChain([1, 2, 4, 8], 0xFFFF)
        sol = ch.solve_period(60e6, 5e-3)  # 300000 ticks needs prescaler >= 8
        assert sol is not None
        assert sol.prescaler == 8
        assert sol.relative_error < 1e-4

    def test_out_of_range_returns_none(self):
        ch = PrescalerChain([1, 2], 0xFF)
        assert ch.solve_period(60e6, 1.0) is None  # far too long
        assert ch.solve_period(60e6, 1e-12) is None  # shorter than one tick

    def test_inexact_period_reports_error(self):
        ch = PrescalerChain([1], 0xFFFF)
        sol = ch.solve_period(60e6, 1.00001e-3)
        assert sol is not None
        assert 0 < sol.relative_error < 2e-5
        assert not sol.exact

    def test_solve_rate(self):
        ch = PrescalerChain([1, 2, 4, 8], 0x7FFF)
        sol = ch.solve_rate(60e6, 20e3)  # 20 kHz PWM
        assert sol is not None
        assert sol.achieved == pytest.approx(20e3, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrescalerChain([], 10)
        with pytest.raises(ValueError):
            PrescalerChain([0], 10)
        with pytest.raises(ValueError):
            PrescalerChain([1], 0)
        ch = PrescalerChain([1], 10)
        with pytest.raises(ValueError):
            ch.solve_period(60e6, -1.0)
        with pytest.raises(ValueError):
            ch.solve_rate(60e6, 0.0)

    def test_achieved_is_on_grid(self):
        ch = PrescalerChain([1, 2, 4], 1000)
        sol = ch.solve_period(1e6, 3.3e-4)
        assert sol is not None
        assert sol.achieved == pytest.approx(sol.prescaler * sol.modulo / 1e6)
