"""Tests for the on-chip peripheral models."""

import math

import pytest

from repro.mcu import InterruptSource, MCUDevice, MC56F8367, MC9S12DP256


def device():
    return MCUDevice(MC56F8367)


class TestADC:
    def test_quantization_12bit(self):
        dev = device()
        adc = dev.adc(0)
        assert adc.resolution_bits == 12
        assert adc.raw_max == 4095
        assert adc.quantize(0.0) == 0
        assert adc.quantize(3.3) == 4095  # rail clip
        mid = adc.quantize(1.65)
        assert mid in (2047, 2048)

    def test_clipping(self):
        adc = device().adc(0)
        assert adc.quantize(-1.0) == 0
        assert adc.quantize(10.0) == 4095

    def test_conversion_takes_time_and_raises_irq(self):
        dev = device()
        adc = dev.adc(0)
        adc.irq_vector = "adc_eoc"
        done = []
        dev.intc.register(
            InterruptSource("adc_eoc", priority=2, cycles=50, on_complete=lambda d: done.append(d.time))
        )
        dev.analog_in[0] = 1.0
        adc.start_conversion(0)
        assert adc.read(0) == 0  # not done yet
        dev.run_until(1e-3)
        assert adc.read(0) == adc.quantize(1.0)
        assert len(done) == 1
        assert done[0] >= adc.conversion_time()

    def test_value_latched_at_start(self):
        dev = device()
        adc = dev.adc(0)
        dev.analog_in[0] = 1.0
        adc.start_conversion(0)
        dev.analog_in[0] = 2.0  # changes after sample-and-hold
        dev.run_until(1e-3)
        assert adc.read(0) == adc.quantize(1.0)

    def test_busy_ignores_second_start(self):
        dev = device()
        adc = dev.adc(0)
        dev.analog_in[0] = 1.0
        dev.analog_in[1] = 2.0
        adc.start_conversion(0)
        adc.start_conversion(1)  # ignored
        dev.run_until(1e-3)
        assert adc.read(1) == 0

    def test_continuous_mode(self):
        dev = device()
        adc = dev.adc(0)
        dev.analog_in[0] = 1.5
        adc.set_continuous(0)
        dev.run_until(adc.conversion_time() * 10.5)
        adc.set_continuous(None)
        assert adc.read(0) == adc.quantize(1.5)

    def test_bad_channel(self):
        adc = device().adc(0)
        with pytest.raises(ValueError):
            adc.start_conversion(99)

    def test_resolution_varies_by_chip(self):
        dev10 = MCUDevice(MC9S12DP256)
        assert dev10.adc(0).resolution_bits == 10
        assert dev10.adc(0).raw_max == 1023

    def test_roundtrip_error_below_lsb(self):
        adc = device().adc(0)
        for v in (0.1, 1.0, 2.345, 3.0):
            raw = adc.quantize(v)
            assert abs(adc.to_volts(raw) - v) <= adc.lsb_volts


class TestPWM:
    def test_configure_20khz(self):
        dev = device()
        pwm = dev.pwm(0)
        sol = pwm.configure(20e3)
        assert sol.achieved == pytest.approx(20e3, rel=1e-3)
        assert pwm.modulo == 3000  # 60 MHz / 20 kHz

    def test_duty_quantization(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.enable()
        achieved = pwm.set_duty(0, 0.123456)
        assert achieved == pwm.duty(0)
        assert abs(achieved - 0.123456) <= pwm.duty_resolution / 2 + 1e-12

    def test_duty_clamped(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.enable()
        assert pwm.set_duty(0, 1.5) == 1.0
        assert pwm.set_duty(0, -0.5) == 0.0

    def test_disabled_outputs_zero(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.set_duty(0, 0.5)
        assert pwm.duty(0) == 0.0
        pwm.enable()
        assert pwm.duty(0) == 0.5

    def test_average_output(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.enable()
        pwm.set_duty(0, 0.25)
        assert pwm.average_output(0, 24.0) == pytest.approx(6.0)

    def test_waveform_edge_aligned(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.enable()
        pwm.set_duty(0, 0.5)
        T = pwm.period
        assert pwm.waveform(0, 0.1 * T) == 1
        assert pwm.waveform(0, 0.9 * T) == 0

    def test_waveform_duty_integral(self):
        dev = device()
        pwm = dev.pwm(0)
        pwm.configure(20e3)
        pwm.enable()
        d = pwm.set_duty(0, 0.3)
        T = pwm.period
        n = 10000
        high = sum(pwm.waveform(0, k * T / n) for k in range(n)) / n
        assert high == pytest.approx(d, abs=2 / n * 10)

    def test_unreachable_frequency(self):
        dev = device()
        pwm = dev.pwm(0)
        with pytest.raises(ValueError):
            pwm.configure(0.1)  # far below what the 15-bit counter reaches

    def test_unconfigured_raises(self):
        dev = device()
        with pytest.raises(RuntimeError):
            dev.pwm(0).modulo

    def test_hcs12_has_coarser_duty(self):
        # 8-bit PWM counter on HCS12 vs 15-bit on 56F8367
        d67 = device()
        d12 = MCUDevice(MC9S12DP256)
        p67, p12 = d67.pwm(0), d12.pwm(0)
        p67.configure(5e3)
        p12.configure(5e3)
        assert p12.duty_resolution > p67.duty_resolution


class TestPeriodicTimer:
    def test_ticks_on_grid(self):
        dev = device()
        tmr = dev.timer(0)
        tmr.configure(1e-3)
        ticks = []
        tmr.irq_vector = "tick"
        dev.intc.register(
            InterruptSource("tick", priority=1, cycles=10, on_start=lambda d: ticks.append(d.time))
        )
        tmr.start()
        dev.run_until(10.5e-3)
        assert len(ticks) == 10
        # grid spacing is exact (hardware reload counter)
        for k in range(1, len(ticks)):
            assert ticks[k] - ticks[k - 1] == pytest.approx(tmr.period, abs=1e-12)

    def test_stop(self):
        dev = device()
        tmr = dev.timer(0)
        tmr.configure(1e-3)
        tmr.start()
        dev.run_until(3.5e-3)
        tmr.stop()
        count = tmr.tick_count
        dev.run_until(10e-3)
        assert tmr.tick_count == count

    def test_unconfigured_start_rejected(self):
        dev = device()
        with pytest.raises(RuntimeError):
            dev.timer(0).start()

    def test_out_of_range_period(self):
        dev = device()
        with pytest.raises(ValueError):
            dev.timer(0).configure(100.0)


class TestGPIO:
    def test_write_read_output(self):
        dev = device()
        port = dev.gpio(0)
        port.set_direction(3, "out")
        port.write(3, 1)
        assert port.read(3) == 1

    def test_write_to_input_rejected(self):
        dev = device()
        with pytest.raises(ValueError):
            dev.gpio(0).write(0, 1)

    def test_edge_interrupt(self):
        dev = device()
        port = dev.gpio(0)
        port.irq_vector = "key"
        hits = []
        dev.intc.register(
            InterruptSource("key", priority=3, cycles=10, on_complete=lambda d: hits.append(d.time))
        )
        port.enable_edge_irq(0, "rising")
        port.drive_input(0, 1)
        port.drive_input(0, 0)  # falling: no irq
        port.drive_input(0, 1)
        dev.run_until(1e-3)
        assert len(hits) == 2

    def test_edge_irq_needs_input(self):
        dev = device()
        port = dev.gpio(0)
        port.set_direction(0, "out")
        with pytest.raises(ValueError):
            port.enable_edge_irq(0)


class TestQuadratureDecoder:
    def test_counts_per_revolution(self):
        dev = device()
        q = dev.qdec(0)
        q.update_from_angle(2 * math.pi, ppr=100)
        assert q.read_position() == 400  # x4 decoding

    def test_wrapping(self):
        dev = device()
        q = dev.qdec(0)
        q.update_from_angle(200 * 2 * math.pi, ppr=100)  # 80000 counts
        assert q.read_position() == 80000 % 65536

    def test_reverse_rotation(self):
        dev = device()
        q = dev.qdec(0)
        q.update_from_angle(-math.pi, ppr=100)
        assert q.read_position() == (0 - 200) % 65536

    def test_count_delta_wrap_aware(self):
        from repro.mcu.peripherals.qdec import QuadratureDecoder as QD

        assert QD.count_delta(10, 65530) == 16
        assert QD.count_delta(65530, 10) == -16
        assert QD.count_delta(100, 50) == 50

    def test_index_pulse(self):
        dev = device()
        q = dev.qdec(0)
        q.update_from_angle(2.5 * 2 * math.pi, ppr=100)
        assert q.index_count == 2

    def test_reset_on_index(self):
        dev = device()
        q = dev.qdec(0)
        q.reset_on_index = True
        q.update_from_angle(1.0 * 2 * math.pi, ppr=100)
        assert q.read_position() == 0


class TestWatchdog:
    def test_fires_without_kick(self):
        dev = device()
        wd = dev.wdog(0)
        resets = []
        wd.on_reset = lambda: resets.append(dev.time)
        wd.configure(1e-3)
        wd.start()
        dev.run_until(5e-3)
        assert resets and resets[0] == pytest.approx(1e-3)

    def test_kick_prevents_reset(self):
        dev = device()
        wd = dev.wdog(0)
        wd.configure(1e-3)
        wd.start()
        for k in range(1, 10):
            dev.schedule(k * 0.5e-3, wd.kick)
        dev.run_until(5e-3)
        assert wd.reset_count == 0

    def test_unconfigured_start_rejected(self):
        dev = device()
        with pytest.raises(RuntimeError):
            dev.wdog(0).start()


class TestDevice:
    def test_peripheral_complement_from_chip(self):
        dev = device()
        names = set(dev.peripherals)
        assert {"adc0", "adc1", "pwm0", "pwm1", "timer0", "qdec0", "sci0", "gpio0", "wdog0"} <= names

    def test_unknown_peripheral_message(self):
        dev = device()
        with pytest.raises(KeyError, match="available"):
            dev.peripheral("can0")

    def test_reset_clears_state(self):
        dev = device()
        dev.analog_in[0] = 1.0
        dev.adc(0).start_conversion(0)
        dev.run_until(1e-3)
        dev.reset()
        assert dev.time == 0.0
        assert dev.adc(0).read(0) == 0
        assert dev.pending_events == 0
