"""Tests for the controllers, filters and reference generators."""

import numpy as np
import pytest

from repro.control import (
    FixedPointPID,
    LowPassFilter,
    PIDController,
    PIDGains,
    Staircase,
    tune_speed_loop,
)
from repro.model import Model
from repro.model.block import BlockContext
from repro.model.engine import simulate
from repro.model.library import Scope, Step, Sum, TransferFunction, ZeroOrderHold


class TestGains:
    def test_limits_validated(self):
        with pytest.raises(ValueError):
            PIDGains(kp=1.0, u_min=1.0, u_max=0.0)

    def test_tuning_produces_positive_gains(self):
        g = tune_speed_loop(dc_gain=14.0, time_constant=0.04, sample_time=1e-3)
        assert g.kp > 0 and g.ki > 0

    def test_tuning_rejects_absurd_bandwidth(self):
        with pytest.raises(ValueError, match="too high"):
            tune_speed_loop(14.0, 0.04, sample_time=1e-2, bandwidth_hz=50.0)

    def test_tuning_rejects_bad_plant(self):
        with pytest.raises(ValueError):
            tune_speed_loop(-1.0, 0.04, 1e-3)


def closed_loop(controller, t_final=1.0, dt=1e-3, ref=1.0):
    """controller (error->u in [0,1] scaled to +-10) on G(s)=10/(0.1 s + 1)."""
    m = Model()
    r = m.add(Step("r", final=ref))
    e = m.add(Sum("e", signs="+-"))
    m.add(controller)
    zoh = m.add(ZeroOrderHold("zoh", sample_time=controller.sample_time))
    plant = m.add(TransferFunction("plant", [10.0], [0.1, 1.0]))
    sc = m.add(Scope("sc", label="y"))
    m.connect(r, e, 0, 0)
    m.connect(plant, e, 0, 1)
    m.connect(e, controller)
    m.connect(controller, zoh)
    m.connect(zoh, plant)
    m.connect(plant, sc)
    return simulate(m, t_final=t_final, dt=dt)


class TestPIDController:
    def test_tracks_step(self):
        pid = PIDController("pid", PIDGains(kp=0.5, ki=3.0, u_min=0.0, u_max=1.0), 1e-3)
        res = closed_loop(pid, ref=5.0)
        assert res.final("y") == pytest.approx(5.0, rel=0.02)

    def test_saturation_respected(self):
        gains = PIDGains(kp=100.0, ki=0.0, u_min=0.0, u_max=1.0)
        pid = PIDController("pid", gains, 1e-3)
        ctx = BlockContext()
        pid.start(ctx)
        assert pid.outputs(0, [10.0], ctx)[0] == 1.0
        assert pid.outputs(0, [-10.0], ctx)[0] == 0.0

    def test_antiwindup_limits_integrator(self):
        gains = PIDGains(kp=0.0, ki=10.0, u_min=0.0, u_max=1.0)
        pid = PIDController("pid", gains, 1e-3)
        ctx = BlockContext()
        pid.start(ctx)
        for _ in range(10000):
            pid.update(0, [100.0], ctx)
        # without clamping i would reach 10*1e-3*100*10000 = 10000
        assert ctx.dwork["i"] <= 1.0 + 10.0 * 1e-3 * 100

    def test_derivative_term(self):
        gains = PIDGains(kp=0.0, ki=0.0, kd=0.1, u_min=-10, u_max=10)
        pid = PIDController("pid", gains, 0.1)
        ctx = BlockContext()
        pid.start(ctx)
        pid.update(0, [0.0], ctx)
        assert pid.outputs(0, [1.0], ctx)[0] == pytest.approx(1.0)  # 0.1 * 1/0.1

    def test_bad_sample_time(self):
        with pytest.raises(ValueError):
            PIDController("pid", PIDGains(kp=1.0), 0.0)


class TestFixedPointPID:
    def make(self, **over):
        kw = dict(
            gains=PIDGains(kp=0.5, ki=3.0, u_min=0.0, u_max=1.0),
            sample_time=1e-3,
            e_scale=10.0,
        )
        kw.update(over)
        return FixedPointPID("qpid", **kw)

    def test_tracks_step_close_to_float(self):
        qpid = self.make()
        res_q = closed_loop(qpid, ref=5.0)
        pid = PIDController("pid", PIDGains(kp=0.5, ki=3.0, u_min=0.0, u_max=1.0), 1e-3)
        res_f = closed_loop(pid, ref=5.0)
        assert res_q.final("y") == pytest.approx(res_f.final("y"), rel=0.05)

    def test_output_is_quantized(self):
        qpid = self.make()
        ctx = BlockContext()
        qpid.start(ctx)
        outs = {qpid.outputs(0, [e], ctx)[0] for e in np.linspace(0.0, 0.001, 50)}
        # tiny error variations collapse onto the Q15 grid
        assert len(outs) < 50

    def test_error_scale_validated(self):
        with pytest.raises(ValueError):
            self.make(e_scale=0.0)

    def test_integrator_is_fx(self):
        from repro.fixpt import Fx

        qpid = self.make()
        ctx = BlockContext()
        qpid.start(ctx)
        qpid.update(0, [1.0], ctx)
        assert isinstance(ctx.dwork["i"], Fx)


class TestLowPassFilter:
    def test_dc_gain_unity(self):
        m = Model()
        src = m.add(Step("s", final=2.0))
        f = m.add(LowPassFilter("f", cutoff_hz=10.0, sample_time=1e-3))
        sc = m.add(Scope("sc", label="y"))
        m.connect(src, f)
        m.connect(f, sc)
        res = simulate(m, t_final=1.0, dt=1e-3)
        assert res.final("y") == pytest.approx(2.0, rel=1e-3)

    def test_cutoff_sets_time_constant(self):
        f = LowPassFilter("f", cutoff_hz=10.0, sample_time=1e-3)
        # alpha = 1 - exp(-2*pi*f*Ts)
        assert f.alpha == pytest.approx(1 - np.exp(-2 * np.pi * 10 * 1e-3))

    def test_validation(self):
        with pytest.raises(ValueError):
            LowPassFilter("f", cutoff_hz=0.0, sample_time=1e-3)


class TestStaircase:
    def test_levels_switch_at_times(self):
        s = Staircase("s", [0.0, 1.0, 2.0], [10.0, 20.0, 5.0])
        ctx = BlockContext()
        assert s.outputs(0.5, [], ctx) == [10.0]
        assert s.outputs(1.0, [], ctx) == [20.0]
        assert s.outputs(2.5, [], ctx) == [5.0]

    def test_before_first_time(self):
        s = Staircase("s", [1.0], [10.0])
        assert s.outputs(0.5, [], BlockContext()) == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Staircase("s", [1.0, 0.5], [1.0, 2.0])
        with pytest.raises(ValueError):
            Staircase("s", [], [])
        with pytest.raises(ValueError):
            Staircase("s", [0.0], [1.0, 2.0])
