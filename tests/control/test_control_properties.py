"""Property-based tests for controller invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.control import FixedPointPID, PIDController, PIDGains, QuadratureSpeed
from repro.model.block import BlockContext

gains_st = st.builds(
    PIDGains,
    kp=st.floats(min_value=0.0, max_value=2.0),
    ki=st.floats(min_value=0.0, max_value=20.0),
    kd=st.just(0.0),
    u_min=st.just(0.0),
    u_max=st.just(1.0),
)
error_seq = st.lists(st.floats(min_value=-50, max_value=50), min_size=5, max_size=60)


def run_pid(pid, errors):
    ctx = BlockContext()
    pid.start(ctx)
    out = []
    for e in errors:
        out.append(pid.outputs(0.0, [e], ctx)[0])
        pid.update(0.0, [e], ctx)
    return out


class TestPIDProperties:
    @given(gains_st, error_seq)
    @settings(max_examples=50, deadline=None)
    def test_output_always_within_limits(self, gains, errors):
        out = run_pid(PIDController("p", gains, 1e-3), errors)
        assert all(gains.u_min <= y <= gains.u_max for y in out)

    @given(gains_st, error_seq)
    @settings(max_examples=50, deadline=None)
    def test_fixed_point_within_limits_and_close(self, gains, errors):
        f = run_pid(PIDController("p", gains, 1e-3), errors)
        q = run_pid(FixedPointPID("q", gains, 1e-3, e_scale=64.0), errors)
        assert all(0.0 <= y <= 1.0 for y in q)
        # the Q15 path tracks the float path within a small absolute band.
        # At the anti-windup clamp boundary the integrate/hold decision can
        # differ for one step between the two arithmetics, which is worth
        # up to one integration increment ki*Ts*|e| — bound adaptively.
        one_step = gains.ki * 1e-3 * max(abs(e) for e in errors)
        assert max(abs(a - b) for a, b in zip(f, q)) < 0.05 + 2 * one_step

    @given(error_seq)
    @settings(max_examples=30, deadline=None)
    def test_pure_p_is_memoryless(self, errors):
        gains = PIDGains(kp=0.01, ki=0.0, u_min=0.0, u_max=1.0)
        pid = PIDController("p", gains, 1e-3)
        out = run_pid(pid, errors)
        for e, y in zip(errors, out):
            assert y == pytest.approx(min(max(0.01 * e, 0.0), 1.0))

    @given(st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_integrator_never_exceeds_limits_under_constant_error(self, e):
        gains = PIDGains(kp=0.0, ki=5.0, u_min=0.0, u_max=1.0)
        pid = PIDController("p", gains, 1e-3)
        out = run_pid(pid, [e] * 500)
        assert out[-1] <= 1.0 + 1e-12


class TestQuadratureSpeedProperties:
    @given(
        st.lists(st.integers(min_value=-300, max_value=300), min_size=2, max_size=50)
    )
    @settings(max_examples=50, deadline=None)
    def test_speed_reconstructs_deltas(self, deltas):
        """Feeding wrapped counts from a known delta sequence must
        reconstruct each delta exactly (wrap-aware difference)."""
        qs = QuadratureSpeed("q", counts_per_rev=400, sample_time=1e-3)
        ctx = BlockContext()
        qs.start(ctx)
        count = 0
        qs.outputs(0, [count % 65536], ctx)
        qs.update(0, [count % 65536], ctx)
        for d in deltas:
            count += d
            w = qs.outputs(0, [count % 65536], ctx)[0]
            qs.update(0, [count % 65536], ctx)
            expected = d * qs.rad_per_count / 1e-3
            assert w == pytest.approx(expected)
