"""Tests for the plant models."""

import math

import numpy as np
import pytest

from repro.model import Model
from repro.model.engine import simulate
from repro.model.library import Constant, Scope
from repro.plants import (
    DCMotor,
    IRCEncoder,
    MAXON_24V,
    MotorParams,
    PowerStage,
    build_servo_plant,
)
from repro.model.block import BlockContext


class TestMotorParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MotorParams(R=-1, L=1e-3, Kt=0.02, Ke=0.02, J=1e-5, b=1e-6)
        with pytest.raises(ValueError):
            MotorParams(R=1, L=1e-3, Kt=0.02, Ke=0.02, J=1e-5, b=-1e-6)

    def test_no_load_speed_physical(self):
        # a 24 V motor with Ke=0.0255 runs slightly below 24/Ke rad/s
        w = MAXON_24V.no_load_speed
        assert 0.7 * 24 / MAXON_24V.Ke < w < 24 / MAXON_24V.Ke

    def test_time_constants(self):
        assert MAXON_24V.elec_time_constant < MAXON_24V.mech_time_constant


class TestDCMotor:
    def run_motor(self, voltage, t_final=0.4, load=0.0):
        m = Model()
        v = m.add(Constant("v", value=voltage))
        tau = m.add(Constant("tau", value=load))
        motor = m.add(DCMotor("motor"))
        sp = m.add(Scope("sp", label="speed"))
        cur = m.add(Scope("cur", label="current"))
        m.connect(v, motor, 0, DCMotor.IN_VOLTAGE)
        m.connect(tau, motor, 0, DCMotor.IN_LOAD)
        m.connect(motor, sp, DCMotor.OUT_SPEED, 0)
        m.connect(motor, cur, DCMotor.OUT_CURRENT, 0)
        return simulate(m, t_final=t_final, dt=1e-4)

    def test_reaches_steady_state_speed(self):
        res = self.run_motor(24.0)
        # steady state: Kt*i = b*w + tau_c ; v = R*i + Ke*w
        p = MAXON_24V
        w = res.final("speed")
        i = res.final("current")
        assert abs(p.Kt * i - p.b * w - p.tau_coulomb) < 1e-4
        assert abs(24.0 - p.R * i - p.Ke * w) < 1e-2

    def test_speed_scales_with_voltage(self):
        w24 = self.run_motor(24.0).final("speed")
        w12 = self.run_motor(12.0).final("speed")
        assert 0.4 < w12 / w24 < 0.6

    def test_load_torque_slows_motor(self):
        free = self.run_motor(24.0).final("speed")
        loaded = self.run_motor(24.0, load=0.02).final("speed")
        assert loaded < free

    def test_zero_voltage_stays_stopped(self):
        res = self.run_motor(0.0, t_final=0.2)
        assert abs(res.final("speed")) < 1e-3

    def test_negative_voltage_reverses(self):
        res = self.run_motor(-24.0)
        assert res.final("speed") < -100


class TestPowerStage:
    def outputs(self, block, duty):
        return block.outputs(0.0, [duty], BlockContext())[0]

    def test_bipolar_midpoint_is_zero(self):
        ps = PowerStage("ps", v_supply=24.0, bipolar=True, v_drop=0.0)
        assert self.outputs(ps, 0.5) == 0.0
        assert self.outputs(ps, 1.0) == 24.0
        assert self.outputs(ps, 0.0) == -24.0

    def test_unipolar(self):
        ps = PowerStage("ps", v_supply=24.0, bipolar=False, v_drop=0.0)
        assert self.outputs(ps, 0.5) == 12.0

    def test_conduction_drop(self):
        ps = PowerStage("ps", v_supply=24.0, bipolar=True, v_drop=0.7)
        assert self.outputs(ps, 1.0) == pytest.approx(23.3)
        assert self.outputs(ps, 0.5) == 0.0  # inside the drop band

    def test_duty_clamped(self):
        ps = PowerStage("ps", v_supply=24.0, bipolar=False, v_drop=0.0)
        assert self.outputs(ps, 1.5) == 24.0
        assert self.outputs(ps, -0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerStage("ps", v_supply=0.0)
        with pytest.raises(ValueError):
            PowerStage("ps", v_drop=-1.0)


class TestIRCEncoder:
    def test_counts_per_rev(self):
        enc = IRCEncoder("enc", ppr=100)
        assert enc.counts_per_rev == 400
        out = enc.outputs(0, [2 * math.pi], BlockContext())
        assert out[IRCEncoder.OUT_COUNT] == 400 % 65536

    def test_quantization_grid(self):
        enc = IRCEncoder("enc", ppr=100)
        # just below one count-width the count is still 0
        angle = 0.99 * enc.angle_resolution
        assert enc.outputs(0, [angle], BlockContext())[0] == 0.0
        assert enc.outputs(0, [1.01 * enc.angle_resolution], BlockContext())[0] == 1.0

    def test_index_pulse_once_per_rev(self):
        enc = IRCEncoder("enc", ppr=100)
        assert enc.outputs(0, [0.0], BlockContext())[1] == 1.0
        assert enc.outputs(0, [math.pi], BlockContext())[1] == 0.0
        assert enc.outputs(0, [2 * math.pi], BlockContext())[1] == 1.0

    def test_count_delta_wraps(self):
        assert IRCEncoder.count_delta(3.0, 65533.0) == 6.0
        assert IRCEncoder.count_delta(65533.0, 3.0) == -6.0


class TestServoPlantAssembly:
    def test_open_loop_spin_up(self):
        m = Model("ol")
        duty = m.add(Constant("duty", value=1.0))
        load = m.add(Constant("load", value=0.0))
        plant = m.add(build_servo_plant())
        sp = m.add(Scope("sp", label="speed"))
        cnt = m.add(Scope("cnt", label="count"))
        m.connect(duty, plant, 0, 0)
        m.connect(load, plant, 0, 1)
        m.connect(plant, cnt, 0, 0)
        m.connect(plant, sp, 1, 0)
        res = simulate(m, t_final=0.4, dt=1e-4)
        assert res.final("speed") > 300  # rad/s at full bipolar drive
        # count grid: integer values only
        assert np.all(res["count"] == np.floor(res["count"]))

    def test_half_duty_holds_still_bipolar(self):
        m = Model("ol")
        duty = m.add(Constant("duty", value=0.5))
        load = m.add(Constant("load", value=0.0))
        plant = m.add(build_servo_plant())
        sp = m.add(Scope("sp", label="speed"))
        for port, blk in ((0, duty), (1, load)):
            m.connect(blk, plant, 0, port)
        m.connect(plant, sp, 1, 0)
        t = m.add(__import__("repro.model.library", fromlist=["Terminator"]).Terminator("t"))
        t2 = m.add(__import__("repro.model.library", fromlist=["Terminator"]).Terminator("t2"))
        m.connect(plant, t, 0, 0)
        m.connect(plant, t2, 2, 0)
        res = simulate(m, t_final=0.15, dt=1e-4)
        assert abs(res.final("speed")) < 1.0
