"""Unit tests for model compilation (flattening, validation, sorting)."""

import pytest

from repro.model import Model
from repro.model.diagnostics import (
    AlgebraicLoopError,
    MultipleDriverError,
    SampleTimeError,
    TypeMismatchError,
    UnconnectedPortError,
)
from repro.model.library import (
    Constant,
    DataTypeConversion,
    Gain,
    Inport,
    Outport,
    Scope,
    Subsystem,
    Sum,
    Terminator,
    UnitDelay,
)
from repro.model.types import INT16
from repro.model.block import Block


class TestValidation:
    def test_unconnected_input(self):
        m = Model()
        m.add(Gain("g"))
        with pytest.raises(UnconnectedPortError):
            m.compile(1e-3)

    def test_multiple_drivers(self):
        m = Model()
        a = m.add(Constant("a"))
        b = m.add(Constant("b"))
        g = m.add(Gain("g"))
        t = m.add(Terminator("t"))
        m.connect(a, g)
        m.connect(b, g)
        m.connect(g, t)
        with pytest.raises(MultipleDriverError):
            m.compile(1e-3)

    def test_sample_time_not_multiple(self):
        m = Model()
        c = m.add(Constant("c"))
        d = m.add(UnitDelay("d", sample_time=0.0015))
        t = m.add(Terminator("t"))
        m.connect(c, d)
        m.connect(d, t)
        with pytest.raises(SampleTimeError):
            m.compile(1e-3)

    def test_sample_time_multiple_ok(self):
        m = Model()
        c = m.add(Constant("c"))
        d = m.add(UnitDelay("d", sample_time=0.004))
        t = m.add(Terminator("t"))
        m.connect(c, d)
        m.connect(d, t)
        cm = m.compile(1e-3)
        assert cm.divisors["d"] == 4

    def test_type_mismatch(self):
        class Int16Sink(Block):
            n_in = 1

            def expected_input_type(self, port):
                return INT16

        m = Model()
        c = m.add(Constant("c"))
        s = m.add(Int16Sink("s"))
        m.connect(c, s)
        with pytest.raises(TypeMismatchError):
            m.compile(1e-3)

    def test_type_match_via_conversion(self):
        class Int16Sink(Block):
            n_in = 1

            def expected_input_type(self, port):
                return INT16

        m = Model()
        c = m.add(Constant("c"))
        conv = m.add(DataTypeConversion("conv", INT16))
        s = m.add(Int16Sink("s"))
        m.connect(c, conv)
        m.connect(conv, s)
        m.compile(1e-3)  # no raise

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            Model().compile(0.0)


class TestSorting:
    def test_topological_order(self):
        m = Model()
        c = m.add(Constant("c"))
        g1 = m.add(Gain("g1"))
        g2 = m.add(Gain("g2"))
        s = m.add(Scope("s"))
        m.connect(c, g1)
        m.connect(g1, g2)
        m.connect(g2, s)
        cm = m.compile(1e-3)
        order = cm.order
        assert order.index("c") < order.index("g1") < order.index("g2") < order.index("s")

    def test_algebraic_loop_detected(self):
        m = Model()
        s = m.add(Sum("s", signs="++"))
        g = m.add(Gain("g"))
        c = m.add(Constant("c"))
        m.connect(c, s, 0, 0)
        m.connect(s, g)
        m.connect(g, s, 0, 1)
        with pytest.raises(AlgebraicLoopError) as ei:
            m.compile(1e-3)
        assert set(ei.value.loop_blocks) >= {"s", "g"}

    def test_loop_broken_by_delay(self):
        m = Model()
        s = m.add(Sum("s", signs="++"))
        d = m.add(UnitDelay("d", sample_time=1e-3))
        c = m.add(Constant("c"))
        t = m.add(Terminator("t"))
        m.connect(c, s, 0, 0)
        m.connect(s, d)
        m.connect(d, s, 0, 1)
        m.connect(s, t)
        m.compile(1e-3)  # no raise

    def test_deterministic_order(self):
        def build():
            m = Model()
            c = m.add(Constant("c"))
            for name in ("g3", "g1", "g2"):
                g = m.add(Gain(name))
                m.connect(c, g)
                m.connect(g, m.add(Terminator("t_" + name)))
            return m.compile(1e-3).order

        assert build() == build()


class TestFlattening:
    @staticmethod
    def subsystem_model():
        # outer: const -> sub(gain*2) -> scope
        sub = Subsystem("sub")
        inp = sub.inner.add(Inport("in0", index=0))
        g = sub.inner.add(Gain("g", gain=2.0))
        outp = sub.inner.add(Outport("out0", index=0))
        sub.inner.connect(inp, g)
        sub.inner.connect(g, outp)

        m = Model()
        c = m.add(Constant("c", value=3.0))
        m.add(sub)
        s = m.add(Scope("sc", label="y"))
        m.connect(c, sub)
        m.connect(sub, s)
        return m

    def test_subsystem_flattens(self):
        cm = self.subsystem_model().compile(1e-3)
        assert "sub.g" in cm.nodes
        assert "sub" not in cm.nodes
        assert not any(q.endswith("in0") or q.endswith("out0") for q in cm.nodes)

    def test_flattened_simulation(self):
        from repro.model.engine import simulate

        res = simulate(self.subsystem_model(), t_final=0.01, dt=1e-3)
        assert res.final("y") == 6.0

    def test_nested_subsystems(self):
        inner = Subsystem("inner")
        i_in = inner.inner.add(Inport("i", index=0))
        i_g = inner.inner.add(Gain("g", gain=5.0))
        i_out = inner.inner.add(Outport("o", index=0))
        inner.inner.connect(i_in, i_g)
        inner.inner.connect(i_g, i_out)

        outer = Subsystem("outer")
        o_in = outer.inner.add(Inport("i", index=0))
        outer.inner.add(inner)
        o_out = outer.inner.add(Outport("o", index=0))
        outer.inner.connect(o_in, inner)
        outer.inner.connect(inner, o_out)

        m = Model()
        c = m.add(Constant("c", value=2.0))
        m.add(outer)
        s = m.add(Scope("sc", label="y"))
        m.connect(c, outer)
        m.connect(outer, s)

        cm = m.compile(1e-3)
        assert "outer.inner.g" in cm.nodes

        from repro.model.engine import simulate

        assert simulate(m, t_final=0.005, dt=1e-3).final("y") == 10.0

    def test_fundamental_rate(self):
        m = Model()
        c = m.add(Constant("c"))
        d1 = m.add(UnitDelay("d1", sample_time=2e-3))
        d2 = m.add(UnitDelay("d2", sample_time=4e-3))
        t1 = m.add(Terminator("t1"))
        t2 = m.add(Terminator("t2"))
        m.connect(c, d1)
        m.connect(c, d2)
        m.connect(d1, t1)
        m.connect(d2, t2)
        cm = m.compile(1e-3)
        assert cm.fundamental_rate() == pytest.approx(2e-3)
