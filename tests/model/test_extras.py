"""Tests for the extra library blocks (TransportDelay, Backlash, EdgeDetector)."""

import numpy as np
import pytest

from repro.model import Model
from repro.model.block import BlockContext
from repro.model.engine import simulate
from repro.model.library import Backlash, Clock, EdgeDetector, PulseGenerator, Scope, TransportDelay


def ctx():
    return BlockContext()


class TestTransportDelay:
    def test_delays_by_n_steps(self):
        m = Model()
        clk = m.add(Clock("clk"))
        d = m.add(TransportDelay("d", sample_time=1e-3, delay_steps=3))
        sc = m.add(Scope("s", label="y"))
        sc2 = m.add(Scope("s2", label="t"))
        m.connect(clk, d)
        m.connect(d, sc)
        m.connect(clk, sc2)
        res = simulate(m, t_final=0.02, dt=1e-3)
        assert np.allclose(res["y"][3:], res["t"][:-3])

    def test_initial_fill(self):
        b = TransportDelay("d", sample_time=1e-3, delay_steps=2, initial=7.0)
        c = ctx()
        b.start(c)
        assert b.outputs(0, [1.0], c) == [7.0]
        b.update(0, [1.0], c)
        assert b.outputs(0, [2.0], c) == [7.0]
        b.update(0, [2.0], c)
        assert b.outputs(0, [3.0], c) == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportDelay("d", sample_time=1e-3, delay_steps=0)

    def test_codegen_template_exists(self):
        from repro.codegen import default_registry

        default_registry().lookup(TransportDelay)


class TestBacklash:
    def test_holds_inside_gap(self):
        b = Backlash("b", width=1.0)
        c = ctx()
        b.start(c)
        # input moves within the half-width: output stays put
        assert b.outputs(0, [0.4], c) == [0.0]
        b.update(0, [0.4], c)
        assert b.outputs(0, [0.0], c) == [0.0]

    def test_follows_when_engaged(self):
        b = Backlash("b", width=1.0)
        c = ctx()
        b.start(c)
        b.update(0, [2.0], c)  # push through the gap
        assert c.dwork["y"] == pytest.approx(1.5)
        b.update(0, [3.0], c)
        assert c.dwork["y"] == pytest.approx(2.5)  # engaged: follows

    def test_reversal_crosses_full_gap(self):
        b = Backlash("b", width=1.0)
        c = ctx()
        b.start(c)
        b.update(0, [2.0], c)   # engaged forward at y=1.5
        b.update(0, [1.2], c)   # back inside the gap: hold
        assert c.dwork["y"] == pytest.approx(1.5)
        b.update(0, [0.5], c)   # engage the other flank
        assert c.dwork["y"] == pytest.approx(1.0)

    def test_zero_width_is_transparent(self):
        b = Backlash("b", width=0.0)
        c = ctx()
        b.start(c)
        for v in (0.3, -1.2, 5.0):
            assert b.outputs(0, [v], c) == [v]
            b.update(0, [v], c)

    def test_validation(self):
        with pytest.raises(ValueError):
            Backlash("b", width=-1.0)


class TestEdgeDetector:
    def test_rising_pulse(self):
        m = Model()
        src = m.add(PulseGenerator("p", period=0.01, duty=0.5))
        e = m.add(EdgeDetector("e", sample_time=1e-3, edge="rising"))
        sc = m.add(Scope("s", label="y"))
        m.connect(src, e)
        m.connect(e, sc)
        res = simulate(m, t_final=0.03, dt=1e-3)
        # one pulse per rising edge, each exactly 1 sample wide
        pulses = int(np.sum(res["y"]))
        assert pulses in (3, 4)  # edges at t=0, 0.01, 0.02 (+0.03 mod fmod fuzz)
        # never two consecutive pulse samples
        assert not np.any((res["y"][:-1] == 1.0) & (res["y"][1:] == 1.0))

    def test_falling_and_both(self):
        e = EdgeDetector("e", sample_time=1e-3, edge="falling")
        c = ctx()
        e.start(c)
        e.update(0, [1.0], c)
        assert e.outputs(0, [0.0], c) == [1.0]
        e2 = EdgeDetector("e2", sample_time=1e-3, edge="both")
        c2 = ctx()
        e2.start(c2)
        assert e2.outputs(0, [1.0], c2) == [1.0]
        e2.update(0, [1.0], c2)
        assert e2.outputs(0, [0.0], c2) == [1.0]

    def test_no_pulse_on_steady_level(self):
        e = EdgeDetector("e", sample_time=1e-3)
        c = ctx()
        e.start(c)
        e.update(0, [1.0], c)
        assert e.outputs(0, [1.0], c) == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeDetector("e", sample_time=1e-3, edge="diagonal")
