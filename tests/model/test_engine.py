"""Integration tests for the fixed-step engine."""

import math

import numpy as np
import pytest

from repro.model import Model, Simulator, SimulationOptions
from repro.model.engine import simulate
from repro.model.library import (
    Clock,
    Constant,
    Gain,
    Integrator,
    Scope,
    SineWave,
    Step,
    Sum,
    TransferFunction,
    UnitDelay,
)


def first_order_loop(gain=5.0):
    """Step -> (+-) -> K -> 1/(s+1) -> scope, unity feedback."""
    m = Model("loop")
    ref = m.add(Step("ref", step_time=0.0, final=1.0))
    err = m.add(Sum("err", signs="+-"))
    k = m.add(Gain("k", gain=gain))
    plant = m.add(TransferFunction("plant", [1.0], [1.0, 1.0]))
    sc = m.add(Scope("sc", label="y"))
    m.connect(ref, err, 0, 0)
    m.connect(err, k)
    m.connect(k, plant)
    m.connect(plant, err, 0, 1)
    m.connect(plant, sc)
    return m


class TestClosedLoopAccuracy:
    def test_dc_value(self):
        res = simulate(first_order_loop(5.0), t_final=3.0, dt=1e-3)
        assert res.final("y") == pytest.approx(5.0 / 6.0, rel=1e-3)

    def test_rk4_matches_analytic_transient(self):
        # closed loop: y(t) = K/(K+1) * (1 - exp(-(K+1) t))
        K = 5.0
        res = simulate(first_order_loop(K), t_final=1.0, dt=1e-3)
        expected = K / (K + 1) * (1 - np.exp(-(K + 1) * res.t))
        assert np.max(np.abs(res["y"] - expected)) < 1e-4

    def test_euler_less_accurate_than_rk4(self):
        K = 5.0
        res_e = simulate(first_order_loop(K), t_final=1.0, dt=5e-3, solver="euler")
        res_r = simulate(first_order_loop(K), t_final=1.0, dt=5e-3, solver="rk4")
        exp_e = K / (K + 1) * (1 - np.exp(-(K + 1) * res_e.t))
        err_e = np.max(np.abs(res_e["y"] - exp_e))
        err_r = np.max(np.abs(res_r["y"] - exp_e))
        assert err_r < err_e


class TestIntegrator:
    def test_integrates_constant(self):
        m = Model()
        c = m.add(Constant("c", value=2.0))
        i = m.add(Integrator("i"))
        s = m.add(Scope("s", label="x"))
        m.connect(c, i)
        m.connect(i, s)
        res = simulate(m, t_final=1.0, dt=1e-3)
        assert res.final("x") == pytest.approx(2.0, rel=1e-9)

    def test_integrates_sine_rk4_accuracy(self):
        m = Model()
        w = 2 * math.pi
        src = m.add(SineWave("src", amplitude=1.0, frequency=1.0))
        i = m.add(Integrator("i"))
        s = m.add(Scope("s", label="x"))
        m.connect(src, i)
        m.connect(i, s)
        res = simulate(m, t_final=1.0, dt=1e-3)
        expected = (1 - np.cos(w * res.t)) / w
        assert np.max(np.abs(res["x"] - expected)) < 1e-6

    def test_integrator_limits(self):
        m = Model()
        c = m.add(Constant("c", value=1.0))
        i = m.add(Integrator("i", lower=0.0, upper=0.5))
        s = m.add(Scope("s", label="x"))
        m.connect(c, i)
        m.connect(i, s)
        res = simulate(m, t_final=2.0, dt=1e-3)
        assert res.final("x") == pytest.approx(0.5, abs=1e-6)
        assert np.max(res["x"]) <= 0.5 + 1e-9


class TestDiscreteExecution:
    def test_unit_delay_shifts_by_one_period(self):
        m = Model()
        clk = m.add(Clock("clk"))
        d = m.add(UnitDelay("d", sample_time=1e-2))
        s = m.add(Scope("s", label="y"))
        sc2 = m.add(Scope("s2", label="t"))
        m.connect(clk, d)
        m.connect(d, s)
        m.connect(clk, sc2)
        res = simulate(m, t_final=0.1, dt=1e-2)
        # y[k] = t[k-1]
        assert np.allclose(res["y"][1:], res["t"][:-1])

    def test_discrete_holds_between_hits(self):
        m = Model()
        clk = m.add(Clock("clk"))
        d = m.add(UnitDelay("d", sample_time=1e-2))
        s = m.add(Scope("s", label="y"))
        m.connect(clk, d)
        m.connect(d, s)
        res = simulate(m, t_final=0.1, dt=1e-3)  # base step 10x faster
        y = res["y"]
        # within each 10-step window the held value must be constant
        for k in range(0, len(y) - 10, 10):
            assert np.all(y[k : k + 10] == y[k])


class TestEngineApi:
    def test_incremental_advance(self):
        sim = Simulator(first_order_loop(), SimulationOptions(dt=1e-3, t_final=1.0))
        sim.initialize()
        for _ in range(100):
            sim.advance()
        assert sim.time == pytest.approx(0.1)
        assert 0.0 < sim.read_signal("plant", 0) < 1.0

    def test_advance_requires_initialize(self):
        sim = Simulator(first_order_loop(), SimulationOptions(dt=1e-3, t_final=1.0))
        with pytest.raises(RuntimeError):
            sim.advance()

    def test_step_hook_called_every_major_step(self):
        calls = []
        opts = SimulationOptions(
            dt=1e-3, t_final=0.01, step_hook=lambda t, e: calls.append(t)
        )
        Simulator(first_order_loop(), opts).run()
        assert len(calls) == 11
        assert calls[0] == 0.0

    def test_log_all_signals(self):
        opts = SimulationOptions(dt=1e-3, t_final=0.01, log_all_signals=True)
        res = Simulator(first_order_loop(), opts).run()
        assert "plant:0" in res.names

    def test_mismatched_dt_rejected(self):
        m = first_order_loop()
        cm = m.compile(1e-3)
        with pytest.raises(ValueError):
            Simulator(cm, SimulationOptions(dt=2e-3, t_final=1.0))

    def test_bad_solver_rejected(self):
        with pytest.raises(ValueError):
            SimulationOptions(solver="ode45")


class TestResultContainer:
    def test_mapping_interface(self):
        res = simulate(first_order_loop(), t_final=0.1, dt=1e-3)
        assert "y" in res
        assert res.names == ["y"]
        assert len(res) == 1

    def test_at_and_slice(self):
        res = simulate(first_order_loop(), t_final=1.0, dt=1e-3)
        assert res.at("y", 1.0) == res.final("y")
        sub = res.slice(0.5, 1.0)
        assert sub.t[0] >= 0.5 and sub.t[-1] <= 1.0

    def test_length_mismatch_rejected(self):
        from repro.model.result import SimulationResult

        with pytest.raises(ValueError):
            SimulationResult(np.arange(3), {"a": np.arange(4)})
