"""Unit tests for Model construction and editing."""

import pytest

from repro.model import Model, ModelError
from repro.model.diagnostics import DuplicateNameError
from repro.model.library import Constant, Gain, Scope, Sum, UnitDelay


def tiny_model():
    m = Model("t")
    c = m.add(Constant("c", value=2.0))
    g = m.add(Gain("g", gain=3.0))
    s = m.add(Scope("sc"))
    m.connect(c, g)
    m.connect(g, s)
    return m


class TestConstruction:
    def test_add_returns_block(self):
        m = Model()
        b = m.add(Constant("c"))
        assert m.block("c") is b

    def test_duplicate_name_rejected(self):
        m = Model()
        m.add(Constant("c"))
        with pytest.raises(DuplicateNameError):
            m.add(Gain("c"))

    def test_invalid_block_name(self):
        with pytest.raises(ValueError):
            Constant("")
        with pytest.raises(ValueError):
            Constant("a/b")

    def test_connect_unknown_block(self):
        m = Model()
        m.add(Constant("c"))
        with pytest.raises(ModelError):
            m.connect("c", "nope")

    def test_connect_bad_ports(self):
        m = Model()
        c = m.add(Constant("c"))
        g = m.add(Gain("g"))
        with pytest.raises(ModelError):
            m.connect(c, g, src_port=1)
        with pytest.raises(ModelError):
            m.connect(c, g, dst_port=5)

    def test_connect_event_requires_event_port(self):
        m = Model()
        c = m.add(Constant("c"))
        g = m.add(Gain("g"))
        with pytest.raises(ModelError):
            m.connect_event(c, g)


class TestEditing:
    def test_remove_drops_lines(self):
        m = tiny_model()
        m.remove("g")
        assert "g" not in m.blocks
        assert all(c.src != "g" and c.dst != "g" for c in m.connections)

    def test_remove_unknown(self):
        m = tiny_model()
        with pytest.raises(ModelError):
            m.remove("nope")

    def test_rename_rewrites_lines(self):
        m = tiny_model()
        m.rename("g", "gain2")
        assert "gain2" in m.blocks and "g" not in m.blocks
        assert any(c.src == "gain2" for c in m.connections)
        assert any(c.dst == "gain2" for c in m.connections)

    def test_rename_collision(self):
        m = tiny_model()
        with pytest.raises(DuplicateNameError):
            m.rename("g", "c")


class TestQueries:
    def test_drivers_and_consumers(self):
        m = tiny_model()
        assert len(m.drivers_of("g", 0)) == 1
        assert m.drivers_of("g", 0)[0].src == "c"
        assert len(m.consumers_of("g", 0)) == 1

    def test_blocks_of_type(self):
        m = tiny_model()
        assert len(m.blocks_of_type(Gain)) == 1
        assert len(m.blocks_of_type(Scope)) == 1

    def test_structural_signature_stable(self):
        assert tiny_model().structural_signature() == tiny_model().structural_signature()

    def test_structural_signature_changes_on_edit(self):
        m1 = tiny_model()
        m2 = tiny_model()
        m2.add(UnitDelay("d", sample_time=0.01))
        assert m1.structural_signature() != m2.structural_signature()
