"""Lane compaction: fused trigger dispatch vs the per-lane fallback.

The batch engine's event path used to drop to a per-lane Python loop the
moment any lane's trigger fired.  Compaction plans a
:class:`~repro.model.kernels.FusedTriggerKernel` for feed-forward affine
function-call subsystems and dispatches fired lanes through it —
full-width when every lane fired, re-packed onto the fired subset when
the event diverged.  Every test here holds the engine to the same
contract as the rest of the batch suite: bit-identical lanes
(``np.array_equal``, no tolerance) against serial reference runs, with
the compaction accounting proving which dispatch path actually ran.
"""

import numpy as np

from repro.model import BatchSimulator, Model, SimulationOptions
from repro.model.kernels import plan_fused_trigger
from repro.model.library import (
    Constant,
    FunctionCallSubsystem,
    Gain,
    Inport,
    Outport,
    Saturation,
    Scope,
)

from tests.model.test_batch import (
    FireAbove,
    assert_lanes_identical,
    diverging_event_model,
    run_pair,
)

T_FINAL = 0.02
DT = 1e-3


def run_batch(factory, scenarios, **sim_kwargs):
    """One batched run with explicit compaction knobs."""
    sim = BatchSimulator(
        factory().compile(DT),
        scenarios,
        SimulationOptions(dt=DT, t_final=T_FINAL, log_all_signals=True),
        **sim_kwargs,
    )
    return sim, sim.run()


def serial_reference(factory, scenarios):
    serial, _sim, _batched = run_pair(factory, scenarios, t_final=T_FINAL)
    return serial


def saturating_event_model():
    """Like ``diverging_event_model`` but with a non-affine ISR body.

    ``Saturation`` has no affine spec, so ``plan_fused_trigger`` must
    refuse to fuse the subsystem and dispatch falls back per-lane.
    """
    m = Model("diverge_sat")
    m.add(Constant("level", value=0.0))
    m.add(FireAbove("det", threshold=1.0))
    fc = FunctionCallSubsystem("isr")
    i = fc.inner.add(Inport("in0", index=0))
    s = fc.inner.add(Saturation("sat", lower=-1.0, upper=1.0))
    o = fc.inner.add(Outport("out0", index=0))
    fc.inner.connect(i, s)
    fc.inner.connect(s, o)
    m.add(fc)
    m.connect("level", "det")
    m.connect("det", "isr")
    m.connect_event("det", "isr")
    m.connect("isr", m.add(Scope("sc", label="isr_y")))
    return m


ALL_FIRE = [{"level": {"value": v}} for v in (1.5, 2.0, 3.0, 4.0)]
MIXED = [{"level": {"value": v}} for v in (0.0, 0.5, 2.0, 3.0)]


class TestFusedEngagement:
    def test_all_lanes_fire_full_width_fused(self):
        serial = serial_reference(diverging_event_model, ALL_FIRE)
        sim, batched = run_batch(diverging_event_model, ALL_FIRE)
        assert_lanes_identical(serial, batched)
        assert sim.plan_stats["fused_triggers"] == 1
        stats = sim.compaction_stats
        assert stats["fused_dispatches"] > 0
        assert stats["perlane_dispatches"] == 0
        # every lane fired every time: nothing was diverged to recover
        assert stats["recovered_lane_steps"] == 0

    def test_diverged_subset_recovers_lane_steps(self):
        serial = serial_reference(diverging_event_model, MIXED)
        sim, batched = run_batch(diverging_event_model, MIXED)
        assert_lanes_identical(serial, batched)
        stats = sim.compaction_stats
        assert stats["recovered_lane_steps"] > 0
        assert stats["compacted_dispatches"] > 0
        assert stats["perlane_dispatches"] == 0
        assert sim.lanes_diverged > 0

    def test_call_counts_match_serial_semantics(self):
        # a fused dispatch must keep each lane clone's call_count exactly
        # as if it had been dispatched alone
        sim, _ = run_batch(diverging_event_model, MIXED)
        # fires once at the t=0 output pass, then once per major step
        n_calls = int(round(T_FINAL / DT)) + 1
        counts = [clone.call_count for clone, _ctx in sim._trig["isr"]]
        expected = [
            n_calls if ov["level"]["value"] > 1.0 else 0 for ov in MIXED
        ]
        assert counts == expected


class TestFallbacks:
    def test_compaction_off_is_pure_perlane(self):
        serial = serial_reference(diverging_event_model, MIXED)
        sim, batched = run_batch(
            diverging_event_model, MIXED, compaction=False
        )
        assert_lanes_identical(serial, batched)
        assert sim.plan_stats["fused_triggers"] == 0
        stats = sim.compaction_stats
        assert stats["perlane_dispatches"] > 0
        assert stats["fused_dispatches"] == 0
        assert stats["recovered_lane_steps"] == 0

    def test_compact_min_lanes_gate(self):
        # a threshold above the batch width forces every group through
        # the per-lane path even though a fused kernel was planned
        serial = serial_reference(diverging_event_model, MIXED)
        sim, batched = run_batch(
            diverging_event_model, MIXED, compact_min_lanes=64
        )
        assert_lanes_identical(serial, batched)
        assert sim.plan_stats["fused_triggers"] == 1
        stats = sim.compaction_stats
        assert stats["fused_dispatches"] == 0
        assert stats["perlane_dispatches"] > 0

    def test_nonaffine_isr_never_fuses(self):
        serial = serial_reference(saturating_event_model, MIXED)
        sim, batched = run_batch(saturating_event_model, MIXED)
        assert_lanes_identical(serial, batched)
        assert sim.plan_stats["fused_triggers"] == 0
        stats = sim.compaction_stats
        assert stats["fused_dispatches"] == 0
        assert stats["perlane_dispatches"] > 0

    def test_overridden_trigger_target_falls_back(self):
        # any scenario override touching the trigger target means lanes
        # may disagree on its behaviour — the planner must not fuse it
        scenarios = [
            {"level": {"value": 2.0}},
            {"level": {"value": 3.0}, "isr": {"name": "isr"}},
        ]
        serial = serial_reference(diverging_event_model, scenarios)
        sim, batched = run_batch(diverging_event_model, scenarios)
        assert_lanes_identical(serial, batched)
        assert "isr" not in sim._trig_fused
        assert sim.compaction_stats["perlane_dispatches"] > 0


def compiled_isr(factory=diverging_event_model):
    """The FCS block plus its outer signal rows from a real compile.

    ``plan_fused_trigger`` reads the subsystem's inner compiled model
    (``block._cm``), which only exists after the outer model compiles.
    """
    cm = factory().compile(DT)
    block = cm.nodes["isr"]
    in_sigs = list(cm.input_map["isr"])
    out_sigs = [cm.sig_index[("isr", p)] for p in range(block.n_out)]
    return cm, block, in_sigs, out_sigs


class TestPlanner:
    def test_plan_refuses_non_subsystem(self):
        assert plan_fused_trigger(Gain("g", gain=2.0), [0], [1], 4) is None

    def test_plan_refuses_nonaffine_inner(self):
        _cm, block, in_sigs, out_sigs = compiled_isr(saturating_event_model)
        assert plan_fused_trigger(block, in_sigs, out_sigs, 4) is None

    def test_plan_fuses_affine_subsystem(self):
        cm, block, in_sigs, out_sigs = compiled_isr()
        kern = plan_fused_trigger(block, in_sigs, out_sigs, 4)
        assert kern is not None
        S = np.zeros((cm.n_signals, 4))
        S[in_sigs[0]] = [1.0, 2.0, 3.0, 4.0]
        kern.apply(S, None, 4)
        assert np.array_equal(S[out_sigs[0]], [10.0, 20.0, 30.0, 40.0])

    def test_plan_compacted_subset(self):
        cm, block, in_sigs, out_sigs = compiled_isr()
        kern = plan_fused_trigger(block, in_sigs, out_sigs, 4)
        S = np.zeros((cm.n_signals, 4))
        S[in_sigs[0]] = [1.0, 2.0, 3.0, 4.0]
        kern.apply(S, np.array([1, 3], dtype=np.intp), 2)
        # only the fired lanes move
        assert np.array_equal(S[out_sigs[0]], [0.0, 20.0, 0.0, 40.0])
