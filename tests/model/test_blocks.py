"""Per-block unit tests for the standard library."""

import math

import numpy as np
import pytest

from repro.model import Model
from repro.model.block import BlockContext
from repro.model.engine import simulate
from repro.model.library import (
    Abs,
    Assertion,
    Bias,
    Clock,
    Constant,
    DataTypeConversion,
    DeadZone,
    DiscreteDerivative,
    DiscreteIntegrator,
    DiscreteTransferFunction,
    Gain,
    Lookup1D,
    LogicalOperator,
    ManualSwitch,
    MathFunction,
    Memory,
    MinMax,
    Product,
    PulseGenerator,
    Quantizer,
    Ramp,
    RateLimiter,
    Relay,
    RelationalOperator,
    Saturation,
    Scope,
    Sign,
    SineWave,
    Step,
    Sum,
    Switch,
    Terminator,
    WhiteNoise,
    ZeroOrderHold,
)
from repro.model.types import INT16, FixptType
from repro.fixpt import FixedPointType


def ctx():
    return BlockContext()


def out(block, u=(), t=0.0, c=None):
    c = c or ctx()
    block.start(c)
    return block.outputs(t, list(u), c)


class TestSources:
    def test_constant(self):
        assert out(Constant("c", value=7.5)) == [7.5]

    def test_step(self):
        b = Step("s", step_time=1.0, initial=-1.0, final=2.0)
        c = ctx()
        assert b.outputs(0.5, [], c) == [-1.0]
        assert b.outputs(1.0, [], c) == [2.0]

    def test_ramp(self):
        b = Ramp("r", slope=2.0, start_time=1.0)
        c = ctx()
        assert b.outputs(0.5, [], c) == [0.0]
        assert b.outputs(2.0, [], c) == [2.0]

    def test_sine(self):
        b = SineWave("s", amplitude=2.0, frequency=0.25, bias=1.0)
        c = ctx()
        assert b.outputs(1.0, [], c)[0] == pytest.approx(3.0)

    def test_pulse(self):
        b = PulseGenerator("p", amplitude=3.0, period=1.0, duty=0.25)
        c = ctx()
        assert b.outputs(0.1, [], c) == [3.0]
        assert b.outputs(0.5, [], c) == [0.0]
        assert b.outputs(1.1, [], c) == [3.0]

    def test_pulse_delay(self):
        b = PulseGenerator("p", period=1.0, duty=0.5, delay=0.5)
        c = ctx()
        assert b.outputs(0.2, [], c) == [0.0]
        assert b.outputs(0.6, [], c) == [1.0]

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            PulseGenerator("p", period=0.0)
        with pytest.raises(ValueError):
            PulseGenerator("p", duty=1.5)

    def test_clock(self):
        assert Clock("c").outputs(2.5, [], ctx()) == [2.5]

    def test_white_noise_reproducible(self):
        b1, b2 = WhiteNoise("n", std=2.0, seed=5), WhiteNoise("n", std=2.0, seed=5)
        assert out(b1) == out(b2)

    def test_white_noise_statistics(self):
        b = WhiteNoise("n", std=1.0, seed=0)
        c = ctx()
        b.start(c)
        samples = [b.outputs(0, [], c)[0] for _ in range(4000)]
        assert abs(np.mean(samples)) < 0.1
        assert abs(np.std(samples) - 1.0) < 0.1


class TestMathOps:
    def test_gain(self):
        assert out(Gain("g", gain=-2.0), [3.0]) == [-6.0]

    def test_bias(self):
        assert out(Bias("b", bias=1.5), [1.0]) == [2.5]

    def test_sum_signs(self):
        assert out(Sum("s", signs="+-+"), [1.0, 2.0, 3.0]) == [2.0]

    def test_sum_validation(self):
        with pytest.raises(ValueError):
            Sum("s", signs="+x")
        with pytest.raises(ValueError):
            Sum("s", signs="")

    def test_product(self):
        assert out(Product("p", ops="**"), [3.0, 4.0]) == [12.0]
        assert out(Product("p", ops="*/"), [8.0, 2.0]) == [4.0]

    def test_product_div_zero(self):
        with pytest.raises(ZeroDivisionError):
            out(Product("p", ops="*/"), [1.0, 0.0])

    def test_abs_sign(self):
        assert out(Abs("a"), [-3.0]) == [3.0]
        assert out(Sign("s"), [-3.0]) == [-1.0]
        assert out(Sign("s"), [0.0]) == [0.0]

    def test_minmax(self):
        assert out(MinMax("m", mode="min", n_in=3), [3.0, 1.0, 2.0]) == [1.0]
        assert out(MinMax("m", mode="max", n_in=2), [3.0, 1.0]) == [3.0]

    def test_math_function(self):
        assert out(MathFunction("f", "sqrt"), [9.0]) == [3.0]
        assert out(MathFunction("f", "square"), [3.0]) == [9.0]
        with pytest.raises(ValueError):
            MathFunction("f", "nope")

    def test_relational(self):
        assert out(RelationalOperator("r", "<"), [1.0, 2.0]) == [1.0]
        assert out(RelationalOperator("r", ">="), [1.0, 2.0]) == [0.0]
        with pytest.raises(ValueError):
            RelationalOperator("r", "~=")

    def test_logical(self):
        assert out(LogicalOperator("l", "AND"), [1.0, 1.0]) == [1.0]
        assert out(LogicalOperator("l", "OR"), [0.0, 0.0]) == [0.0]
        assert out(LogicalOperator("l", "XOR"), [1.0, 1.0]) == [0.0]
        assert out(LogicalOperator("l", "NOT", n_in=1), [0.0]) == [1.0]
        with pytest.raises(ValueError):
            LogicalOperator("l", "NOT", n_in=2)


class TestDiscreteBlocks:
    def test_unit_delay_semantics(self):
        from repro.model.library import UnitDelay

        b = UnitDelay("d", sample_time=0.01, initial=5.0)
        c = ctx()
        b.start(c)
        assert b.outputs(0, [9.0], c) == [5.0]
        b.update(0, [9.0], c)
        assert b.outputs(0.01, [7.0], c) == [9.0]

    def test_memory(self):
        b = Memory("m", initial=1.0)
        c = ctx()
        b.start(c)
        assert b.outputs(0, [2.0], c) == [1.0]
        b.update(0, [2.0], c)
        assert b.outputs(0, [3.0], c) == [2.0]

    def test_zoh_passthrough(self):
        assert out(ZeroOrderHold("z", sample_time=0.01), [4.2]) == [4.2]

    def test_discrete_integrator_accumulates(self):
        b = DiscreteIntegrator("i", sample_time=0.1, gain=2.0)
        c = ctx()
        b.start(c)
        for _ in range(5):
            b.update(0, [1.0], c)
        assert b.outputs(0, [1.0], c)[0] == pytest.approx(1.0)

    def test_discrete_integrator_limits(self):
        b = DiscreteIntegrator("i", sample_time=1.0, lower=-0.5, upper=0.5)
        c = ctx()
        b.start(c)
        for _ in range(10):
            b.update(0, [1.0], c)
        assert b.outputs(0, [1.0], c) == [0.5]

    def test_discrete_tf_matches_difference_equation(self):
        # y[k] = 0.5 u[k] + 0.5 u[k-1]  (FIR)
        b = DiscreteTransferFunction("f", [0.5, 0.5], [1.0, 0.0], sample_time=0.01)
        c = ctx()
        b.start(c)
        us = [1.0, 2.0, 3.0]
        ys = []
        for u in us:
            ys.append(b.outputs(0, [u], c)[0])
            b.update(0, [u], c)
        assert ys == [0.5, 1.5, 2.5]

    def test_discrete_tf_feedthrough_detection(self):
        fir = DiscreteTransferFunction("f", [1.0, 0.0], [1.0, 0.5], sample_time=0.01)
        assert fir.direct_feedthrough
        strictly_proper = DiscreteTransferFunction("g", [1.0], [1.0, 0.5], sample_time=0.01)
        assert not strictly_proper.direct_feedthrough

    def test_discrete_tf_validation(self):
        with pytest.raises(ValueError):
            DiscreteTransferFunction("f", [1, 0, 0], [1, 0], sample_time=0.01)
        with pytest.raises(ValueError):
            DiscreteTransferFunction("f", [1], [0.0, 1], sample_time=0.01)

    def test_discrete_derivative(self):
        b = DiscreteDerivative("d", sample_time=0.1, gain=1.0)
        c = ctx()
        b.start(c)
        b.update(0, [1.0], c)
        assert b.outputs(0.1, [2.0], c)[0] == pytest.approx(10.0)


class TestNonlinear:
    def test_saturation(self):
        b = Saturation("s", lower=-1.0, upper=2.0)
        assert out(b, [5.0]) == [2.0]
        assert out(b, [-5.0]) == [-1.0]
        assert out(b, [0.5]) == [0.5]

    def test_saturation_validation(self):
        with pytest.raises(ValueError):
            Saturation("s", lower=1.0, upper=-1.0)

    def test_deadzone(self):
        b = DeadZone("d", start=-0.5, end=0.5)
        assert out(b, [0.2]) == [0.0]
        assert out(b, [1.0]) == [0.5]
        assert out(b, [-1.0]) == [-0.5]

    def test_relay_hysteresis(self):
        b = Relay("r", on_point=1.0, off_point=-1.0, on_value=5.0, off_value=0.0)
        c = ctx()
        b.start(c)
        assert b.outputs(0, [0.0], c) == [0.0]
        b.update(0, [2.0], c)
        assert b.outputs(0, [0.0], c) == [5.0]  # stays on inside the band
        b.update(0, [-2.0], c)
        assert b.outputs(0, [0.0], c) == [0.0]

    def test_rate_limiter(self):
        b = RateLimiter("r", sample_time=0.1, rising=1.0)
        c = ctx()
        b.start(c)
        assert b.outputs(0, [10.0], c)[0] == pytest.approx(0.1)

    def test_quantizer(self):
        b = Quantizer("q", interval=0.25)
        assert out(b, [0.3]) == [0.25]
        assert out(b, [0.4]) == [0.5]

    def test_coulomb(self):
        from repro.model.library import Coulomb

        b = Coulomb("c", offset=0.5, gain=0.1)
        assert out(b, [2.0])[0] == pytest.approx(0.7)
        assert out(b, [-2.0])[0] == pytest.approx(-0.7)
        assert out(b, [0.0]) == [0.0]


class TestRoutingAndLookup:
    def test_switch(self):
        b = Switch("s", threshold=0.5)
        assert out(b, [1.0, 1.0, 2.0]) == [1.0]
        assert out(b, [1.0, 0.0, 2.0]) == [2.0]

    def test_manual_switch(self):
        assert out(ManualSwitch("m", position=1), [1.0, 2.0]) == [2.0]
        with pytest.raises(ValueError):
            ManualSwitch("m", position=2)

    def test_lookup_linear(self):
        b = Lookup1D("l", [0.0, 1.0, 2.0], [0.0, 10.0, 0.0])
        assert out(b, [0.5]) == [5.0]
        assert out(b, [-1.0]) == [0.0]  # clipped
        assert out(b, [3.0]) == [0.0]

    def test_lookup_flat(self):
        b = Lookup1D("l", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0], mode="flat")
        assert out(b, [0.99]) == [1.0]
        assert out(b, [1.0]) == [2.0]

    def test_lookup_validation(self):
        with pytest.raises(ValueError):
            Lookup1D("l", [0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            Lookup1D("l", [0.0], [1.0])


class TestConversionAndSinks:
    def test_datatype_conversion_quantizes(self):
        q12 = FixptType(FixedPointType(16, 12))
        b = DataTypeConversion("c", q12)
        y = out(b, [0.1])[0]
        assert y != 0.1 and abs(y - 0.1) < 2**-12

    def test_datatype_conversion_int(self):
        b = DataTypeConversion("c", INT16)
        assert out(b, [3.7]) == [3.0]

    def test_assertion_raises(self):
        b = Assertion("a", message="boom")
        with pytest.raises(AssertionError, match="boom"):
            out(b, [0.0])
        out(b, [1.0])  # no raise

    def test_terminator_scope_shapes(self):
        assert out(Terminator("t"), [1.0]) == []
        assert out(Scope("s"), [1.0]) == []
