"""Array-ops seam: registry, selection precedence, and numpy parity.

The seam exists so a GPU array library is a configuration switch; these
tests pin the selection rules (explicit arg > process default > env >
numpy), the registry surface, and — the part the engine relies on — that
routing through the numpy backend changes *nothing*: results stay
bit-identical to the pre-seam engine.  The cupy parity test self-skips
with a notice when no cupy/CUDA is present (the CI backend-matrix step
surfaces that skip).
"""

import numpy as np
import pytest

from repro.model import SimulationOptions, simulate_batch
from repro.model.array_backend import (
    ArrayBackend,
    BackendUnavailable,
    NumpyBackend,
    backend_available,
    backend_names,
    get_array_backend,
    register_backend,
    set_array_backend,
)

from tests.model.test_batch import (
    assert_lanes_identical,
    diverging_event_model,
    run_pair,
)


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Every test starts from the no-override, no-env default."""
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    set_array_backend(None)
    yield
    monkeypatch.delenv("REPRO_ARRAY_BACKEND", raising=False)
    set_array_backend(None)


class TestRegistry:
    def test_builtin_names_registered(self):
        names = backend_names()
        assert "numpy" in names
        assert "cupy" in names

    def test_numpy_always_available(self):
        assert backend_available("numpy")

    def test_unknown_name_is_explicit_error(self):
        with pytest.raises(KeyError, match="unknown array backend"):
            get_array_backend("not-a-backend")
        assert not backend_available("not-a-backend")

    def test_register_custom_backend(self):
        class Tagged(NumpyBackend):
            name = "tagged"

        register_backend("tagged", Tagged)
        try:
            assert "tagged" in backend_names()
            assert get_array_backend("tagged").name == "tagged"
        finally:
            # the registry is process-global; drop the test entry
            from repro.model import array_backend as ab

            ab._FACTORIES.pop("tagged", None)
            ab._cache.pop("tagged", None)


class TestSelection:
    def test_default_is_numpy(self):
        assert get_array_backend().name == "numpy"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        assert get_array_backend().name == "numpy"

    def test_env_var_unknown_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "bogus")
        with pytest.raises(KeyError):
            get_array_backend()

    def test_process_default_beats_env(self, monkeypatch):
        class Tagged(NumpyBackend):
            name = "tagged-default"

        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "bogus")
        set_array_backend(Tagged())
        assert get_array_backend().name == "tagged-default"

    def test_explicit_arg_beats_process_default(self):
        class Tagged(NumpyBackend):
            name = "tagged-arg"

        set_array_backend(Tagged())
        assert get_array_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        inst = NumpyBackend()
        assert get_array_backend(inst) is inst

    def test_clear_override(self):
        class Tagged(NumpyBackend):
            name = "tagged-clear"

        set_array_backend(Tagged())
        set_array_backend(None)
        assert get_array_backend().name == "numpy"

    def test_cupy_unavailable_raises_actionable(self):
        if backend_available("cupy"):
            pytest.skip("cupy present on this host")
        with pytest.raises(BackendUnavailable, match="cupy"):
            get_array_backend("cupy")


class TestNumpyParity:
    """Routing allocation through the seam must change nothing."""

    def test_batch_run_bit_identical_through_seam(self):
        scenarios = [{"level": {"value": v}} for v in (0.0, 0.5, 2.0, 3.0)]
        serial, _sim, batched = run_pair(diverging_event_model, scenarios)
        seamed = simulate_batch(
            diverging_event_model(),
            scenarios,
            dt=1e-3,
            t_final=0.05,
            log_all_signals=True,
            backend="numpy",
        )
        assert_lanes_identical(serial, seamed)
        for name in batched.names:
            assert np.array_equal(batched[name], seamed[name])

    def test_plan_stats_report_backend(self):
        from repro.model import BatchSimulator

        sim = BatchSimulator(
            diverging_event_model().compile(1e-3),
            [{}, {}],
            SimulationOptions(dt=1e-3, t_final=0.01),
            backend=NumpyBackend(),
        )
        sim.initialize()
        assert sim.plan_stats["array_backend"] == "numpy"


class TestCupyParity:
    def test_cupy_matches_numpy(self):
        if not backend_available("cupy"):
            pytest.skip("SKIP-NOTICE: cupy/CUDA not available on this host; "
                        "array-seam parity ran on numpy only")
        scenarios = [{"level": {"value": v}} for v in (0.0, 2.0)]
        base = simulate_batch(
            diverging_event_model(), scenarios, dt=1e-3, t_final=0.05,
            backend="numpy",
        )
        gpu = simulate_batch(
            diverging_event_model(), scenarios, dt=1e-3, t_final=0.05,
            backend="cupy",
        )
        for name in base.names:
            # GPU float contraction order may differ: tolerance, not bits
            assert np.allclose(base[name], gpu[name], rtol=1e-12, atol=1e-12)


class TestAbstractSurface:
    def test_abstract_methods_raise(self):
        b = ArrayBackend()
        for op in ("zeros", "empty", "asarray", "array", "vstack",
                   "index_array", "asnumpy"):
            with pytest.raises(NotImplementedError):
                getattr(b, op)((2, 2)) if op != "vstack" else b.vstack([])

    def test_full_signature(self):
        with pytest.raises(NotImplementedError):
            ArrayBackend().full((2,), 1.0)

    def test_scalar_default(self):
        assert ArrayBackend().scalar(np.float64(2.5)) == 2.5
