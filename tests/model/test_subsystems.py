"""Tests for function-call subsystems and event dispatch."""

import numpy as np
import pytest

from repro.model import Model, ModelError
from repro.model.block import Block, BlockContext
from repro.model.engine import simulate, Simulator, SimulationOptions
from repro.model.library import (
    Clock,
    Constant,
    FunctionCallSubsystem,
    Gain,
    Inport,
    Integrator,
    Outport,
    Scope,
    Terminator,
    UnitDelay,
)


class EveryNSteps(Block):
    """Test helper: fires its event port every ``n``-th major step."""

    n_out = 1
    n_events = 1
    direct_feedthrough = False

    def __init__(self, name, n=2):
        super().__init__(name)
        self.n = n

    def start(self, ctx):
        ctx.dwork["k"] = 0

    def outputs(self, t, u, ctx):
        if ctx.dwork["k"] % self.n == 0:
            ctx.fire(0)
        return [float(ctx.dwork["k"])]

    def update(self, t, u, ctx):
        ctx.dwork["k"] += 1


def counting_fcsub(name="isr"):
    """FC subsystem that multiplies its input by 10."""
    fc = FunctionCallSubsystem(name)
    i = fc.inner.add(Inport("in0", index=0))
    g = fc.inner.add(Gain("g", gain=10.0))
    o = fc.inner.add(Outport("out0", index=0))
    fc.inner.connect(i, g)
    fc.inner.connect(g, o)
    return fc


class TestFunctionCallSubsystem:
    def build(self, n=2):
        m = Model()
        src = m.add(EveryNSteps("src", n=n))
        fc = m.add(counting_fcsub())
        sc = m.add(Scope("sc", label="y"))
        m.connect(src, fc)  # data: step count in
        m.connect(fc, sc)
        m.connect_event(src, fc)
        return m, fc

    def test_executes_only_on_trigger(self):
        m, fc = self.build(n=3)
        simulate(m, t_final=0.009, dt=1e-3)  # 10 major steps: k=0..9
        # fires at k = 0, 3, 6, 9 -> 4 calls
        assert fc.call_count == 4

    def test_output_holds_between_calls(self):
        m, fc = self.build(n=5)
        res = simulate(m, t_final=0.009, dt=1e-3)
        y = res["y"]
        # triggered at k=0 (y=0) and k=5 (y=50); held in between
        assert np.all(y[0:5] == 0.0)
        assert np.all(y[5:] == 50.0)

    def test_inner_discrete_state_persists(self):
        # FC subsystem with an inner accumulator: counts calls
        fc = FunctionCallSubsystem("acc")
        i = fc.inner.add(Inport("in0", index=0))
        d = fc.inner.add(UnitDelay("d", sample_time=1e-3))
        from repro.model.library import Sum

        s = fc.inner.add(Sum("s", signs="++"))
        o = fc.inner.add(Outport("out0", index=0))
        fc.inner.connect(i, s, 0, 0)
        fc.inner.connect(d, s, 0, 1)
        fc.inner.connect(s, d)
        fc.inner.connect(s, o)

        m = Model()
        src = m.add(EveryNSteps("src", n=1))
        c = m.add(Constant("one", value=1.0))
        sc = m.add(Scope("sc", label="count"))
        m.add(fc)
        m.connect(c, fc)
        m.connect(fc, sc)
        m.connect_event(src, fc)
        m.connect(src, m.add(Terminator("t")))
        res = simulate(m, t_final=0.004, dt=1e-3)
        assert res["count"][-1] == 5.0  # one increment per call

    def test_triggerable_flag_required(self):
        m = Model()
        src = m.add(EveryNSteps("src"))
        g = m.add(Gain("g"))
        with pytest.raises(ModelError):
            m.connect_event(src, g)

    def test_continuous_states_rejected_inside(self):
        fc = FunctionCallSubsystem("bad")
        i = fc.inner.add(Inport("in0", index=0))
        integ = fc.inner.add(Integrator("i"))
        o = fc.inner.add(Outport("out0", index=0))
        fc.inner.connect(i, integ)
        fc.inner.connect(integ, o)

        m = Model()
        src = m.add(EveryNSteps("src"))
        m.add(fc)
        sc = m.add(Scope("sc"))
        m.connect(src, fc)
        m.connect(fc, sc)
        m.connect_event(src, fc)
        with pytest.raises(ModelError, match="continuous"):
            m.compile(1e-3)

    def test_uncompiled_execution_rejected(self):
        fc = counting_fcsub()
        ctx = BlockContext()
        with pytest.raises(ModelError, match="not compiled"):
            fc.start(ctx)

    def test_duplicate_port_index_rejected(self):
        fc = FunctionCallSubsystem("dup")
        fc.inner.add(Inport("a", index=0))
        fc.inner.add(Inport("b", index=0))
        with pytest.raises(ModelError, match="duplicate"):
            fc.n_in


class TestEventFanout:
    def test_one_event_two_targets(self):
        m = Model()
        src = m.add(EveryNSteps("src", n=1))
        fc1 = m.add(counting_fcsub("isr1"))
        fc2 = m.add(counting_fcsub("isr2"))
        sc1 = m.add(Scope("s1"))
        sc2 = m.add(Scope("s2"))
        m.connect(src, fc1)
        m.connect(src, fc2)
        m.connect(fc1, sc1)
        m.connect(fc2, sc2)
        m.connect_event(src, fc1)
        m.connect_event(src, fc2)
        simulate(m, t_final=0.002, dt=1e-3)
        assert fc1.call_count == 3
        assert fc2.call_count == 3

    def test_events_do_not_fire_in_minor_steps(self):
        # RK4 on a model with continuous state: minor steps must not trigger
        m = Model()
        src = m.add(EveryNSteps("src", n=1))
        fc = m.add(counting_fcsub())
        sc = m.add(Scope("sc"))
        c = m.add(Constant("c", value=1.0))
        integ = m.add(Integrator("i"))
        t2 = m.add(Terminator("t2"))
        m.connect(src, fc)
        m.connect(fc, sc)
        m.connect_event(src, fc)
        m.connect(c, integ)
        m.connect(integ, t2)
        simulate(m, t_final=0.004, dt=1e-3, solver="rk4")
        assert fc.call_count == 5  # exactly one call per major step
