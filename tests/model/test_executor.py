"""Direct tests for the stand-alone AtomicExecutor."""

import pytest

from repro.model import Model, ModelError
from repro.model.executor import AtomicExecutor
from repro.model.library import (
    Constant,
    Gain,
    Inport,
    Integrator,
    Outport,
    Sum,
    Terminator,
    UnitDelay,
)


def simple_cm(dt=1e-3):
    m = Model("atomic")
    i = m.add(Inport("u", index=0))
    g = m.add(Gain("g", gain=2.0))
    d = m.add(UnitDelay("acc", sample_time=dt))
    s = m.add(Sum("s", signs="++"))
    o = m.add(Outport("y", index=0))
    m.connect(i, g)
    m.connect(g, s, 0, 0)
    m.connect(d, s, 0, 1)
    m.connect(s, d)
    m.connect(s, o)
    return m.compile(dt)


class TestAtomicExecutor:
    def test_basic_call_cycle(self):
        ex = AtomicExecutor(simple_cm())
        ex.start()
        ex.inject(0, 1.0)
        ex.call(0.0)
        assert ex.read(0) == 2.0  # 2*1 + 0
        ex.call(1e-3)
        assert ex.read(0) == 4.0  # 2*1 + 2 (accumulator)

    def test_call_before_start_rejected(self):
        ex = AtomicExecutor(simple_cm())
        with pytest.raises(ModelError, match="start"):
            ex.call(0.0)

    def test_unknown_ports_rejected(self):
        ex = AtomicExecutor(simple_cm())
        ex.start()
        with pytest.raises(ModelError):
            ex.inject(5, 1.0)
        with pytest.raises(ModelError):
            ex.read(3)

    def test_continuous_states_rejected(self):
        m = Model()
        c = m.add(Constant("c"))
        i = m.add(Integrator("i"))
        t = m.add(Terminator("t"))
        m.connect(c, i)
        m.connect(i, t)
        with pytest.raises(ModelError, match="continuous"):
            AtomicExecutor(m.compile(1e-3))

    def test_honor_rates(self):
        # a block at 4x the base rate only executes every 4th tick
        dt = 1e-3
        m = Model("rates")
        i = m.add(Inport("u", index=0))
        slow = m.add(UnitDelay("slow", sample_time=4 * dt))
        o = m.add(Outport("y", index=0))
        m.connect(i, slow)
        m.connect(slow, o)
        ex = AtomicExecutor(m.compile(dt), honor_rates=True)
        ex.start()
        for k in range(8):
            ex.inject(0, float(k))
            ex.call(k * dt)
        # hits at tick 0 and 4: delay state got u=0 then u=4
        assert ex.read(0) == 0.0 or ex.read(0) == 4.0

    def test_ignore_rates_by_default(self):
        dt = 1e-3
        m = Model("norates")
        i = m.add(Inport("u", index=0))
        slow = m.add(UnitDelay("slow", sample_time=4 * dt))
        o = m.add(Outport("y", index=0))
        m.connect(i, slow)
        m.connect(slow, o)
        ex = AtomicExecutor(m.compile(dt))
        ex.start()
        for k in range(3):
            ex.inject(0, float(k + 1))
            ex.call(k * dt)
        # executed every call: y = u from the previous call
        assert ex.read(0) == 2.0

    def test_read_signal_by_name(self):
        ex = AtomicExecutor(simple_cm())
        ex.start()
        ex.inject(0, 3.0)
        ex.call(0.0)
        assert ex.read_signal("g", 0) == 6.0

    def test_restart_resets_state(self):
        ex = AtomicExecutor(simple_cm())
        ex.start()
        ex.inject(0, 1.0)
        for k in range(5):
            ex.call(k * 1e-3)
        assert ex.read(0) > 2.0
        ex.start()  # fresh contexts
        ex.inject(0, 1.0)
        ex.call(0.0)
        assert ex.read(0) == 2.0
