"""Tests for model persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.analysis import trajectory_rmse
from repro.casestudy import ServoConfig, build_servo_model
from repro.model import Model, ModelError
from repro.model.engine import simulate
from repro.model.io import load_model, model_from_dict, model_to_dict, save_model
from repro.model.library import (
    Constant,
    DiscreteTransferFunction,
    Gain,
    Lookup1D,
    Scope,
    StateSpace,
    Step,
    Subsystem,
    Sum,
    Terminator,
    TransferFunction,
    UnitDelay,
    Inport,
    Outport,
)


def roundtrip(model: Model) -> Model:
    return model_from_dict(model_to_dict(model))


def behaviour(model: Model, t_final=0.1, dt=1e-3):
    return simulate(model, t_final=t_final, dt=dt)


class TestBasicRoundTrip:
    def build(self):
        m = Model("rt")
        r = m.add(Step("r", step_time=0.01, final=2.0))
        e = m.add(Sum("e", signs="+-"))
        g = m.add(Gain("g", gain=3.0))
        p = m.add(TransferFunction("p", [1.0], [0.05, 1.0]))
        d = m.add(UnitDelay("d", sample_time=1e-3))
        sc = m.add(Scope("sc", label="y"))
        m.connect(r, e, 0, 0)
        m.connect(p, e, 0, 1)
        m.connect(e, g)
        m.connect(g, d)
        m.connect(d, p)
        m.connect(p, sc)
        return m

    def test_structure_preserved(self):
        m = self.build()
        m2 = roundtrip(m)
        assert m2.structural_signature()[1] == m.structural_signature()[1]  # lines
        assert set(m2.blocks) == set(m.blocks)

    def test_behaviour_identical(self):
        m = self.build()
        res1 = behaviour(m)
        res2 = behaviour(roundtrip(self.build()))
        assert np.array_equal(res1["y"], res2["y"])

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(self.build(), str(path))
        m2 = load_model(str(path))
        assert set(m2.blocks) == set(self.build().blocks)

    def test_format_version_checked(self):
        doc = model_to_dict(self.build())
        doc["format"] = 99
        with pytest.raises(ModelError, match="format"):
            model_from_dict(doc)


class TestParameterFidelity:
    def test_lookup_table(self):
        m = Model()
        c = m.add(Constant("c", value=0.7))
        lk = m.add(Lookup1D("lk", [0.0, 1.0], [5.0, 9.0], mode="linear"))
        t = m.add(Terminator("t"))
        m.connect(c, lk)
        m.connect(lk, t)
        m2 = roundtrip(m)
        lk2 = m2.block("lk")
        assert list(lk2.breakpoints) == [0.0, 1.0]
        assert lk2.mode == "linear"

    def test_discrete_tf_coefficients(self):
        m = Model()
        c = m.add(Constant("c"))
        f = m.add(DiscreteTransferFunction("f", [0.2, 0.3], [1.0, -0.5], 1e-3))
        t = m.add(Terminator("t"))
        m.connect(c, f)
        m.connect(f, t)
        f2 = roundtrip(m).block("f")
        assert np.allclose(f2.b, f.b) and np.allclose(f2.a, f.a)

    def test_state_space_matrices(self):
        m = Model()
        c = m.add(Constant("c"))
        ss = m.add(StateSpace("ss", A=[[-1.0, 0.5], [0.0, -2.0]],
                              B=[[1.0], [0.5]], C=[[1.0, 0.0]]))
        t = m.add(Terminator("t"))
        m.connect(c, ss)
        m.connect(ss, t)
        ss2 = roundtrip(m).block("ss")
        assert np.allclose(ss2.A, ss.A)
        assert np.allclose(ss2.B, ss.B)

    def test_subsystem_nesting(self):
        sub = Subsystem("sub")
        i = sub.inner.add(Inport("i", index=0))
        g = sub.inner.add(Gain("g", gain=4.0))
        o = sub.inner.add(Outport("o", index=0))
        sub.inner.connect(i, g)
        sub.inner.connect(g, o)
        m = Model()
        c = m.add(Constant("c", value=2.0))
        m.add(sub)
        sc = m.add(Scope("sc", label="y"))
        m.connect(c, sub)
        m.connect(sub, sc)
        m2 = roundtrip(m)
        assert behaviour(m2).final("y") == 8.0


class TestServoModelRoundTrip:
    def test_full_case_study(self):
        sm = build_servo_model(ServoConfig(setpoint=100.0))
        doc = model_to_dict(sm.model)
        m2 = model_from_dict(doc)
        r1 = behaviour(sm.model, t_final=0.2, dt=1e-4)
        r2 = behaviour(m2, t_final=0.2, dt=1e-4)
        assert trajectory_rmse(r1.t, r1["speed"], r2.t, r2["speed"]) < 1e-9

    def test_loaded_model_builds(self):
        from repro.core import PEERTTarget

        sm = build_servo_model(ServoConfig(setpoint=100.0))
        m2 = model_from_dict(model_to_dict(sm.model))
        app = PEERTTarget(m2).build()
        assert app.artifacts.loc > 100

    def test_fixed_point_variant(self):
        sm = build_servo_model(ServoConfig(setpoint=100.0, fixed_point=True))
        m2 = model_from_dict(model_to_dict(sm.model))
        pid = m2.block("controller").inner.block("pid")
        assert pid.e_scale == sm.model.block("controller").inner.block("pid").e_scale


class TestUnserializable:
    def test_chart_block_rejected(self):
        from repro.stateflow import Chart, ChartBlock, State

        ch = Chart()
        ch.add_state(State("s"))
        m = Model()
        m.add(ChartBlock("cb", ch, sample_time=1e-3))
        with pytest.raises(ModelError, match="not registered"):
            model_to_dict(m)

    def test_unknown_type_on_load(self):
        with pytest.raises(ModelError, match="unknown block type"):
            model_from_dict({
                "format": 1, "name": "x",
                "blocks": [{"type": "FluxCapacitor", "name": "f", "params": {}}],
                "connections": [], "events": [],
            })
