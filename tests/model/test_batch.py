"""Equivalence matrix: batch ensemble engine vs serial simulator.

Every test runs the same scenarios twice — one serial
:class:`~repro.model.Simulator` per scenario (the reference interpreter)
and one :class:`~repro.model.BatchSimulator` carrying all scenarios as
lanes — and asserts each lane is **bit-identical** (``np.array_equal``,
no tolerance) to its serial run.  The matrix mirrors
``tests/model/test_kernels.py``: whole block library, both solvers,
mixed rates, per-lane affine coefficients, lane-diverging events, and
the full servo case study.
"""

import dataclasses

import numpy as np
import pytest

from repro.model import (
    BatchPlanError,
    BatchScenario,
    BatchSimulator,
    Model,
    SimulationOptions,
    Simulator,
    simulate_batch,
)
from repro.model.block import Block
from repro.model.library import (
    Constant,
    FunctionCallSubsystem,
    Gain,
    Inport,
    Outport,
    Scope,
)

from tests.model.test_kernels import (
    LIBRARY,
    event_model,
    harness,
    mixed_rate_model,
    wide_affine_model,
)


def run_pair(factory, scenarios, t_final=0.05, dt=1e-3, solver="rk4"):
    """Serial runs (one fresh model per scenario) vs one batched run."""
    serial = []
    for overrides in scenarios:
        cm = factory().compile(dt)
        for qname, attrs in overrides.items():
            for attr, value in attrs.items():
                setattr(cm.nodes[qname], attr, value)
        sim = Simulator(
            cm,
            SimulationOptions(
                dt=dt,
                t_final=t_final,
                solver=solver,
                log_all_signals=True,
                use_kernels=False,
            ),
        )
        serial.append(sim.run())
    batch = BatchSimulator(
        factory().compile(dt),
        scenarios,
        SimulationOptions(
            dt=dt, t_final=t_final, solver=solver, log_all_signals=True
        ),
    )
    return serial, batch, batch.run()


def assert_lanes_identical(serial, batched):
    assert batched.n_lanes == len(serial)
    for b, ref in enumerate(serial):
        lane = batched.lane(b)
        assert np.array_equal(ref.t, lane.t)
        assert ref.names == lane.names
        for name in ref.names:
            assert np.array_equal(ref[name], lane[name]), (
                f"lane {b} signal '{name}' diverges: max |Δ| = "
                f"{np.max(np.abs(ref[name] - lane[name]))}"
            )


#: vary the sine driver so lanes take genuinely different trajectories
DRIVER_SWEEP = [{"d0": {"amplitude": a}} for a in (1.0, 2.0, 2.5, 3.25)]


# ---------------------------------------------------------------------------
# whole-library matrix
# ---------------------------------------------------------------------------
class TestLibraryMatrix:
    @pytest.mark.parametrize("key", sorted(LIBRARY))
    def test_block_bit_identical(self, key):
        serial, _sim, batched = run_pair(harness(LIBRARY[key]), DRIVER_SWEEP)
        assert_lanes_identical(serial, batched)

    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_solvers(self, solver):
        serial, _sim, batched = run_pair(
            harness(LIBRARY["transfer_function"]),
            DRIVER_SWEEP,
            solver=solver,
            t_final=0.2,
        )
        assert_lanes_identical(serial, batched)

    def test_block_param_sweep(self):
        scenarios = [{"b": {"gain": g}} for g in (-2.5, -1.0, 0.5, 4.0)]
        serial, _sim, batched = run_pair(harness(LIBRARY["gain"]), scenarios)
        assert_lanes_identical(serial, batched)


# ---------------------------------------------------------------------------
# structure-specific models
# ---------------------------------------------------------------------------
class TestStructures:
    def test_mixed_rates(self):
        scenarios = [{"src": {"final": f}} for f in (0.5, 1.0, 1.5)]
        serial, _sim, batched = run_pair(
            mixed_rate_model, scenarios, t_final=0.3
        )
        assert_lanes_identical(serial, batched)

    def test_wide_affine_per_lane_coefficients(self):
        # per-lane gains on a fused affine run exercise the (rows, B)
        # coefficient path of BatchAffineKernel
        scenarios = [
            {"g0": {"gain": 0.5 + 0.1 * b}, "b3": {"bias": -1.0 + 0.2 * b}}
            for b in range(4)
        ]
        serial, sim, batched = run_pair(
            wide_affine_model, scenarios, t_final=0.2
        )
        assert sim.plan_stats["affine_rows"] >= 8
        assert_lanes_identical(serial, batched)

    def test_event_driven_subsystem(self):
        # EveryNSteps fires in every lane -> no divergence, but the full
        # per-lane dispatch path runs
        serial, sim, batched = run_pair(event_model, [{}] * 3, t_final=0.05)
        assert_lanes_identical(serial, batched)
        assert sim.lanes_diverged == 0

    def test_mixed_rate_solvers(self):
        for solver in ("euler", "rk4"):
            scenarios = [{"src": {"final": f}} for f in (0.8, 1.2)]
            serial, _sim, batched = run_pair(
                mixed_rate_model, scenarios, t_final=0.1, solver=solver
            )
            assert_lanes_identical(serial, batched)


# ---------------------------------------------------------------------------
# lane divergence: one lane trips the trigger, the others don't
# ---------------------------------------------------------------------------
class FireAbove(Block):
    """Fires its function-call port while the input exceeds a threshold."""

    n_in = 1
    n_out = 1
    n_events = 1

    def __init__(self, name, threshold=1.0):
        super().__init__(name)
        self.threshold = float(threshold)

    def outputs(self, t, u, ctx):
        if u[0] > self.threshold:
            ctx.fire(0)
        return [u[0]]


def diverging_event_model():
    m = Model("diverge")
    m.add(Constant("level", value=0.0))
    m.add(FireAbove("det", threshold=1.0))
    fc = FunctionCallSubsystem("isr")
    i = fc.inner.add(Inport("in0", index=0))
    g = fc.inner.add(Gain("g", gain=10.0))
    o = fc.inner.add(Outport("out0", index=0))
    fc.inner.connect(i, g)
    fc.inner.connect(g, o)
    m.add(fc)
    m.connect("level", "det")
    m.connect("det", "isr")
    m.connect_event("det", "isr")
    m.connect("isr", m.add(Scope("sc", label="isr_y")))
    m.connect("det", m.add(Scope("sc2", label="det_y")))
    return m


class TestLaneDivergence:
    def test_one_lane_fires_others_hold(self):
        # lane 2 exceeds the threshold and drives its ISR; lanes 0/1 never
        # trigger and must keep the untriggered trajectory bit-exactly
        scenarios = [{"level": {"value": v}} for v in (0.0, 0.5, 2.0)]
        serial, sim, batched = run_pair(
            diverging_event_model, scenarios, t_final=0.02
        )
        assert_lanes_identical(serial, batched)
        assert sim.lanes_diverged > 0
        assert batched.final("isr_y")[2] == 20.0
        assert batched.final("isr_y")[0] == 0.0

    def test_all_lanes_fire_no_divergence(self):
        scenarios = [{"level": {"value": v}} for v in (1.5, 2.0, 3.0)]
        serial, sim, batched = run_pair(
            diverging_event_model, scenarios, t_final=0.02
        )
        assert_lanes_identical(serial, batched)
        assert sim.lanes_diverged == 0


# ---------------------------------------------------------------------------
# servo case study
# ---------------------------------------------------------------------------
class TestServoCaseStudy:
    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_gain_sweep_bit_identical(self, solver):
        from repro.casestudy import ServoConfig, build_servo_model

        probe = build_servo_model(ServoConfig(setpoint=100.0))
        base = probe.pid_block.gains

        def factory():
            return build_servo_model(ServoConfig(setpoint=100.0)).model

        scenarios = [
            {
                "controller.pid": {
                    "gains": dataclasses.replace(base, kp=base.kp * s)
                }
            }
            for s in (0.5, 1.0, 2.0)
        ]
        serial, sim, batched = run_pair(
            factory, scenarios, t_final=0.1, dt=1e-4, solver=solver
        )
        # the plant and most of the controller must actually vectorize
        assert sim.plan_stats["batch_blocks"] >= 5
        assert_lanes_identical(serial, batched)

    def test_setpoint_sweep_fully_vectorized_controller(self):
        from repro.casestudy import ServoConfig, build_servo_model

        def factory():
            return build_servo_model(ServoConfig(setpoint=100.0)).model

        scenarios = [
            {"controller.ref": {"value": v}} for v in (50.0, 80.0, 120.0)
        ]
        serial, sim, batched = run_pair(
            factory, scenarios, t_final=0.1, dt=1e-4
        )
        assert sim.plan_stats["lane_blocks"] <= 1  # only the timer block
        assert_lanes_identical(serial, batched)


# ---------------------------------------------------------------------------
# API surface
# ---------------------------------------------------------------------------
class TestBatchApi:
    def test_unknown_block_rejected(self):
        with pytest.raises(BatchPlanError, match="unknown block"):
            simulate_batch(
                mixed_rate_model(), [{"nope": {"x": 1.0}}], t_final=0.01
            )

    def test_unknown_attribute_rejected(self):
        with pytest.raises(BatchPlanError, match="no attribute"):
            simulate_batch(
                mixed_rate_model(), [{"src": {"nope": 1.0}}], t_final=0.01
            )

    def test_empty_scenarios_rejected(self):
        with pytest.raises(BatchPlanError, match="at least one scenario"):
            BatchSimulator(
                mixed_rate_model().compile(1e-3),
                [],
                SimulationOptions(dt=1e-3, t_final=0.01),
            )

    def test_dt_mismatch_rejected(self):
        with pytest.raises(ValueError, match="base step"):
            BatchSimulator(
                mixed_rate_model().compile(1e-3),
                [{}],
                SimulationOptions(dt=2e-3, t_final=0.01),
            )

    def test_labels_and_split(self):
        res = simulate_batch(
            mixed_rate_model(),
            [
                BatchScenario({"src": {"final": 0.5}}, label="low"),
                BatchScenario({"src": {"final": 1.5}}, label="high"),
            ],
            t_final=0.02,
        )
        assert res.labels == ["low", "high"]
        lanes = res.split()
        assert len(lanes) == 2
        assert np.array_equal(res["y"][:, 1], lanes[1]["y"])
        assert res.final("y").shape == (2,)

    def test_read_write_signal_lane_addressing(self):
        sim = BatchSimulator(
            mixed_rate_model().compile(1e-3),
            [{}, {}],
            SimulationOptions(dt=1e-3, t_final=0.01),
        )
        sim.initialize()
        sim.advance()
        sim.write_signal("hold", 0, -5.0, lane=1)
        row = sim.read_signal("hold", 0)
        assert row.shape == (2,)
        assert row[1] == -5.0
        assert sim.read_signal("hold", 0, lane=1) == -5.0
