"""Equivalence matrix: kernel fast path vs reference interpreter.

Every test runs the same model twice — ``use_kernels=False`` (the
reference block-by-block interpreter) and ``use_kernels=True`` (the
generated fast path) — and asserts the trajectories are **bit-identical**
(``np.array_equal``, no tolerance).  The matrix spans the whole block
library, both solvers, mixed rates, event-driven models, co-simulation
injection, and the full servo case study.
"""

import numpy as np
import pytest

from repro.model import Model, Simulator, SimulationOptions
from repro.model.block import Block
from repro.model.kernels import (
    VECTOR_MIN_ROWS,
    AffineRun,
    plan_kernels,
)
from repro.model.library import (
    Abs,
    Backlash,
    Bias,
    Clock,
    Constant,
    Coulomb,
    DataTypeConversion,
    DeadZone,
    DiscreteDerivative,
    DiscreteIntegrator,
    DiscreteTransferFunction,
    EdgeDetector,
    FunctionCallSubsystem,
    Gain,
    Inport,
    Integrator,
    LogicalOperator,
    Lookup1D,
    ManualSwitch,
    MathFunction,
    Memory,
    MinMax,
    Outport,
    Product,
    PulseGenerator,
    Quantizer,
    Ramp,
    RateLimiter,
    Relay,
    RelationalOperator,
    Saturation,
    Scope,
    Sign,
    SineWave,
    Step,
    Sum,
    Switch,
    Terminator,
    TransferFunction,
    TransportDelay,
    UnitDelay,
    WhiteNoise,
    ZeroOrderHold,
)
from repro.model.types import INT16


def run_both(factory, t_final=0.05, dt=1e-3, solver="rk4", hook=None):
    """Run a freshly built model on both paths; return (ref, fast, sims)."""
    results, sims = [], []
    for use_kernels in (False, True):
        sim = Simulator(
            factory().compile(dt),
            SimulationOptions(
                dt=dt,
                t_final=t_final,
                solver=solver,
                log_all_signals=True,
                step_hook=hook,
                use_kernels=use_kernels,
            ),
        )
        results.append(sim.run())
        sims.append(sim)
    return results[0], results[1], sims


def assert_identical(ref, fast):
    assert np.array_equal(ref.t, fast.t)
    assert ref.names == fast.names
    for name in ref.names:
        assert np.array_equal(ref[name], fast[name]), (
            f"signal '{name}' diverges: max |Δ| = "
            f"{np.max(np.abs(ref[name] - fast[name]))}"
        )


def assert_fast_active(sims):
    """The second sim must actually be on the fast path."""
    assert sims[1].fast_path is not None, sims[1].kernel_fallback_reason
    assert sims[0].fast_path is None


# ---------------------------------------------------------------------------
# whole-library matrix
# ---------------------------------------------------------------------------
TS = 2e-3  # discrete-block sample time: divisor 2 at the 1e-3 base step

LIBRARY = {
    "integrator": lambda: Integrator("b", initial=0.5, lower=-3.0, upper=3.0),
    "transfer_function": lambda: TransferFunction("b", [1.0], [0.01, 1.0]),
    "dtype_conversion": lambda: DataTypeConversion("b", INT16),
    "discrete_derivative": lambda: DiscreteDerivative("b", TS, gain=2.0),
    "discrete_integrator": lambda: DiscreteIntegrator("b", TS, gain=1.5),
    "discrete_tf": lambda: DiscreteTransferFunction("b", [0.2, 0.1], [1.0, -0.7], TS),
    "memory": lambda: Memory("b", initial=0.25),
    "unit_delay": lambda: UnitDelay("b", TS, initial=1.0),
    "zoh": lambda: ZeroOrderHold("b", TS),
    "backlash": lambda: Backlash("b", width=0.5),
    "edge_detector": lambda: EdgeDetector("b", TS),
    "transport_delay": lambda: TransportDelay("b", TS, delay_steps=3),
    "lookup1d": lambda: Lookup1D("b", [-2.0, 0.0, 2.0], [0.0, 1.0, 4.0]),
    "abs": lambda: Abs("b"),
    "bias": lambda: Bias("b", bias=0.3),
    "gain": lambda: Gain("b", gain=-2.5),
    "logical": lambda: LogicalOperator("b", op="AND", n_in=2),
    "math_function": lambda: MathFunction("b", function="square"),
    "minmax": lambda: MinMax("b", mode="max", n_in=2),
    "product": lambda: Product("b", ops="**"),
    "relational": lambda: RelationalOperator("b", op="<"),
    "sign": lambda: Sign("b"),
    "sum": lambda: Sum("b", signs="+-"),
    "coulomb": lambda: Coulomb("b", offset=0.1, gain=0.4),
    "dead_zone": lambda: DeadZone("b", start=-0.5, end=0.5),
    "quantizer": lambda: Quantizer("b", interval=0.25),
    "rate_limiter": lambda: RateLimiter("b", TS, rising=2.0),
    "relay": lambda: Relay("b", on_point=0.5, off_point=-0.5),
    "saturation": lambda: Saturation("b", lower=-1.0, upper=1.0),
    "manual_switch": lambda: ManualSwitch("b", position=1),
    "switch": lambda: Switch("b", threshold=0.0),
    "clock": lambda: Clock("b"),
    "constant": lambda: Constant("b", value=3.25),
    "pulse": lambda: PulseGenerator("b", amplitude=2.0, period=0.01),
    "ramp": lambda: Ramp("b", slope=4.0, start_time=0.01),
    "sine": lambda: SineWave("b", amplitude=2.0, frequency=30.0),
    "step": lambda: Step("b", step_time=0.02, initial=-1.0, final=1.0),
    "white_noise": lambda: WhiteNoise("b", std=1.0, sample_time=TS, seed=7),
}


def harness(block_factory):
    """sine/clock/const drivers -> block -> scope, terminating all ports."""

    def build():
        m = Model("h")
        blk = m.add(block_factory())
        drivers = [
            m.add(SineWave("d0", amplitude=2.0, frequency=25.0)),
            m.add(Clock("d1")),
            m.add(Constant("d2", value=0.5)),
        ]
        for port in range(blk.n_in):
            m.connect(drivers[port], blk, 0, port)
        if blk.n_out:
            m.connect(blk, m.add(Scope("sc", label="y")))
            for port in range(1, blk.n_out):
                m.connect(blk, m.add(Terminator(f"t{port}")), port, 0)
        else:
            m.connect(drivers[0], m.add(Scope("sc", label="y")))
        return m

    return build


class TestLibraryMatrix:
    @pytest.mark.parametrize("key", sorted(LIBRARY))
    def test_block_bit_identical(self, key):
        ref, fast, sims = run_both(harness(LIBRARY[key]))
        assert_fast_active(sims)
        assert_identical(ref, fast)

    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_solvers(self, solver):
        ref, fast, sims = run_both(
            harness(LIBRARY["transfer_function"]), solver=solver, t_final=0.2
        )
        assert_fast_active(sims)
        assert_identical(ref, fast)


# ---------------------------------------------------------------------------
# structure-specific models
# ---------------------------------------------------------------------------
def mixed_rate_model():
    """Continuous plant + two discrete rates (divisors 2 and 5)."""
    m = Model("rates")
    src = m.add(Step("src", step_time=0.0, final=1.0))
    err = m.add(Sum("err", signs="+-"))
    pi = m.add(DiscreteIntegrator("pi", 2e-3, gain=20.0))
    hold = m.add(ZeroOrderHold("hold", 5e-3))
    plant = m.add(TransferFunction("plant", [1.0], [0.05, 1.0]))
    m.connect(src, err, 0, 0)
    m.connect(err, pi)
    m.connect(pi, hold)
    m.connect(hold, plant)
    m.connect(plant, err, 0, 1)
    m.connect(plant, m.add(Scope("sc", label="y")))
    return m


def long_hyperperiod_model():
    """Divisors 63 and 64 -> lcm 4032 > PHASE_CAP, forcing guarded passes."""
    m = Model("longh")
    src = m.add(SineWave("src", amplitude=1.0, frequency=5.0))
    a = m.add(ZeroOrderHold("a", 63e-3))
    b = m.add(ZeroOrderHold("b", 64e-3))
    s = m.add(Sum("s", signs="++"))
    m.connect(src, a)
    m.connect(src, b)
    m.connect(a, s, 0, 0)
    m.connect(b, s, 0, 1)
    m.connect(s, m.add(Scope("sc", label="y")))
    return m


def wide_affine_model(rows=VECTOR_MIN_ROWS + 4):
    """A parallel bank of gain/bias chains wide enough to vectorize."""
    m = Model("wide")
    src = m.add(SineWave("src", amplitude=3.0, frequency=11.0))
    acc = m.add(Sum("acc", signs="+" * rows))
    for i in range(rows):
        g = m.add(Gain(f"g{i}", gain=0.5 + 0.25 * i))
        bi = m.add(Bias(f"b{i}", bias=0.125 * i - 1.0))
        m.connect(src, g)
        m.connect(g, bi)
        m.connect(bi, acc, 0, i)
    m.connect(acc, m.add(Scope("sc", label="y")))
    return m


class EveryNSteps(Block):
    """Fires its function-call port every n-th major step (test helper)."""

    n_in = 0
    n_out = 1
    n_events = 1

    def __init__(self, name, n=2):
        super().__init__(name)
        self.n = n

    def start(self, ctx):
        ctx.dwork["k"] = 0

    def outputs(self, t, u, ctx):
        k = ctx.dwork["k"]
        if not ctx.minor and k % self.n == 0:
            ctx.fire(0)
        return [float(k)]

    def update(self, t, u, ctx):
        ctx.dwork["k"] += 1


def event_model():
    """Event source triggering a function-call subsystem (ISR pattern)."""
    m = Model("events")
    src = m.add(EveryNSteps("src", n=3))
    fc = FunctionCallSubsystem("isr")
    i = fc.inner.add(Inport("in0", index=0))
    g = fc.inner.add(Gain("g", gain=10.0))
    o = fc.inner.add(Outport("out0", index=0))
    fc.inner.connect(i, g)
    fc.inner.connect(g, o)
    m.add(fc)
    m.connect(src, fc)
    m.connect(fc, m.add(Scope("sc", label="y")))
    return m


class TestStructures:
    def test_mixed_rates(self):
        ref, fast, sims = run_both(mixed_rate_model, t_final=0.3)
        assert_fast_active(sims)
        assert sims[1].fast_path.plan.hyperperiod == 10
        assert_identical(ref, fast)

    def test_hyperperiod_overflow_falls_back_to_guards(self):
        ref, fast, sims = run_both(long_hyperperiod_model, t_final=1.0)
        assert_fast_active(sims)
        assert sims[1].fast_path.plan.hyperperiod is None
        assert_identical(ref, fast)

    def test_wide_affine_uses_vector_kernel(self):
        ref, fast, sims = run_both(wide_affine_model, t_final=0.2)
        assert_fast_active(sims)
        assert sims[1].fast_path.plan.stats["vector_runs"] >= 1
        assert_identical(ref, fast)

    def test_event_driven_subsystem(self):
        ref, fast, sims = run_both(event_model, t_final=0.05)
        assert_fast_active(sims)
        assert_identical(ref, fast)

    def test_step_hook_injection(self):
        """Co-simulation style: a hook forcing a held discrete line."""

        def hook(t, sim):
            if 0.01 <= t <= 0.02:
                sim.write_signal("hold", 0, -5.0)

        ref, fast, sims = run_both(mixed_rate_model, t_final=0.1, hook=hook)
        assert_fast_active(sims)
        assert_identical(ref, fast)

    def test_use_kernels_false_disables(self):
        _, _, sims = run_both(mixed_rate_model, t_final=0.01)
        assert sims[0].kernel_fallback_reason == "disabled by SimulationOptions"
        assert sims[1].kernel_fallback_reason is None


class TestServoCaseStudy:
    @pytest.mark.parametrize("solver", ["euler", "rk4"])
    def test_full_case_study_bit_identical(self, solver):
        from repro.casestudy import ServoConfig, build_servo_model

        def factory():
            return build_servo_model(ServoConfig(setpoint=100.0)).model

        ref, fast, sims = run_both(
            factory, t_final=0.2, dt=1e-4, solver=solver
        )
        assert_fast_active(sims)
        assert_identical(ref, fast)

    def test_planner_report(self):
        from repro.casestudy import ServoConfig, build_servo_model

        cm = build_servo_model(ServoConfig(setpoint=100.0)).model.compile(1e-4)
        plan = cm.kernel_plan  # attached by CompiledModel.build
        assert plan is not None, cm.kernel_plan_error
        stats = plan.report()
        assert stats["affine_fused"] >= 3
        assert stats["passive_dropped"] >= 2
        # the dirty-closure pruning must shrink the minor-step schedule
        assert stats["minor_blocks"] < stats["minor_blocks_reference"]


class TestPlanner:
    def test_affine_run_partitioning(self):
        cm = wide_affine_model().compile(1e-3)
        plan = plan_kernels(cm)
        fused = [e for e in plan.entries if isinstance(e, AffineRun)]
        assert any(run.vectorized for run in fused)
        # sources are t-dependent, so the sine driver is not fused
        assert all("src" not in run.qnames for run in fused)

    def test_passive_sinks_dropped(self):
        cm = mixed_rate_model().compile(1e-3)
        plan = plan_kernels(cm)
        assert "sc" in plan.dropped
