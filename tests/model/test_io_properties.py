"""Property-based round-trip tests for model persistence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import Model
from repro.model.engine import simulate
from repro.model.io import model_from_dict, model_to_dict
from repro.model.library import (
    Bias,
    Constant,
    Gain,
    Saturation,
    Scope,
    Sum,
    UnitDelay,
)

# strategies building random (valid) chains of simple blocks -----------------
block_makers = st.sampled_from([
    lambda i, v: Gain(f"g{i}", gain=v),
    lambda i, v: Bias(f"b{i}", bias=v),
    lambda i, v: Saturation(f"s{i}", lower=-abs(v) - 1.0, upper=abs(v) + 1.0),
    lambda i, v: UnitDelay(f"d{i}", sample_time=1e-3, initial=v),
])


@st.composite
def chain_models(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    m = Model("rand")
    src = m.add(Constant("src", value=draw(st.floats(-3, 3))))
    prev = src
    for i in range(n):
        maker = draw(block_makers)
        v = draw(st.floats(min_value=-2, max_value=2))
        blk = m.add(maker(i, v))
        m.connect(prev, blk)
        prev = blk
    sc = m.add(Scope("sc", label="y"))
    m.connect(prev, sc)
    return m


class TestIoProperties:
    @given(chain_models())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_behaviour_identical(self, model):
        doc = model_to_dict(model)
        clone = model_from_dict(doc)
        r1 = simulate(model, t_final=0.01, dt=1e-3)
        r2 = simulate(clone, t_final=0.01, dt=1e-3)
        assert np.array_equal(r1["y"], r2["y"])

    @given(chain_models())
    @settings(max_examples=30, deadline=None)
    def test_document_is_json_stable(self, model):
        import json

        doc = model_to_dict(model)
        doc2 = json.loads(json.dumps(doc))
        clone = model_from_dict(doc2)
        assert set(clone.blocks) == set(model.blocks)
        assert len(clone.connections) == len(model.connections)
