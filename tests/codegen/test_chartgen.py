"""Tests for chart C code generation (the StateFlow Coder substitute)."""

import pytest

from repro.codegen.chartgen import generate_chart_code
from repro.stateflow import Chart, State


def keyboard_chart():
    ch = Chart("modes")

    def noop(d):
        pass

    manual = ch.add_state(State("manual", entry=noop))
    auto = ch.add_state(State("auto", entry=noop, during=noop))
    ch.add_transition(manual, auto, event="btn_mode")
    ch.add_transition(auto, manual, event="btn_mode")
    ch.add_transition(auto, auto, event="btn_up", guard=lambda d: True,
                      action=noop)
    return ch


def hierarchical_chart():
    ch = Chart("h")
    run = ch.add_state(State("run"))
    slow = run.add_substate(State("slow"))
    fast = run.add_substate(State("fast"))
    idle = ch.add_state(State("idle"))
    ch.add_transition(slow, fast, event="up")
    ch.add_transition(run, idle, event="stop")
    ch.add_transition(idle, run, event="start")
    return ch


class TestGeneratedStructure:
    def test_file_pair(self):
        files = generate_chart_code(keyboard_chart(), "panel")
        assert set(files) == {"panel_chart.h", "panel_chart.c"}

    def test_state_and_event_enums(self):
        hdr = generate_chart_code(keyboard_chart(), "panel")["panel_chart.h"]
        assert "panel_STATE_MANUAL" in hdr
        assert "panel_STATE_AUTO" in hdr
        assert "panel_EVENT_BTN_MODE" in hdr
        assert "panel_EVENT_BTN_UP" in hdr
        assert "panel_EVENT_NONE" in hdr

    def test_entry_points_declared(self):
        hdr = generate_chart_code(keyboard_chart(), "panel")["panel_chart.h"]
        for proto in ("panel_chart_init", "panel_chart_dispatch", "panel_chart_step"):
            assert proto in hdr

    def test_guards_and_actions_are_externs(self):
        hdr = generate_chart_code(keyboard_chart(), "panel")["panel_chart.h"]
        assert "extern int panel_guard_2(void);" in hdr
        assert "extern void panel_action_2(void);" in hdr
        # entry/during callbacks of the states
        assert "extern void panel_manual_entry(void);" in hdr
        assert "extern void panel_auto_during(void);" in hdr

    def test_dispatch_switch_covers_leaves(self):
        src = generate_chart_code(keyboard_chart(), "panel")["panel_chart.c"]
        assert "case panel_STATE_MANUAL:" in src
        assert "case panel_STATE_AUTO:" in src
        assert "panel_active = panel_STATE_AUTO;" in src

    def test_balanced_braces(self):
        files = generate_chart_code(keyboard_chart(), "panel")
        for name, src in files.items():
            assert src.count("{") == src.count("}"), name


class TestHierarchy:
    def test_composite_states_in_enum(self):
        hdr = generate_chart_code(hierarchical_chart(), "h")["h_chart.h"]
        for s in ("RUN", "SLOW", "FAST", "IDLE"):
            assert f"h_STATE_{s}" in hdr

    def test_composite_transition_reachable_from_leaves(self):
        # 'stop' is defined on the composite 'run'; both leaf cases must
        # test it (outer-first search materialised per leaf)
        src = generate_chart_code(hierarchical_chart(), "h")["h_chart.c"]
        slow_case = src.split("case h_STATE_SLOW:")[1].split("break;")[0]
        fast_case = src.split("case h_STATE_FAST:")[1].split("break;")[0]
        assert "h_EVENT_STOP" in slow_case
        assert "h_EVENT_STOP" in fast_case

    def test_reentry_targets_initial_leaf(self):
        src = generate_chart_code(hierarchical_chart(), "h")["h_chart.c"]
        idle_case = src.split("case h_STATE_IDLE:")[1].split("break;")[0]
        assert "h_active = h_STATE_SLOW;" in idle_case  # run's initial


class TestGeneratorIntegration:
    def test_chart_files_in_artifacts(self):
        from repro.codegen import CodeGenerator
        from repro.mcu import MC56F8367
        from repro.model import Model
        from repro.model.library import Constant, Terminator
        from repro.stateflow import ChartBlock

        m = Model("app")
        src = m.add(Constant("btn", value=0.0))
        cb = m.add(ChartBlock("panel", keyboard_chart(), inputs=["btn_mode"],
                              outputs=[], sample_time=1e-3,
                              edge_events=["btn_mode"]))
        m.connect(src, cb)
        art = CodeGenerator(m.compile(1e-3), MC56F8367, name="app").generate()
        assert "panel_chart.c" in art.files
        assert "panel_chart_step();" in art.files["app.c"]
