"""Tests for the rate-aware execution-cost split."""

import pytest

from repro.codegen import CodeGenerator
from repro.mcu import MC56F8367
from repro.model import Model
from repro.model.library import Constant, Gain, Terminator, UnitDelay


def multirate_cm(dt=1e-3):
    m = Model("mr")
    c = m.add(Constant("c"))
    fast = m.add(Gain("fast", gain=2.0))
    slow = m.add(UnitDelay("slow", sample_time=4 * dt))
    slower = m.add(UnitDelay("slower", sample_time=8 * dt))
    for blk in (fast, slow, slower):
        m.connect(c, blk)
        t = m.add(Terminator("t_" + blk.name))
        m.connect(blk, t)
    return m.compile(dt)


class TestRateCosts:
    def test_split_by_divisor(self):
        art = CodeGenerator(multirate_cm(), MC56F8367).generate()
        assert set(art.rate_costs) == {1, 4, 8}
        assert art.rate_costs[4] > 0 and art.rate_costs[8] > 0

    def test_split_sums_to_block_costs(self):
        art = CodeGenerator(multirate_cm(), MC56F8367).generate()
        assert sum(art.rate_costs.values()) == pytest.approx(
            sum(art.block_costs.values())
        )

    def test_deployed_tick_cost_varies_with_rate(self):
        """On the target, ticks where only base-rate blocks run must be
        measurably cheaper than full-rate ticks."""
        from repro.casestudy import ServoConfig
        from repro.core import PEERTTarget
        from repro.core.blocks import PEBlockMode
        from tests.integration.test_cascade_control import build_cascade_model

        m = build_cascade_model()
        app = PEERTTarget(m).build()
        app.deploy(PEBlockMode.HW)
        app.start()
        app.run_for(30.1e-3)
        recs = app.device.cpu.records_for(app.tick_vector)
        times = sorted(r.execution_time for r in recs)
        assert times[0] < times[-1] * 0.8  # fast ticks clearly cheaper
        # 1-in-10 ticks carry the slow-rate blocks
        slow_ticks = sum(1 for r in recs if r.execution_time > times[0] * 1.2)
        assert slow_ticks == pytest.approx(len(recs) / 10, abs=3)
