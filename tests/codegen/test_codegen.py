"""Tests for the code generator: templates, cost model, artifacts."""

import pytest

from repro.codegen import (
    CodeGenerator,
    CodegenError,
    block_cost_cycles,
    default_registry,
    step_cost_cycles,
)
from repro.mcu import MC56F8367, MCF5235
from repro.model import Model
from repro.model.library import (
    Constant,
    DataTypeConversion,
    Gain,
    Integrator,
    Saturation,
    Scope,
    Step,
    Sum,
    Terminator,
    UnitDelay,
    DiscreteIntegrator,
)
from repro.model.types import INT16


def controller_model(dt=1e-3, fixed_point=False):
    """A small discrete PI controller diagram."""
    m = Model("ctl")
    ref = m.add(Step("ref", final=1.0))
    err = m.add(Sum("err", signs="+-"))
    kp = m.add(Gain("kp", gain=2.0))
    ki = m.add(DiscreteIntegrator("ki", sample_time=dt, gain=10.0))
    u = m.add(Sum("u", signs="++"))
    sat = m.add(Saturation("sat", lower=-1.0, upper=1.0))
    fb = m.add(UnitDelay("fb", sample_time=dt))
    sc = m.add(Scope("sc"))
    m.connect(ref, err, 0, 0)
    m.connect(fb, err, 0, 1)
    m.connect(err, kp)
    m.connect(err, ki)
    m.connect(kp, u, 0, 0)
    m.connect(ki, u, 0, 1)
    m.connect(u, sat)
    m.connect(sat, fb)
    m.connect(sat, sc)
    if fixed_point:
        # re-type one path through a conversion block
        m.remove("sc")
        conv = m.add(DataTypeConversion("conv", INT16))
        sc = m.add(Scope("sc"))
        m.connect(sat, conv)
        m.connect(conv, sc)
    return m


class TestTemplates:
    def test_every_library_block_has_template(self):
        import repro.model.library as lib

        reg = default_registry()
        for name in lib.__all__:
            cls = getattr(lib, name)
            if not isinstance(cls, type):
                continue
            if name in ("Subsystem",):  # virtual, flattened away
                continue
            reg.lookup(cls)  # must not raise

    def test_unknown_block_rejected(self):
        from repro.model.block import Block

        class Exotic(Block):
            pass

        with pytest.raises(CodegenError, match="no code template"):
            default_registry().lookup(Exotic)

    def test_registry_copy_is_independent(self):
        from repro.codegen.templates import BlockTemplate
        from repro.model.block import Block

        class Custom(Block):
            pass

        reg = default_registry().copy()
        reg.register(Custom, BlockTemplate(lambda b, n: [], lambda b: {}))
        reg.lookup(Custom)
        with pytest.raises(CodegenError):
            default_registry().lookup(Custom)


class TestCostModel:
    def test_float_costs_dominate_on_nofpu(self):
        g = Gain("g", gain=2.0)
        cost_float = block_cost_cycles(g, MC56F8367)
        conv = DataTypeConversion("c", INT16)
        assert cost_float > 100  # emulated double multiply
        assert block_cost_cycles(conv, MC56F8367) < 20

    def test_step_cost_sums_blocks(self):
        cm = controller_model().compile(1e-3)
        total = step_cost_cycles(cm, MC56F8367)
        assert total > 0
        # all block costs are included
        gen = CodeGenerator(cm, MC56F8367).generate()
        assert total == pytest.approx(
            sum(gen.block_costs.values()) + 2 * MC56F8367.costs.call
        )

    def test_faster_chip_fewer_cycles_for_float(self):
        cm = controller_model().compile(1e-3)
        c67 = step_cost_cycles(cm, MC56F8367)
        c5235 = step_cost_cycles(cm, MCF5235)
        assert c5235 < c67  # 32-bit core emulates doubles cheaper


class TestGeneratedArtifacts:
    def test_files_present(self):
        cm = controller_model().compile(1e-3)
        art = CodeGenerator(cm, MC56F8367, name="ctl").generate()
        assert set(art.files) >= {"ctl.c", "ctl.h", "main.c", "Makefile"}

    def test_step_function_order_matches_execution_order(self):
        cm = controller_model().compile(1e-3)
        art = CodeGenerator(cm, MC56F8367, name="ctl").generate()
        src = art.files["ctl.c"]
        positions = []
        for qname in cm.order:
            marker = f"'{qname}'"
            if marker in src:
                positions.append(src.index(marker))
        assert positions == sorted(positions)

    def test_header_declares_signals_and_state(self):
        cm = controller_model().compile(1e-3)
        art = CodeGenerator(cm, MC56F8367, name="ctl").generate()
        hdr = art.files["ctl.h"]
        assert "ctl_B_T" in hdr and "ctl_DW_T" in hdr
        assert "fb_x" in hdr  # UnitDelay state
        assert "void ctl_step(void);" in hdr

    def test_fixed_point_types_in_header(self):
        cm = controller_model(fixed_point=True).compile(1e-3)
        art = CodeGenerator(cm, MC56F8367, name="ctl").generate()
        assert "int16_t" in art.files["ctl.h"]

    def test_rate_guard_for_slower_blocks(self):
        m = Model("multi")
        c = m.add(Constant("c"))
        d = m.add(UnitDelay("slow", sample_time=4e-3))
        t = m.add(Terminator("t"))
        m.connect(c, d)
        m.connect(d, t)
        art = CodeGenerator(m.compile(1e-3), MC56F8367).generate()
        assert "(rt_tick % 4U) == 0U" in art.files["model.c"]

    def test_continuous_block_rejected(self):
        m = Model("bad")
        c = m.add(Constant("c"))
        i = m.add(Integrator("i"))
        t = m.add(Terminator("t"))
        m.connect(c, i)
        m.connect(i, t)
        with pytest.raises(CodegenError, match="continuous"):
            CodeGenerator(m.compile(1e-3), MC56F8367).generate()

    def test_memory_estimates_positive_and_bounded(self):
        cm = controller_model().compile(1e-3)
        art = CodeGenerator(cm, MC56F8367).generate()
        assert 0 < art.ram_bytes < MC56F8367.ram_bytes
        assert 0 < art.flash_bytes < MC56F8367.flash_bytes

    def test_ram_overflow_detected(self):
        # a tiny chip cannot hold hundreds of double states
        m = Model("big")
        c = m.add(Constant("c"))
        for k in range(300):
            d = m.add(UnitDelay(f"d{k}", sample_time=1e-3))
            m.connect(c, d)
            t = m.add(Terminator(f"t{k}"))
            m.connect(d, t)
        from repro.mcu import MC56F8013

        with pytest.raises(CodegenError, match="RAM"):
            CodeGenerator(m.compile(1e-3), MC56F8013).generate()

    def test_loc_scales_with_model_size(self):
        small = CodeGenerator(controller_model().compile(1e-3), MC56F8367).generate()
        m = controller_model()
        for k in range(20):
            g = m.add(Gain(f"extra{k}", gain=1.0))
            m.connect(m.block("sat"), g)
            t = m.add(Terminator(f"xt{k}"))
            m.connect(g, t)
        big = CodeGenerator(m.compile(1e-3), MC56F8367).generate()
        assert big.loc > small.loc


class TestVirtualExecutable:
    def test_duplicate_vector_rejected(self):
        from repro.codegen import ISRTask, VirtualExecutable

        vx = VirtualExecutable("app")
        vx.add_task(ISRTask("tick", priority=1, cycles=100))
        with pytest.raises(ValueError):
            vx.add_task(ISRTask("tick", priority=2, cycles=50))

    def test_load_registers_vectors_and_runs(self):
        from repro.codegen import ISRTask, VirtualExecutable
        from repro.mcu import MCUDevice

        dev = MCUDevice(MC56F8367)
        ran = []
        vx = VirtualExecutable("app")
        vx.add_task(ISRTask("tick", priority=1, cycles=500, action=lambda: ran.append(1)))
        vx.load(dev)
        dev.intc.request("tick")
        dev.run_for(1e-3)
        assert ran == [1]
        assert len(vx.records("tick")) == 1

    def test_start_requires_load(self):
        from repro.codegen import VirtualExecutable

        with pytest.raises(RuntimeError):
            VirtualExecutable("app").start()
