"""Compiled-model cache: content hashing and lease semantics.

The content hash must be a pure function of diagram *content* — stable
across processes (no ``id()``/``hash()``/``repr`` leakage), insensitive
to block insertion order, sensitive to every parameter and to
function-call wiring order.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.model import Model
from repro.model.block import Block
from repro.model.library import Constant, Gain, Scope
from repro.service import ModelCache, canonical_model_doc, model_content_hash

from .helpers import build_loop_model

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _chain(order: str) -> Model:
    m = Model("chain")
    blocks = {
        "src": Constant("src", value=2.5),
        "g": Gain("g", gain=3.0),
        "y": Scope("y"),
    }
    for name in order:
        m.add(blocks[{"s": "src", "g": "g", "y": "y"}[name]])
    m.connect("src", "g")
    m.connect("g", "y")
    return m


class TestContentHash:
    def test_stable_across_processes(self):
        """The pin the service cache depends on: a child interpreter with a
        different PYTHONHASHSEED must derive the identical digest."""
        parent = model_content_hash(build_loop_model(), dt=1e-3)
        code = (
            "import sys; sys.path.insert(0, sys.argv[1]); "
            "sys.path.insert(0, sys.argv[2]); "
            "from tests.service.helpers import build_loop_model; "
            "from repro.service import model_content_hash; "
            "print(model_content_hash(build_loop_model(), dt=1e-3))"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # perturb str hashing on purpose
        out = subprocess.run(
            [sys.executable, "-c", code, SRC,
             os.path.join(SRC, "..")],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == parent

    def test_servo_hash_stable_across_processes(self):
        from repro.casestudy import ServoConfig, build_servo_model

        sm = build_servo_model(ServoConfig(setpoint=100.0))
        parent = model_content_hash(sm.model, dt=1e-4)
        code = (
            "import sys; sys.path.insert(0, sys.argv[1]); "
            "from repro.casestudy import ServoConfig, build_servo_model; "
            "from repro.service import model_content_hash; "
            "sm = build_servo_model(ServoConfig(setpoint=100.0)); "
            "print(model_content_hash(sm.model, dt=1e-4))"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "999"
        out = subprocess.run(
            [sys.executable, "-c", code, SRC],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == parent

    def test_insensitive_to_block_insertion_order(self):
        assert model_content_hash(_chain("sgy")) == model_content_hash(_chain("ysg"))

    def test_sensitive_to_parameters(self):
        a = build_loop_model(gain=2.0)
        b = build_loop_model(gain=2.0000001)
        assert model_content_hash(a) != model_content_hash(b)

    def test_sensitive_to_dt_and_solver(self):
        m = build_loop_model()
        h = model_content_hash
        assert len({h(m), h(m, dt=1e-3), h(m, dt=1e-4), h(m, dt=1e-3, solver="euler")}) == 4

    def test_repeatable_within_process(self):
        m = build_loop_model()
        assert model_content_hash(m) == model_content_hash(m)

    def test_canonical_doc_sorts_data_but_keeps_event_order(self):
        doc = {
            "format": 1,
            "name": "m",
            "blocks": [
                {"type": "Gain", "name": "b", "params": {"gain": 1.0}},
                {"type": "Gain", "name": "a", "params": {"gain": 1.0}},
            ],
            "connections": [["b", 0, "a", 0], ["a", 0, "b", 0]],
            "events": [["t", 0, "isr2"], ["t", 0, "isr1"]],
        }
        canon = canonical_model_doc(doc)
        assert [n["name"] for n in canon["blocks"]] == ["a", "b"]
        assert canon["connections"] == [["a", 0, "b", 0], ["b", 0, "a", 0]]
        # function-call dispatch order is semantic: must NOT be sorted
        assert canon["events"] == [["t", 0, "isr2"], ["t", 0, "isr1"]]


class _Opaque(Block):
    """Unregistered block type — cannot be content-addressed."""

    n_in = 0
    n_out = 1

    def outputs(self, t, u, ctx):
        return [1.0]


class TestModelCache:
    def test_hit_miss_counters(self):
        cache = ModelCache(capacity=4)
        m = build_loop_model()
        with cache.lease(m, 1e-3) as (cm1, hit1):
            pass
        with cache.lease(m, 1e-3) as (cm2, hit2):
            pass
        assert (hit1, hit2) == (False, True)
        assert cm1 is cm2
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["hit_rate"] == 0.5

    def test_private_rebuild_not_aliased(self):
        """Cached blocks must not be the caller's block instances."""
        cache = ModelCache()
        m = build_loop_model()
        with cache.lease(m, 1e-3) as (cm, _):
            assert all(b is not m.blocks.get(q) for q, b in cm.nodes.items())

    def test_eviction_lru(self):
        cache = ModelCache(capacity=2)
        models = [build_loop_model(gain=g) for g in (1.0, 2.0, 3.0)]
        for m in models:
            with cache.lease(m, 1e-3):
                pass
        assert len(cache) == 2 and cache.stats()["evictions"] == 1
        with cache.lease(models[0], 1e-3) as (_, hit):  # evicted: rebuilt
            assert not hit

    def test_unserialisable_model_bypasses(self):
        cache = ModelCache()
        m = Model("opaque")
        m.add(_Opaque("x"))
        m.add(Scope("y"))
        m.connect("x", "y")
        with cache.lease(m, 1e-3) as (cm, hit):
            assert not hit and cm.n_signals > 0
        assert len(cache) == 0
        assert cache.stats()["bypasses"] == 1

    def test_lease_serializes_identical_models(self):
        """One compiled model must never run in two simulators at once."""
        cache = ModelCache()
        m = build_loop_model()
        active = 0
        overlap = []
        lock = threading.Lock()

        def use():
            nonlocal active
            with cache.lease(m, 1e-3):
                with lock:
                    active += 1
                    overlap.append(active)
                time.sleep(0.02)
                with lock:
                    active -= 1

        threads = [threading.Thread(target=use) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert max(overlap) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ModelCache(capacity=0)
