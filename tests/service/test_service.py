"""SimServe end-to-end: determinism, caching, backpressure, robustness."""

import time

import numpy as np
import pytest

from repro.faults import FaultCampaign, FaultPlan, LineDropout
from repro.model.engine import simulate
from repro.service import (
    CampaignCellRequest,
    JobFailed,
    JobPriority,
    JobState,
    MILRequest,
    PILRequest,
    QueueFull,
    SimServe,
    SweepRequest,
)
from repro.service.__main__ import servo_sweep_model

from .helpers import build_loop_model, crashing_builder, make_fake_pil

BANDWIDTHS = (4.0, 6.0, 8.0)
DT = 1e-4
T_FINAL = 0.02


def _direct_results():
    return [
        simulate(servo_sweep_model(bandwidth_hz=b), T_FINAL, dt=DT, use_kernels=True)
        for b in BANDWIDTHS
    ]


def _long_job(t_final=10.0):
    return MILRequest(model=build_loop_model(), dt=1e-4, t_final=t_final)


def _quick_job(**kwargs):
    return MILRequest(model=build_loop_model(**kwargs), dt=1e-3, t_final=0.01)


def _wait_running(handle, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.state is JobState.RUNNING:
            return
        time.sleep(0.002)
    raise AssertionError(f"job never started: {handle.state}")


class TestDeterminism:
    """The acceptance pin: service answers == direct Simulator answers,
    bit for bit, at any worker count."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sweep_matches_direct_runs(self, workers):
        direct = _direct_results()
        with SimServe(workers=workers) as svc:
            sweep = svc.submit_sweep(
                SweepRequest(
                    builder=servo_sweep_model,
                    grid=[{"bandwidth_hz": b} for b in BANDWIDTHS],
                    dt=DT,
                    t_final=T_FINAL,
                )
            )
            served = sweep.results(timeout=60.0)
        assert len(served) == len(direct)
        for ref, got in zip(direct, served):
            assert np.array_equal(ref.t, got.t)
            assert set(ref.names) == set(got.names)
            for name in ref.names:
                assert np.array_equal(ref[name], got[name]), name

    def test_repeat_submission_bit_identical_despite_cache(self):
        """A cache hit must change latency only, never the numbers."""
        req = lambda: MILRequest(
            builder=servo_sweep_model,
            builder_kwargs={"bandwidth_hz": 6.0},
            dt=DT,
            t_final=T_FINAL,
        )
        with SimServe(workers=1) as svc:
            first = svc.submit(req()).result(timeout=60.0)
            second_h = svc.submit(req())
            second = second_h.result(timeout=60.0)
            assert second_h.record().cache_hit
        assert np.array_equal(first.t, second.t)
        for name in first.names:
            assert np.array_equal(first[name], second[name])


class TestBatchSweep:
    """execution="batch" runs the sweep as ONE vector job; its per-lane
    results must be bit-identical to the fan-out path's children."""

    GAINS = (0.5, 1.5, 3.0)

    def _fanout(self):
        return SweepRequest(
            builder=build_loop_model,
            grid=[{"gain": g} for g in self.GAINS],
            dt=1e-3,
            t_final=0.05,
        )

    def _batched(self):
        return SweepRequest(
            builder=build_loop_model,
            execution="batch",
            scenarios=[{"ctrl": {"gain": g}} for g in self.GAINS],
            dt=1e-3,
            t_final=0.05,
        )

    def test_batch_matches_fanout_bit_identical(self):
        with SimServe(workers=2) as svc:
            fan = svc.submit_sweep(self._fanout())
            batch = svc.submit_sweep(self._batched())
            fan_results = fan.results(timeout=60.0)
            batch_results = batch.results(timeout=60.0)
        assert len(batch) == len(self.GAINS)
        assert len(batch_results) == len(fan_results)
        for ref, got in zip(fan_results, batch_results):
            assert np.array_equal(ref.t, got.t)
            assert set(ref.names) == set(got.names)
            for name in ref.names:
                assert np.array_equal(ref[name], got[name]), name

    def test_batch_is_one_job_with_lane_summary(self):
        with SimServe(workers=1) as svc:
            handle = svc.submit_sweep(self._batched())
            rec = handle.handle.record(60.0)
            snap = svc.metrics_snapshot()
        assert rec.state is JobState.DONE
        assert rec.summary["lanes"] == len(self.GAINS)
        assert rec.summary["lanes_diverged"] == 0
        assert len(rec.summary["finals"]["y"]) == len(self.GAINS)
        assert snap["jobs"]["completed"] == 1  # one job, not one per lane

    def test_batch_requires_scenarios(self):
        with pytest.raises(ValueError, match="scenarios"):
            SweepRequest(
                builder=build_loop_model, execution="batch", dt=1e-3, t_final=0.05
            )


class TestCache:
    def test_second_identical_job_hits_and_is_observable(self):
        model = build_loop_model()
        with SimServe(workers=1) as svc:
            a = svc.submit(MILRequest(model=model, dt=1e-3, t_final=0.01))
            a.wait(30.0)
            b = svc.submit(MILRequest(model=model, dt=1e-3, t_final=0.01))
            b.wait(30.0)
            assert not a.record().cache_hit
            assert b.record().cache_hit
            snap = svc.metrics_snapshot()
        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 1
        assert snap["cache"]["hit_rate"] == 0.5

    def test_crashing_job_does_not_poison_cache_or_pool(self):
        with SimServe(workers=1) as svc:
            bad = svc.submit(MILRequest(builder=crashing_builder, dt=1e-3, t_final=0.01))
            bad.wait(30.0)
            rec = bad.record()
            assert rec.state is JobState.FAILED
            assert "builder exploded" in rec.error
            with pytest.raises(JobFailed):
                bad.result()
            # the worker survived and the cache is clean
            good = svc.submit(_quick_job())
            assert good.record(30.0).state is JobState.DONE
            snap = svc.metrics_snapshot()
        assert snap["jobs"]["failed"] == 1
        assert snap["jobs"]["completed"] == 1
        assert snap["cache"]["entries"] == 1  # only the good model


class TestBackpressure:
    def test_queue_full_is_explicit_reject_not_hang(self):
        with SimServe(workers=1, queue_depth=1, autostart=True) as svc:
            running = svc.submit(_long_job())
            _wait_running(running)
            pending = svc.submit(_quick_job())  # fills the queue
            t0 = time.monotonic()
            with pytest.raises(QueueFull):
                svc.submit(_quick_job())
            assert time.monotonic() - t0 < 1.0  # immediate, not a hang
            assert svc.metrics_snapshot()["jobs"]["rejected"] == 1
            pending.cancel()
            running.cancel()
            assert running.wait(30.0)

    def test_half_admitted_sweep_rolls_back(self):
        with SimServe(workers=1, queue_depth=2) as svc:
            running = svc.submit(_long_job())
            _wait_running(running)
            with pytest.raises(QueueFull):
                svc.submit_sweep(
                    SweepRequest(
                        builder=servo_sweep_model,
                        grid=[{"bandwidth_hz": float(b)} for b in range(4, 10)],
                        dt=DT,
                        t_final=T_FINAL,
                    )
                )
            running.cancel()
            assert running.wait(30.0)
            svc.shutdown(cancel_pending=True)
            # rolled-back children never execute
            assert svc.metrics_snapshot()["jobs"]["completed"] == 0


class TestCancellation:
    def test_cancel_running_job_frees_worker(self):
        with SimServe(workers=1) as svc:
            running = svc.submit(_long_job())
            _wait_running(running)
            assert running.cancel()
            assert running.wait(30.0)
            assert running.state is JobState.CANCELLED
            # worker is free again: a follow-up job completes promptly
            nxt = svc.submit(_quick_job())
            assert nxt.record(30.0).state is JobState.DONE

    def test_cancel_pending_job_never_runs(self):
        with SimServe(workers=1) as svc:
            running = svc.submit(_long_job())
            _wait_running(running)
            queued = svc.submit(_quick_job())
            assert queued.cancel()
            running.cancel()
            assert queued.wait(30.0)
            assert queued.state is JobState.CANCELLED
            assert queued.record().exec_s is None  # never started

    def test_deadline_shed_end_to_end(self):
        with SimServe(workers=1) as svc:
            running = svc.submit(_long_job())
            _wait_running(running)
            doomed = svc.submit(_quick_job(), deadline_s=0.02)
            time.sleep(0.1)  # deadline lapses while the worker is busy
            running.cancel()
            assert doomed.wait(30.0)
            assert doomed.state is JobState.EXPIRED
            with pytest.raises(JobFailed):
                doomed.result()
            assert svc.metrics_snapshot()["jobs"]["shed"] == 1


class TestPriorities:
    def test_high_priority_sweep_overtakes_low(self):
        with SimServe(workers=1) as svc:
            blocker = svc.submit(_long_job())
            _wait_running(blocker)
            low = svc.submit_sweep(
                SweepRequest(
                    builder=servo_sweep_model,
                    grid=[{"bandwidth_hz": b} for b in BANDWIDTHS],
                    dt=DT,
                    t_final=0.005,
                ),
                priority=JobPriority.LOW,
            )
            high = svc.submit_sweep(
                SweepRequest(
                    builder=servo_sweep_model,
                    grid=[{"bandwidth_hz": b} for b in BANDWIDTHS],
                    dt=DT,
                    t_final=0.005,
                ),
                priority=JobPriority.HIGH,
            )
            blocker.cancel()
            assert high.wait(60.0) and low.wait(60.0)
            last_high = max(h._job.finished_at for h in high.handles)
            first_low = min(h._job.finished_at for h in low.handles)
        assert last_high <= first_low


class TestOtherKinds:
    def test_pil_request(self):
        with SimServe(workers=1) as svc:
            h = svc.submit(
                PILRequest(
                    make_pil=make_fake_pil, t_final=0.5, make_kwargs={"reliable": True}
                )
            )
            rec = h.record(30.0)
        assert rec.state is JobState.DONE
        assert rec.summary["steps"] == 12
        assert rec.summary["retransmits"] == 1
        assert rec.result.reliable is True

    def test_campaign_cell_request(self):
        campaign = FaultCampaign(
            make_pil=make_fake_pil,
            plan=FaultPlan([LineDropout(start=0.1, duration=0.05)], seed=3),
            t_final=0.5,
            reference=99.0,
        )
        with SimServe(workers=1) as svc:
            h = svc.submit(
                CampaignCellRequest(campaign=campaign, intensity=0.5, reliable=True)
            )
            rec = h.record(30.0)
        assert rec.state is JobState.DONE
        assert rec.summary["intensity"] == 0.5 and rec.summary["reliable"] is True
        assert rec.result is None  # campaign cells keep summaries only


class TestStore:
    def test_bounded_store_evicts_oldest(self):
        with SimServe(workers=1, store_capacity=2) as svc:
            handles = [svc.submit(_quick_job(gain=float(g))) for g in (1, 2, 3)]
            assert svc.wait_all(handles, timeout=60.0)
            # drain is ordered: last two records survive, the first is gone
            assert handles[2].record().state is JobState.DONE
            with pytest.raises(KeyError):
                handles[0].record()


class TestProcessBackend:
    def test_smoke_and_per_process_cache(self):
        req = MILRequest(
            builder=servo_sweep_model,
            builder_kwargs={"bandwidth_hz": 6.0},
            dt=DT,
            t_final=0.01,
        )
        direct = simulate(
            servo_sweep_model(bandwidth_hz=6.0), 0.01, dt=DT, use_kernels=True
        )
        with SimServe(workers=1, backend="process") as svc:
            first = svc.submit(req)
            assert first.record(120.0).state is JobState.DONE
            second = svc.submit(req)
            rec = second.record(120.0)
        assert rec.state is JobState.DONE
        assert rec.cache_hit  # the worker process kept its own cache
        got = rec.result
        assert np.array_equal(direct.t, got.t)
        for name in direct.names:
            assert np.array_equal(direct[name], got[name])

    def test_validation_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            SimServe(workers=1, backend="fiber", autostart=False)
