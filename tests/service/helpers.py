"""Module-level builders shared by the SimServe tests.

These must live in an importable module (not a test body) so requests
carrying them stay picklable for the process backend — the same contract
:meth:`repro.faults.FaultCampaign.run` imposes on ``make_pil``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.model import Model, SimulationResult
from repro.model.library import Constant, Gain, Integrator, Scope, Sum


def build_loop_model(gain: float = 2.0, setpoint: float = 1.0) -> Model:
    """A tiny closed loop: setpoint -> P gain -> integrator plant -> scope."""
    m = Model("loop")
    ref = m.add(Constant("ref", value=setpoint))
    err = m.add(Sum("err", signs="+-"))
    ctrl = m.add(Gain("ctrl", gain=gain))
    plant = m.add(Integrator("plant"))
    scope = m.add(Scope("y", label="y"))
    m.connect(ref, err, 0, 0)
    m.connect(plant, err, 0, 1)
    m.connect(err, ctrl)
    m.connect(ctrl, plant)
    m.connect(plant, scope)
    return m


def crashing_builder(**_kwargs) -> Model:
    raise RuntimeError("builder exploded")


def hard_crash_builder(**_kwargs) -> Model:
    """Kills the worker *process* outright (no exception, no cleanup) —
    the BrokenProcessPool path, not the job-exception path."""
    import os

    os._exit(13)


def make_fake_pil(reliable: bool, n: int = 12, crash: bool = False):
    """A stub PIL rig: instant 'run', real-shaped result object."""
    return _FakePil(reliable, n=n, crash=crash)


class _FakePil:
    def __init__(self, reliable: bool, n: int = 12, crash: bool = False):
        self.reliable = reliable
        self.n = n
        self.crash = crash
        self.fault_plan = None

    def run(self, t_final: float):
        if self.crash:
            raise RuntimeError("rig crashed mid-run")
        t = np.linspace(0.0, t_final, self.n)
        y = np.full(self.n, 0.0 if not self.reliable else 99.0)
        return SimpleNamespace(
            result=SimulationResult(t, {"speed": y}),
            reliable=self.reliable,
            steps=self.n,
            crc_errors=0,
            retransmits=1,
            arq_timeouts=0,
            send_failures=0,
            duplicates=0,
            recoveries=0,
            watchdog_resets=0,
            max_consecutive_loss=self.n if not self.reliable else 0,
            safe_state_steps=self.n if not self.reliable else 0,
            mean_data_latency=0.0,
            max_data_latency=0.0,
        )
