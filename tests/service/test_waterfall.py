"""Per-job latency waterfalls + flight-recorder integration.

The acceptance path for the ops plane: every executed job carries phase
marks (queue → coalesce → cache → run → demux → store), the metrics
snapshot aggregates them into per-phase percentiles, and a forced
deadline shed or worker crash leaves a flight dump from which the
failing job's waterfall is reconstructed offline.
"""

from __future__ import annotations

import os
import tempfile
import unittest

from repro.obs.flight import FlightRecorder, load_flight_dump
from repro.obs.report import build_report, load_ops_input, render_html
from repro.service import (
    CoalesceConfig,
    JobPriority,
    JobState,
    MILRequest,
    SimServe,
    SweepRequest,
)

from .helpers import build_loop_model, crashing_builder, hard_crash_builder

DT = 1e-3
T_FINAL = 0.05


class TestPhaseMarks(unittest.TestCase):
    def test_serial_mil_job_carries_worker_phases(self):
        with SimServe(workers=1, flight=False) as svc:
            h = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                      t_final=T_FINAL))
            h.wait(30.0)
            phases = h.phases
        for key in ("queue", "cache", "run", "store"):
            self.assertIn(key, phases)
            self.assertGreaterEqual(phases[key], 0.0)
        # phases also land on the archived record
        rec = h.record()
        self.assertEqual(set(rec.phase_s), set(phases))

    def test_process_backend_phases_cross_the_pickle_boundary(self):
        with SimServe(workers=1, backend="process", flight=False) as svc:
            h = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                      t_final=T_FINAL))
            h.wait(60.0)
            phases = h.phases
        self.assertEqual(h.state, JobState.DONE)
        for key in ("queue", "cache", "run", "store"):
            self.assertIn(key, phases)

    def test_coalesced_jobs_carry_coalesce_and_demux(self):
        cfg = CoalesceConfig(window_s=0.05, max_batch=4)
        with SimServe(workers=1, coalesce=cfg, flight=False) as svc:
            req = lambda: MILRequest(builder=build_loop_model, dt=DT,
                                     t_final=T_FINAL)
            handles = [svc.submit(req()) for _ in range(3)]
            for h in handles:
                h.wait(30.0)
            coalesced = [h for h in handles
                         if "coalesce" in h.phases and "demux" in h.phases]
        # at least the members of a formed batch carry the batch phases
        self.assertGreater(len(coalesced), 0)
        for h in coalesced:
            for key in ("queue", "coalesce", "cache", "run", "demux", "store"):
                self.assertIn(key, h.phases)

    def test_batch_sweep_carries_phases(self):
        req = SweepRequest(
            builder=build_loop_model,
            execution="batch",
            scenarios=[{"ctrl": {"gain": g}} for g in (1.0, 2.0)],
            dt=DT, t_final=T_FINAL,
        )
        with SimServe(workers=1, flight=False) as svc:
            sh = svc.submit_sweep(req)
            sh.wait(30.0)
            phases = sh.handle.phases
        for key in ("queue", "cache", "run", "store"):
            self.assertIn(key, phases)

    def test_waterfall_disabled_leaves_no_marks(self):
        with SimServe(workers=1, flight=False, waterfall=False) as svc:
            h = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                      t_final=T_FINAL))
            h.wait(30.0)
            self.assertEqual(h.phases, {})
            snap = svc.metrics_snapshot()
        self.assertEqual(snap["waterfall"], {})

    def test_snapshot_waterfall_percentiles(self):
        with SimServe(workers=2, flight=False) as svc:
            handles = [svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                             t_final=T_FINAL))
                       for _ in range(4)]
            self.assertTrue(svc.wait_all(handles, timeout=60.0))
            snap = svc.metrics_snapshot()
        wf = snap["waterfall"]
        for key in ("queue", "cache", "run", "store"):
            self.assertIn(key, wf)
            row = wf[key]
            self.assertEqual(row["count"], 4)
            for stat in ("mean", "p50", "p95", "p99", "max"):
                self.assertIn(stat, row)
            self.assertLessEqual(row["p50"], row["max"] + 1e-12)


class TestFlightIntegration(unittest.TestCase):
    def test_forced_shed_dumps_waterfall(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp)
            with SimServe(workers=1, flight=fr) as svc:
                ok = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                           t_final=T_FINAL))
                shed = svc.submit(
                    MILRequest(builder=build_loop_model, dt=DT, t_final=T_FINAL),
                    priority=JobPriority.LOW, deadline_s=1e-6,
                )
                ok.wait(30.0)
                shed.wait(30.0)
                self.assertEqual(shed.state, JobState.EXPIRED)
            self.assertEqual(fr.trigger_counts.get("deadline_shed"), 1)
            self.assertEqual(len(fr.dumps), 1)
            events = load_flight_dump(fr.dumps[0])
            finishes = {e["args"]["job"]: e for e in events
                        if e["name"] == "job.finish"}
            shed_ev = finishes[shed.job_id]
            self.assertEqual(shed_ev["args"]["state"], "expired")
            # a shed job's whole life was queue time — reconstructable
            self.assertIn("queue", shed_ev["args"]["phases"])
            ok_ev = finishes[ok.job_id]
            for key in ("queue", "cache", "run", "store"):
                self.assertIn(key, ok_ev["args"]["phases"])
            # the dump alone drives the ops report
            report = build_report(load_ops_input(fr.dumps[0]))
            self.assertEqual(report["jobs"]["shed"], 1)
            self.assertEqual(report["triggers"], {"deadline_shed": 1})
            phases = {row["phase"] for row in report["phases"]}
            self.assertIn("run", phases)
            html = render_html(report)
            self.assertIn("waterfall", html)

    def test_job_exception_triggers_dump(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp)
            with SimServe(workers=1, flight=fr) as svc:
                bad = svc.submit(MILRequest(builder=crashing_builder, dt=DT,
                                            t_final=T_FINAL))
                bad.wait(30.0)
                self.assertEqual(bad.state, JobState.FAILED)
            self.assertEqual(fr.trigger_counts.get("job_exception"), 1)
            events = load_flight_dump(fr.dumps[0])
            finish = [e for e in events if e["name"] == "job.finish"][0]
            self.assertIn("builder exploded", finish["args"]["error"])

    def test_worker_crash_triggers_dump(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp)
            with SimServe(workers=1, backend="process", flight=fr) as svc:
                doomed = svc.submit(MILRequest(builder=hard_crash_builder,
                                               dt=DT, t_final=T_FINAL))
                doomed.wait(120.0)
                self.assertEqual(doomed.state, JobState.FAILED)
                self.assertEqual(svc.pool.crash_count, 1)
                # pool was rebuilt: the service still serves
                again = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                              t_final=T_FINAL))
                again.wait(120.0)
                self.assertEqual(again.state, JobState.DONE)
            self.assertEqual(fr.trigger_counts.get("worker_crash"), 1)
            names = [os.path.basename(p) for p in fr.dumps]
            self.assertTrue(any("worker_crash" in n for n in names))
            report = build_report(load_ops_input(fr.dumps[0]))
            self.assertEqual(report["triggers"].get("worker_crash"), 1)
            self.assertEqual(report["jobs"]["failed"], 1)

    def test_flight_disabled_records_nothing(self):
        with SimServe(workers=1, flight=False) as svc:
            h = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                      t_final=T_FINAL))
            h.wait(30.0)
            self.assertEqual(len(svc.flight), 0)
            self.assertFalse(svc.metrics_snapshot()["flight"]["enabled"])

    def test_statusz_payload_carries_phases(self):
        with SimServe(workers=1, flight=False) as svc:
            h = svc.submit(MILRequest(builder=build_loop_model, dt=DT,
                                      t_final=T_FINAL))
            h.wait(30.0)
            status = svc.status()
        entry = [j for j in status["jobs"] if j["job"] == h.job_id][0]
        self.assertEqual(entry["state"], "done")
        self.assertIn("run", entry["phases"])
        self.assertIn("waterfall", status["metrics"])

    def test_health_payload(self):
        svc = SimServe(workers=2, flight=False)
        try:
            health = svc.health()
            self.assertTrue(health["ok"])
            self.assertEqual(health["pool"]["workers"], 2)
        finally:
            svc.shutdown()
        self.assertFalse(svc.health()["ok"])


if __name__ == "__main__":
    unittest.main()
