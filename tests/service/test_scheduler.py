"""Scheduler unit tests: ordering, admission control, shedding."""

import pytest

from repro.service import (
    JobPriority,
    JobState,
    MILRequest,
    QueueFull,
    Scheduler,
    ServiceClosed,
)
from repro.service.jobs import Job

from .helpers import build_loop_model


def _job(priority=JobPriority.NORMAL, deadline_s=None) -> Job:
    req = MILRequest(model=build_loop_model(), dt=1e-3, t_final=0.01)
    return Job(request=req, priority=priority, deadline_s=deadline_s)


class TestOrdering:
    def test_priority_order(self):
        s = Scheduler()
        low = _job(JobPriority.LOW)
        high = _job(JobPriority.HIGH)
        normal = _job(JobPriority.NORMAL)
        for j in (low, normal, high):
            s.submit(j)
        assert s.next_job(0.1) is high
        assert s.next_job(0.1) is normal
        assert s.next_job(0.1) is low

    def test_fifo_within_priority(self):
        s = Scheduler()
        jobs = [_job() for _ in range(5)]
        for j in jobs:
            s.submit(j)
        assert [s.next_job(0.1) for _ in jobs] == jobs


class TestAdmission:
    def test_queue_full_is_explicit(self):
        s = Scheduler(queue_depth=2)
        s.submit(_job())
        s.submit(_job())
        with pytest.raises(QueueFull) as ei:
            s.submit(_job())
        assert ei.value.depth == 2 and ei.value.limit == 2
        assert s.depth == 2

    def test_cancelled_pending_jobs_free_admission_slots(self):
        s = Scheduler(queue_depth=2)
        a, b = _job(), _job()
        s.submit(a)
        s.submit(b)
        a.cancel_event.set()
        c = _job()
        s.submit(c)  # a's slot is reclaimed, not a QueueFull
        # lazy consumption: the dead job is finished at dispatch time
        assert s.next_job(0.1) is b
        assert a.state is JobState.CANCELLED and a.done_event.is_set()
        assert s.next_job(0.1) is c

    def test_closed_scheduler_rejects(self):
        s = Scheduler()
        s.close()
        with pytest.raises(ServiceClosed):
            s.submit(_job())


class TestShedding:
    def test_expired_job_is_shed_not_run(self):
        import time

        shed = []
        s = Scheduler(on_shed=shed.append)
        j = _job(deadline_s=0.001)
        s.submit(j)
        time.sleep(0.01)  # let the deadline lapse before dispatch
        assert s.next_job(0.05) is None
        assert j.state is JobState.EXPIRED
        assert shed == [j]
        assert j.done_event.is_set()

    def test_cancelled_job_consumed_with_callback(self):
        cancelled = []
        s = Scheduler(on_cancel=cancelled.append)
        j = _job()
        s.submit(j)
        j.cancel_event.set()
        assert s.next_job(0.1) is None
        assert j.state is JobState.CANCELLED and cancelled == [j]

    def test_live_job_behind_skipped_ones_still_dispatches(self):
        s = Scheduler()
        dead = _job()
        live = _job()
        s.submit(dead)
        s.submit(live)
        dead.cancel_event.set()
        assert s.next_job(0.1) is live


class TestClose:
    def test_next_job_returns_none_when_closed_and_empty(self):
        s = Scheduler()
        s.close()
        assert s.next_job(0.1) is None

    def test_drain_returns_pending_and_empties_queue(self):
        s = Scheduler()
        jobs = [_job() for _ in range(3)]
        for j in jobs:
            s.submit(j)
        s.close()
        assert s.drain() == jobs  # caller (SimServe.shutdown) cancels them
        assert s.depth == 0
