"""Request/job validation and handle semantics."""

import pytest

from repro.service import (
    JobPriority,
    JobState,
    MILRequest,
    SweepRequest,
)
from repro.service.jobs import Job

from .helpers import build_loop_model


class TestMILRequestValidation:
    def test_model_xor_builder(self):
        with pytest.raises(ValueError):
            MILRequest()  # neither
        with pytest.raises(ValueError):
            MILRequest(model=build_loop_model(), builder=build_loop_model)  # both

    def test_positive_dt_and_t_final(self):
        with pytest.raises(ValueError):
            MILRequest(model=build_loop_model(), dt=0.0)
        with pytest.raises(ValueError):
            MILRequest(model=build_loop_model(), t_final=-1.0)

    def test_resolve_model_unwraps_dot_model(self):
        class Wrapper:
            model = build_loop_model()

        req = MILRequest(builder=lambda: Wrapper())
        assert req.resolve_model() is Wrapper.model


class TestSweepRequestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepRequest(builder=build_loop_model, grid=[])

    def test_expand_merges_base_kwargs(self):
        sweep = SweepRequest(
            builder=build_loop_model,
            grid=[{"gain": 1.0}, {"gain": 2.0}],
            base_kwargs={"setpoint": 5.0, "gain": 9.0},
            dt=1e-4,
            t_final=0.5,
        )
        children = sweep.expand()
        assert len(children) == 2
        assert children[0].builder_kwargs == {"setpoint": 5.0, "gain": 1.0}
        assert children[1].builder_kwargs == {"setpoint": 5.0, "gain": 2.0}
        assert all(c.dt == 1e-4 and c.t_final == 0.5 for c in children)


class TestJob:
    def test_deadline_must_be_positive(self):
        req = MILRequest(model=build_loop_model())
        with pytest.raises(ValueError):
            Job(req, deadline_s=0.0)
        with pytest.raises(ValueError):
            Job(req, deadline_s=-1.0)

    def test_ids_unique_and_state_machine(self):
        req = MILRequest(model=build_loop_model())
        a, b = Job(req), Job(req)
        assert a.id != b.id
        assert a.state is JobState.PENDING and not a.state.terminal
        assert JobState.DONE.terminal and JobState.EXPIRED.terminal
        assert not JobState.RUNNING.terminal

    def test_priority_order_values(self):
        assert JobPriority.HIGH < JobPriority.NORMAL < JobPriority.LOW
