"""Continuous batching: dynamic vector-job formation in SimServe.

Edge cases pinned here, per the scheduler's formation invariants:

* bit-identity — every coalesced lane equals its direct serial run
  (``np.array_equal``, no tolerance);
* a coalesce window that expires with a single member runs the job on
  the serial path, never as a B=1 vector job;
* mixed-priority jobs never coalesce, and an expired peer is shed
  through the normal deadline path during formation — coalescing never
  crosses a deadline-shed boundary;
* a job arriving after the batch's final step boundary (i.e. after the
  vector run completed) starts its own run instead of corrupting the
  finished one.
"""

import time

import numpy as np
import pytest

from repro.model import SimulationOptions, Simulator
from repro.service import (
    CoalesceConfig,
    CoalescedBatch,
    Job,
    JobPriority,
    JobState,
    MILRequest,
    PILRequest,
    Scheduler,
    SimServe,
    SweepRequest,
    coalesce_key,
)

from tests.service.helpers import build_loop_model, crashing_builder, make_fake_pil

DT = 1e-3
T_FINAL = 0.05


def mil(**overrides) -> MILRequest:
    kwargs = dict(model=build_loop_model(), dt=DT, t_final=T_FINAL)
    kwargs.update(overrides)
    return MILRequest(**kwargs)


def direct_run(request: MILRequest):
    """The serial reference a coalesced lane must match bit-for-bit."""
    sim = Simulator(
        request.resolve_model().compile(request.dt),
        SimulationOptions(
            dt=request.dt,
            t_final=request.t_final,
            solver=request.solver,
            use_kernels=request.use_kernels,
            log_all_signals=request.log_all_signals,
        ),
    )
    return sim.run()


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------
class TestCoalesceConfig:
    def test_defaults(self):
        cfg = CoalesceConfig()
        assert cfg.max_batch >= 2
        assert cfg.window_s >= 0

    def test_b1_batch_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            CoalesceConfig(max_batch=1)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window_s"):
            CoalesceConfig(window_s=-0.1)

    def test_from_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv("SIMSERVE_COALESCE", raising=False)
        assert CoalesceConfig.from_env() is None

    def test_from_env_enabled_with_knobs(self, monkeypatch):
        monkeypatch.setenv("SIMSERVE_COALESCE", "1")
        monkeypatch.setenv("SIMSERVE_COALESCE_MAX_BATCH", "8")
        monkeypatch.setenv("SIMSERVE_COALESCE_WINDOW_S", "0.25")
        cfg = CoalesceConfig.from_env()
        assert cfg == CoalesceConfig(max_batch=8, window_s=0.25)

    def test_from_env_falsy_values_stay_off(self, monkeypatch):
        monkeypatch.setenv("SIMSERVE_COALESCE", "0")
        assert CoalesceConfig.from_env() is None


# ---------------------------------------------------------------------------
# compatibility key
# ---------------------------------------------------------------------------
class TestCoalesceKey:
    def test_same_doc_same_options_match(self):
        assert coalesce_key(mil()) == coalesce_key(mil())

    def test_trajectory_shaping_options_differ(self):
        base = coalesce_key(mil())
        assert coalesce_key(mil(dt=2e-3)) != base
        assert coalesce_key(mil(t_final=0.1)) != base
        assert coalesce_key(mil(solver="euler")) != base
        assert coalesce_key(mil(use_kernels=False)) != base
        assert coalesce_key(mil(log_all_signals=True)) != base

    def test_retain_trace_does_not_split_batches(self):
        assert coalesce_key(mil(retain_trace=False)) == coalesce_key(mil())

    def test_different_model_doc_differs(self):
        other = MILRequest(
            model=build_loop_model(gain=5.0), dt=DT, t_final=T_FINAL
        )
        assert coalesce_key(other) != coalesce_key(mil())

    def test_batch_sweep_shares_key_with_mil(self):
        # a lane is a lane: one model doc, same options -> one batch
        sweep = SweepRequest(
            builder=build_loop_model,
            execution="batch",
            scenarios=[{"ctrl": {"gain": 3.0}}],
            dt=DT,
            t_final=T_FINAL,
        )
        assert coalesce_key(sweep) == coalesce_key(mil())

    def test_unkeyable_requests_stay_serial(self):
        assert coalesce_key(PILRequest(make_pil=make_fake_pil, t_final=0.1)) is None
        fanout = SweepRequest(
            builder=build_loop_model, grid=[{"gain": 1.0}], dt=DT, t_final=T_FINAL
        )
        assert coalesce_key(fanout) is None
        broken = MILRequest(builder=crashing_builder, dt=DT, t_final=T_FINAL)
        assert coalesce_key(broken) is None


# ---------------------------------------------------------------------------
# scheduler-level formation (deterministic, no workers)
# ---------------------------------------------------------------------------
def queued_job(sched, key=("k",), priority=JobPriority.NORMAL, deadline_s=None):
    job = Job(mil(), priority=priority, deadline_s=deadline_s)
    job.coalesce_key = key
    sched.submit(job)
    return job


class TestSchedulerFormation:
    def cfg(self, **kw):
        kw.setdefault("max_batch", 4)
        kw.setdefault("window_s", 0.0)
        return CoalesceConfig(**kw)

    def test_queued_peers_coalesce_fifo(self):
        sched = Scheduler(coalesce=self.cfg())
        jobs = [queued_job(sched) for _ in range(3)]
        batch = sched.next_job(timeout=1.0)
        assert isinstance(batch, CoalescedBatch)
        assert batch.members == jobs  # submission order = lane order
        assert sched.depth == 0

    def test_single_member_returns_bare_job(self):
        sched = Scheduler(coalesce=self.cfg())
        job = queued_job(sched)
        popped = sched.next_job(timeout=1.0)
        assert popped is job
        assert not isinstance(popped, CoalescedBatch)

    def test_max_batch_caps_width(self):
        sched = Scheduler(coalesce=self.cfg(max_batch=3))
        jobs = [queued_job(sched) for _ in range(5)]
        batch = sched.next_job(timeout=1.0)
        assert isinstance(batch, CoalescedBatch)
        assert batch.members == jobs[:3]
        assert sched.depth == 2  # overflow stays queued for the next pop

    def test_different_keys_never_mix(self):
        sched = Scheduler(coalesce=self.cfg())
        a = queued_job(sched, key=("a",))
        b = queued_job(sched, key=("b",))
        first = sched.next_job(timeout=1.0)
        second = sched.next_job(timeout=1.0)
        assert first is a and second is b

    def test_keyless_job_bypasses_formation(self):
        sched = Scheduler(coalesce=self.cfg())
        job = Job(mil())
        assert job.coalesce_key is None
        sched.submit(job)
        queued_job(sched)
        assert sched.next_job(timeout=1.0) is job

    def test_mixed_priorities_never_coalesce(self):
        sched = Scheduler(coalesce=self.cfg())
        normal = queued_job(sched, priority=JobPriority.NORMAL)
        high = queued_job(sched, priority=JobPriority.HIGH)
        first = sched.next_job(timeout=1.0)
        second = sched.next_job(timeout=1.0)
        assert first is high  # and it did NOT absorb the NORMAL peer
        assert second is normal

    def test_expired_peer_shed_not_absorbed(self):
        shed = []
        sched = Scheduler(coalesce=self.cfg(), on_shed=shed.append)
        live = [queued_job(sched), queued_job(sched)]
        dead = queued_job(sched, deadline_s=0.005)
        time.sleep(0.02)
        batch = sched.next_job(timeout=1.0)
        assert isinstance(batch, CoalescedBatch)
        assert batch.members == live
        assert shed == [dead]
        assert dead.state is JobState.EXPIRED
        assert dead.done_event.is_set()

    def test_cancelled_peer_skipped(self):
        cancelled = []
        sched = Scheduler(coalesce=self.cfg(), on_cancel=cancelled.append)
        live = [queued_job(sched), queued_job(sched)]
        victim = queued_job(sched)
        victim.cancel_event.set()
        batch = sched.next_job(timeout=1.0)
        assert batch.members == live
        assert cancelled == [victim]
        assert victim.state is JobState.CANCELLED

    def test_window_waits_for_straggler(self):
        import threading

        sched = Scheduler(coalesce=self.cfg(window_s=0.5))
        queued_job(sched)

        def late_submit():
            time.sleep(0.05)
            queued_job(sched)

        t = threading.Thread(target=late_submit)
        t.start()
        batch = sched.next_job(timeout=2.0)
        t.join()
        assert isinstance(batch, CoalescedBatch)
        assert batch.width == 2

    def test_step0_late_admission_via_claim_compatible(self):
        sched = Scheduler(coalesce=self.cfg())
        first = queued_job(sched)
        assert sched.next_job(timeout=1.0) is first  # sealed solo
        late = queued_job(sched)  # arrives before initialize()
        assert sched.claim_compatible(first, 4) == [late]
        assert sched.depth == 0

    def test_claim_compatible_without_coalescing_is_noop(self):
        sched = Scheduler()  # no coalesce config
        job = Job(mil())
        assert sched.claim_compatible(job, 4) == []

    def test_batch_requires_two_members(self):
        with pytest.raises(ValueError, match=">= 2"):
            CoalescedBatch(("k",), [Job(mil())])


# ---------------------------------------------------------------------------
# end to end through SimServe
# ---------------------------------------------------------------------------
CFG = CoalesceConfig(max_batch=8, window_s=0.2)


class TestServiceCoalescing:
    def test_every_lane_bit_identical_to_direct_run(self):
        reference = direct_run(mil())
        with SimServe(workers=1, coalesce=CFG) as svc:
            handles = [svc.submit(mil()) for _ in range(5)]
            records = [h.record(timeout=30.0) for h in handles]
        offsets = set()
        for rec in records:
            assert rec.state is JobState.DONE
            assert rec.summary["coalesced"]["width"] == 5
            offsets.add(rec.summary["coalesced"]["lane_offset"])
            lane = rec.result
            assert lane.names == reference.names
            for name in reference.names:
                assert np.array_equal(lane[name], reference[name])
        assert offsets == set(range(5))  # one distinct lane per member
        snap = svc.metrics_snapshot()
        assert snap["coalesce"]["batches"] == 1
        assert snap["coalesce"]["jobs"] == 5

    def test_mil_and_batch_sweep_share_one_run(self):
        sweep = SweepRequest(
            builder=build_loop_model,
            execution="batch",
            scenarios=[{"ctrl": {"gain": 3.0}}, {"ctrl": {"gain": 4.0}}],
            dt=DT,
            t_final=T_FINAL,
        )
        with SimServe(workers=1, coalesce=CFG) as svc:
            hm = svc.submit(mil())
            hs = svc.submit_sweep(sweep)
            rm = hm.record(timeout=30.0)
            rs = hs.handle.record(timeout=30.0)
        assert rm.summary["coalesced"]["width"] == 2
        assert rs.summary["coalesced"]["lanes_total"] == 3
        # sweep lanes still demux against their own serial references
        lanes = rs.result.split()
        for overrides, lane in zip(sweep.scenarios, lanes):
            m = build_loop_model()
            cm = m.compile(DT)
            for qname, attrs in overrides.items():
                for attr, value in attrs.items():
                    setattr(cm.nodes[qname], attr, value)
            ref = Simulator(
                cm, SimulationOptions(dt=DT, t_final=T_FINAL)
            ).run()
            for name in ref.names:
                assert np.array_equal(lane[name], ref[name])

    def test_window_expiry_with_single_job_runs_serial(self):
        with SimServe(workers=1, coalesce=CoalesceConfig(max_batch=8,
                                                         window_s=0.01)) as svc:
            rec = svc.submit(mil()).record(timeout=30.0)
            snap = svc.metrics_snapshot()
        assert rec.state is JobState.DONE
        assert "coalesced" not in rec.summary  # serial path, not a B=1 vector
        assert snap["coalesce"]["batches"] == 0

    def test_arrival_after_final_step_boundary_runs_alone(self):
        # the batch has fully finished before the straggler is submitted:
        # it must form its own (serial) run, bit-identical as ever
        reference = direct_run(mil())
        with SimServe(workers=1, coalesce=CoalesceConfig(max_batch=8,
                                                         window_s=0.02)) as svc:
            first = [svc.submit(mil()) for _ in range(2)]
            assert svc.wait_all(first, timeout=30.0)
            late = svc.submit(mil())
            rec = late.record(timeout=30.0)
        assert rec.state is JobState.DONE
        assert "coalesced" not in rec.summary
        for name in reference.names:
            assert np.array_equal(rec.result[name], reference[name])

    def test_deadline_shed_boundary_not_crossed(self):
        # both jobs queue before the pool starts; B's deadline passes
        # while queued, so formation must shed B instead of absorbing it
        svc = SimServe(workers=1, coalesce=CoalesceConfig(max_batch=8,
                                                          window_s=0.05),
                       autostart=False)
        try:
            ha = svc.submit(mil())
            hb = svc.submit(mil(), deadline_s=0.005)
            time.sleep(0.03)
            svc.start()
            ra = ha.record(timeout=30.0)
            rb = hb.record(timeout=30.0)
        finally:
            svc.shutdown()
        assert ra.state is JobState.DONE
        assert "coalesced" not in ra.summary  # never fused with dead B
        assert rb.state is JobState.EXPIRED

    def test_mixed_priorities_run_as_separate_jobs(self):
        svc = SimServe(workers=1, coalesce=CoalesceConfig(max_batch=8,
                                                          window_s=0.02),
                       autostart=False)
        try:
            hn = svc.submit(mil(), priority=JobPriority.NORMAL)
            hh = svc.submit(mil(), priority=JobPriority.HIGH)
            svc.start()
            rn = hn.record(timeout=30.0)
            rh = hh.record(timeout=30.0)
        finally:
            svc.shutdown()
        assert rn.state is JobState.DONE and rh.state is JobState.DONE
        assert "coalesced" not in rn.summary
        assert "coalesced" not in rh.summary

    def test_coalescing_off_by_default(self):
        with SimServe(workers=1) as svc:
            assert svc.scheduler.coalesce is None
            rec = svc.submit(mil()).record(timeout=30.0)
        assert rec.state is JobState.DONE
        assert "coalesced" not in rec.summary

    def test_env_var_enables_coalescing(self, monkeypatch):
        monkeypatch.setenv("SIMSERVE_COALESCE", "1")
        monkeypatch.setenv("SIMSERVE_COALESCE_MAX_BATCH", "4")
        svc = SimServe(workers=1, autostart=False)
        try:
            assert svc.scheduler.coalesce == CoalesceConfig(max_batch=4)
        finally:
            svc.shutdown()
