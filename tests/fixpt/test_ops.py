"""Unit tests for vectorized fixed-point kernels."""

import numpy as np
import pytest

from repro.fixpt import FixedPointType, Overflow, Rounding, Q15, quantize_array, dequantize_array, saturate_array
from repro.fixpt.ops import represent_array


class TestQuantizeArray:
    def test_matches_scalar_quantize(self):
        rng = np.random.default_rng(42)
        vals = rng.uniform(-2, 2, size=200)
        raws = quantize_array(vals, Q15)
        for v, r in zip(vals, raws):
            assert r == Q15.quantize(float(v))

    def test_matches_scalar_all_roundings(self):
        rng = np.random.default_rng(7)
        vals = rng.uniform(-3, 3, size=100)
        for rounding in Rounding:
            t = FixedPointType(16, 8, rounding=rounding)
            raws = quantize_array(vals, t)
            for v, r in zip(vals, raws):
                assert r == t.quantize(float(v)), (rounding, v)

    def test_saturates(self):
        raws = quantize_array(np.array([5.0, -5.0]), Q15)
        assert raws[0] == Q15.raw_max
        assert raws[1] == Q15.raw_min

    def test_infinities(self):
        raws = quantize_array(np.array([np.inf, -np.inf]), Q15)
        assert raws[0] == Q15.raw_max and raws[1] == Q15.raw_min

    def test_wrap_matches_scalar(self):
        t = Q15.with_overflow(Overflow.WRAP)
        vals = np.array([1.0, -1.5, 2.0, 3.75])
        raws = quantize_array(vals, t)
        for v, r in zip(vals, raws):
            assert r == t.quantize(float(v))


class TestRoundTrip:
    def test_dequantize_inverse_on_grid(self):
        raws = np.arange(-100, 100)
        vals = dequantize_array(raws, Q15)
        assert np.array_equal(quantize_array(vals, Q15), raws)

    def test_represent_error_bound(self):
        rng = np.random.default_rng(3)
        vals = rng.uniform(-0.9, 0.9, size=500)
        out = represent_array(vals, Q15)
        assert np.max(np.abs(out - vals)) < Q15.eps


class TestSaturateArray:
    def test_clip(self):
        raw = np.array([-(10**6), 10**6, 0])
        out = saturate_array(raw, Q15)
        assert list(out) == [Q15.raw_min, Q15.raw_max, 0]

    def test_wrap_signed(self):
        t = Q15.with_overflow(Overflow.WRAP)
        out = saturate_array(np.array([32768, -32769]), t)
        assert list(out) == [-32768, 32767]
