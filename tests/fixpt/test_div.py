"""Tests for fixed-point division and absolute value."""

import pytest
from hypothesis import assume, given, strategies as st

from repro.fixpt import Fx, FixedPointType, Q15, Q31


class TestDivision:
    def test_exact_division(self):
        a, b = Fx(0.5, Q15), Fx(0.25, Q15)
        c = a / b
        assert float(c) == pytest.approx(Q15.max, abs=Q15.eps)  # 2.0 saturates

    def test_in_range_quotient(self):
        wide = FixedPointType(32, 16)
        a, b = Fx(6.0, wide), Fx(2.0, wide)
        assert float(a / b) == 3.0

    def test_truncates_toward_zero(self):
        t = FixedPointType(16, 0)
        assert float(Fx(7.0, t) / Fx(2.0, t)) == 3.0
        assert float(Fx(-7.0, t) / Fx(2.0, t)) == -3.0

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fx(0.5, Q15) / Fx(0.0, Q15)
        # a value below eps quantizes to zero: also a trap
        with pytest.raises(ZeroDivisionError):
            Fx(0.5, Q15) / 1e-9

    def test_rdiv_with_float(self):
        wide = FixedPointType(32, 16)
        assert float(6.0 / Fx(2.0, wide)) == 3.0

    def test_result_keeps_dividend_format(self):
        wide = FixedPointType(32, 16)
        c = Fx(1.0, wide) / Fx(3.0, wide)
        assert c.ftype == wide
        assert abs(float(c) - 1 / 3) < wide.eps

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=0.1, max_value=100),
    )
    def test_division_error_bound(self, a, b):
        wide = FixedPointType(32, 16)
        fa, fb = Fx(a, wide), Fx(b, wide)
        assume(fb.raw != 0)
        exact = float(fa) / float(fb)
        assume(wide.min <= exact <= wide.max)
        assert abs(float(fa / fb) - exact) <= wide.eps * (1 + abs(exact))


class TestAbs:
    def test_abs_positive_identity(self):
        a = Fx(0.5, Q15)
        assert abs(a) is a

    def test_abs_negative(self):
        assert float(abs(Fx(-0.5, Q15))) == 0.5

    def test_abs_of_min_representable(self):
        # |-1.0| is not representable in Q15 itself; the grown type holds it
        a = Fx(-1.0, Q15)
        assert float(abs(a)) == 1.0

    @given(st.floats(min_value=-0.99, max_value=0.99))
    def test_abs_matches_float(self, v):
        assert float(abs(Fx(v, Q15))) == abs(float(Fx(v, Q15)))
