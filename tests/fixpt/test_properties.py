"""Property-based tests for fixed-point invariants (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fixpt import Fx, FixedPointType, Overflow, Rounding, quantize_array
from repro.fixpt.propagate import propagate_add, propagate_mul


def ftypes(max_word=32):
    return st.builds(
        FixedPointType,
        word_length=st.integers(2, max_word),
        fraction_length=st.integers(-4, max_word),
        signed=st.booleans(),
        overflow=st.sampled_from(list(Overflow)),
        rounding=st.sampled_from(list(Rounding)),
    )


reasonable_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestFormatInvariants:
    @given(ftypes(), reasonable_floats)
    def test_quantize_always_in_range(self, t, v):
        raw = t.quantize(v)
        assert t.raw_min <= raw <= t.raw_max

    @given(ftypes())
    def test_grid_roundtrip_identity(self, t):
        # every raw value on the grid round-trips exactly
        for raw in (t.raw_min, 0 if not t.signed or t.raw_min <= 0 else t.raw_min, t.raw_max):
            assert t.quantize(t.to_float(raw)) == raw

    @given(ftypes(), reasonable_floats)
    def test_saturate_error_bound(self, t, v):
        if t.overflow is not Overflow.SATURATE:
            return
        v = max(t.min, min(t.max, v))
        err = abs(t.represent(v) - v)
        assert err < t.eps * (1 + 1e-9)

    @given(ftypes(), reasonable_floats)
    def test_quantize_monotone_within_range(self, t, v):
        if t.overflow is not Overflow.SATURATE:
            return
        assert t.quantize(v) <= t.quantize(v + t.eps * 2)


class TestVectorScalarAgreement:
    @given(ftypes(), st.lists(reasonable_floats, min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_array_matches_scalar(self, t, vals):
        arr = np.array(vals, dtype=np.float64)
        raws = quantize_array(arr, t)
        for v, r in zip(vals, raws):
            assert r == t.quantize(v)


class TestArithmeticInvariants:
    @given(
        st.floats(min_value=-0.99, max_value=0.99),
        st.floats(min_value=-0.99, max_value=0.99),
    )
    def test_add_error_bound(self, a, b):
        t = FixedPointType(16, 15)
        fa, fb = Fx(a, t), Fx(b, t)
        exact = float(fa) + float(fb)
        assert abs(float(fa + fb) - exact) <= (fa + fb).ftype.eps

    @given(
        st.floats(min_value=-0.99, max_value=0.99),
        st.floats(min_value=-0.99, max_value=0.99),
    )
    def test_mul_is_exact_q15(self, a, b):
        # Q15 x Q15 -> Q30-in-32-bits is exact: no rounding at all
        t = FixedPointType(16, 15)
        fa, fb = Fx(a, t), Fx(b, t)
        assert float(fa * fb) == float(fa) * float(fb)

    @given(st.floats(min_value=-0.99, max_value=0.99))
    def test_neg_involution(self, a):
        t = FixedPointType(16, 15)
        fa = Fx(a, t)
        assert float(-(-fa)) == float(fa)

    @given(ftypes(16), ftypes(16))
    def test_propagate_add_covers_operands(self, a, b):
        rt = propagate_add(a, b)
        # the result range must include both operand ranges
        assert rt.min <= min(a.min, b.min) + rt.eps
        assert rt.max >= max(a.max, b.max) - rt.eps

    @given(ftypes(16), ftypes(16))
    def test_propagate_mul_word_growth(self, a, b):
        rt = propagate_mul(a, b)
        assert rt.word_length <= 64
        assert rt.signed == (a.signed or b.signed)
