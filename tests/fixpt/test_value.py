"""Unit tests for Fx scalar arithmetic."""

import pytest

from repro.fixpt import Fx, FixedPointType, Q15, Q31


class TestConstruction:
    def test_quantizes_on_construction(self):
        x = Fx(0.1, Q15)
        assert abs(float(x) - 0.1) < Q15.eps

    def test_from_raw(self):
        x = Fx.from_raw(16384, Q15)
        assert float(x) == 0.5

    def test_from_raw_clamps(self):
        x = Fx.from_raw(10**9, Q15)
        assert x.raw == Q15.raw_max


class TestArithmetic:
    def test_add_exact(self):
        a, b = Fx(0.25, Q15), Fx(0.5, Q15)
        assert float(a + b) == 0.75

    def test_add_grows_word(self):
        a, b = Fx(0.75, Q15), Fx(0.75, Q15)
        c = a + b
        assert float(c) == 1.5  # would saturate in Q15, fits in the grown type
        assert c.ftype.word_length == 17

    def test_sub(self):
        a, b = Fx(0.75, Q15), Fx(0.5, Q15)
        assert float(a - b) == 0.25

    def test_rsub_with_float(self):
        a = Fx(0.25, Q15)
        assert float(1.0 - a) == pytest.approx(Q15.max - 0.25, abs=Q15.eps)

    def test_mul_exact(self):
        a, b = Fx(0.5, Q15), Fx(0.5, Q15)
        c = a * b
        assert float(c) == 0.25
        # Q15*Q15 -> Q30 in 32 bits
        assert c.ftype.word_length == 32
        assert c.ftype.fraction_length == 30

    def test_mul_keeps_full_precision(self):
        a = Fx.from_raw(1, Q15)  # eps
        b = Fx.from_raw(1, Q15)
        c = a * b
        assert float(c) == 2**-30

    def test_neg(self):
        a = Fx(-1.0, Q15)
        b = -a
        assert float(b) == 1.0  # representable in the grown signed type

    def test_mixed_with_python_float(self):
        a = Fx(0.5, Q15)
        assert float(a + 0.25) == 0.75
        assert float(a * 0.5) == 0.25
        assert float(2.0 * a) == pytest.approx(float(Fx(2.0, Q15)) * 0.5, abs=2 * Q15.eps)


class TestCast:
    def test_cast_up_is_lossless(self):
        a = Fx(0.3, Q15)
        b = a.cast(Q31)
        assert float(b) == float(a)

    def test_cast_down_quantizes(self):
        a = Fx(0.3, Q31)
        b = a.cast(Q15)
        assert abs(float(b) - 0.3) < Q15.eps

    def test_cast_same_type_identity(self):
        a = Fx(0.3, Q15)
        assert a.cast(Q15) is a

    def test_cast_saturates(self):
        wide = FixedPointType(32, 16)
        a = Fx(100.0, wide)
        b = a.cast(Q15)
        assert float(b) == Q15.max


class TestComparisons:
    def test_ordering(self):
        a, b = Fx(0.25, Q15), Fx(0.5, Q15)
        assert a < b and b > a and a <= b and b >= a

    def test_eq_with_float(self):
        assert Fx(0.5, Q15) == 0.5
        assert Fx(0.5, Q15) != 0.25

    def test_eq_across_types(self):
        assert Fx(0.5, Q15) == Fx(0.5, Q31)

    def test_hashable(self):
        assert hash(Fx(0.5, Q15)) == hash(Fx(0.5, Q31))
