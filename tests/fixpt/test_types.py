"""Unit tests for fixed-point format descriptions."""

import math

import pytest

from repro.fixpt import FixedPointType, Overflow, Rounding, Q15, Q31, UQ12


class TestRangeAndResolution:
    def test_q15_range(self):
        assert Q15.raw_min == -32768
        assert Q15.raw_max == 32767
        assert Q15.min == -1.0
        assert Q15.max == pytest.approx(1.0 - 2**-15)

    def test_unsigned_range(self):
        u = FixedPointType(8, 0, signed=False)
        assert u.raw_min == 0
        assert u.raw_max == 255

    def test_scale_is_power_of_two(self):
        assert Q15.scale == 2**-15
        assert Q31.scale == 2**-31
        assert FixedPointType(16, -2).scale == 4.0

    def test_negative_fraction_length(self):
        t = FixedPointType(8, -1)
        assert t.quantize(10.0) == 5
        assert t.to_float(5) == 10.0

    def test_fraction_longer_than_word(self):
        t = FixedPointType(8, 10)  # range (-1/8, 1/8)
        assert t.max < 0.125
        assert t.represent(0.01) == pytest.approx(0.01, abs=t.eps)

    def test_invalid_word_length_rejected(self):
        with pytest.raises(ValueError):
            FixedPointType(0, 0)
        with pytest.raises(ValueError):
            FixedPointType(65, 0)
        with pytest.raises(ValueError):
            FixedPointType(1, 0, signed=True)


class TestQuantize:
    def test_exact_values_roundtrip(self):
        for v in (0.0, 0.5, -0.5, 0.25, Q15.max, Q15.min):
            assert Q15.represent(v) == v

    def test_saturation_high(self):
        assert Q15.quantize(2.0) == Q15.raw_max

    def test_saturation_low(self):
        assert Q15.quantize(-2.0) == Q15.raw_min

    def test_wrap_overflow(self):
        t = Q15.with_overflow(Overflow.WRAP)
        # 1.0 in Q15 would be raw 32768 -> wraps to -32768 (i.e. -1.0)
        assert t.quantize(1.0) == -32768

    def test_wrap_unsigned(self):
        t = FixedPointType(8, 0, signed=False, overflow=Overflow.WRAP)
        assert t.quantize(256.0) == 0
        assert t.quantize(257.0) == 1

    def test_rounding_floor_vs_nearest(self):
        floor_t = FixedPointType(16, 0, rounding=Rounding.FLOOR)
        near_t = FixedPointType(16, 0, rounding=Rounding.NEAREST)
        assert floor_t.quantize(1.9) == 1
        assert near_t.quantize(1.9) == 2
        assert floor_t.quantize(-1.1) == -2
        assert near_t.quantize(-1.1) == -1

    def test_rounding_zero_and_ceil(self):
        zero_t = FixedPointType(16, 0, rounding=Rounding.ZERO)
        ceil_t = FixedPointType(16, 0, rounding=Rounding.CEIL)
        assert zero_t.quantize(-1.9) == -1
        assert ceil_t.quantize(1.1) == 2

    def test_nearest_ties_away_from_zero(self):
        t = FixedPointType(16, 0, rounding=Rounding.NEAREST)
        assert t.quantize(0.5) == 1
        assert t.quantize(-0.5) == -1

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Q15.quantize(float("nan"))

    def test_infinity_saturates(self):
        assert Q15.quantize(float("inf")) == Q15.raw_max
        assert Q15.quantize(float("-inf")) == Q15.raw_min

    def test_can_represent(self):
        assert Q15.can_represent(0.5)
        assert not Q15.can_represent(1.5)
        assert not Q15.can_represent(1e-9)


class TestPresentation:
    def test_name(self):
        assert Q15.name == "sfix16_En15"
        assert UQ12.name == "ufix16_En12"

    def test_c_type_widths(self):
        assert Q15.c_type == "int16_t"
        assert Q31.c_type == "int32_t"
        assert FixedPointType(8, 7).c_type == "int8_t"
        assert FixedPointType(12, 0, signed=False).c_type == "uint16_t"
        assert FixedPointType(40, 0).c_type == "int64_t"

    def test_with_rounding_preserves_rest(self):
        t = Q15.with_rounding(Rounding.NEAREST)
        assert t.word_length == 16 and t.fraction_length == 15
        assert t.rounding is Rounding.NEAREST
        assert t.overflow is Overflow.SATURATE

    def test_frozen(self):
        with pytest.raises(Exception):
            Q15.word_length = 8  # type: ignore[misc]


class TestQuantizationError:
    def test_error_bounded_by_eps_floor(self):
        t = FixedPointType(16, 12)
        for v in (0.1, 0.7, -0.3, 3.14159 / 4):
            err = abs(t.represent(v) - v)
            assert err < t.eps

    def test_error_bounded_by_half_eps_nearest(self):
        t = FixedPointType(16, 12, rounding=Rounding.NEAREST)
        for v in (0.1, 0.7, -0.3, 3.14159 / 4):
            err = abs(t.represent(v) - v)
            assert err <= t.eps / 2 + 1e-12
