"""Tests for the baseline (conventional) target."""

import pytest

from repro.baselines import (
    GenericConfigStore,
    build_generic_servo_model,
    count_retarget_edits,
    make_generic_blockset,
    retarget_generic_model,
)
from repro.casestudy import ServoConfig
from repro.model.block import BlockContext
from repro.model.graph import Model
from repro.model.library import Constant, Scope


class TestGenericBlocks:
    def test_chip_locked_construction(self):
        bs = make_generic_blockset("MC9S12DP256")
        adc = bs["adc"]("AD1")
        assert adc.chip == "MC9S12DP256"
        assert type(adc).__name__ == "MC9S12DP256_ADC"

    def test_unsupported_chip_has_no_blockset(self):
        with pytest.raises(ValueError, match="no generic block set"):
            make_generic_blockset("MCF5235")

    def test_pass_through_simulation(self):
        bs = make_generic_blockset("MC56F8367")
        adc = bs["adc"]("AD1")
        # no quantization whatsoever — the paper's fidelity complaint
        assert adc.outputs(0, [1.23456789], BlockContext()) == [1.23456789]

    def test_settings_accepted_silently(self):
        bs = make_generic_blockset("MC56F8367")
        adc = bs["adc"]("AD1")
        adc.configure(resolution=99, channel=1000)  # nonsense, no error
        assert adc.settings["resolution"] == 99


class TestRetargetCost:
    def build_model(self, chip):
        bs = make_generic_blockset(chip)
        m = Model("generic")
        c = m.add(Constant("c", value=1.0))
        a = m.add(bs["adc"]("AD1"))
        p = m.add(bs["pwm"]("PWM1"))
        s = m.add(Scope("s"))
        m.connect(c, a)
        m.connect(a, p)
        m.connect(p, s)
        return m

    def test_edit_count_scales_with_peripherals(self):
        m = self.build_model("MC56F8367")
        assert count_retarget_edits(m, "MC9S12DP256") == 2  # one per HW block
        assert count_retarget_edits(m, "MC56F8367") == 0

    def test_retarget_swaps_blocks_and_rewires(self):
        m = self.build_model("MC56F8367")
        edits = retarget_generic_model(m, "MC9S12DP256")
        assert edits == 2
        assert m.block("AD1").chip == "MC9S12DP256"
        # wiring intact: still compiles and simulates
        from repro.model.engine import simulate

        res = simulate(m, t_final=0.01, dt=1e-3)


class TestMissingValidation:
    def test_invalid_settings_surface_only_at_deploy(self):
        store = GenericConfigStore("MC9S12DP256")
        store.apply("AD1", resolution=12)       # chip has 10-bit ADC
        store.apply("AD2", channel=42)          # chip has 8 channels
        store.apply("PWM1", frequency=0.001)    # unreachable
        store.apply("TMR1", period=3600.0)      # unreachable
        store.apply("IO1", pin=500)             # not on the package
        store.apply("OK1", channel=2)           # fine
        failures = store.deployed_failures()
        assert len(failures) == 5
        assert not any("OK1" in f for f in failures)

    def test_same_errors_caught_at_design_time_by_pe(self):
        # the PE knowledge base rejects each of those settings immediately
        from repro.pe import PEProject
        from repro.pe.beans import ADCBean, BitIOBean, PWMBean, TimerIntBean
        from repro.pe.properties import BeanConfigError

        proj = PEProject("t", "MC9S12DP256")
        proj.add_bean(ADCBean("AD1", resolution=12))
        proj.add_bean(PWMBean("PWM1", frequency=0.1))  # unreachable divider
        proj.add_bean(TimerIntBean("TMR1", period=3600.0))
        proj.add_bean(BitIOBean("IO1", pin=500))
        report = proj.validate()
        assert len(report.errors) >= 4
        # grossly invalid values never even enter a bean (property-level
        # immediate errors)
        with pytest.raises(BeanConfigError):
            ADCBean("AD2", channel=42)
        with pytest.raises(BeanConfigError):
            PWMBean("PWM2", frequency=0.001)


class TestGenericServoModel:
    def test_builds_and_simulates(self):
        from repro.model.engine import simulate

        sm = build_generic_servo_model(ServoConfig(setpoint=100.0))
        res = simulate(sm.model, t_final=0.2, dt=1e-4)
        # the loop still works; the *fidelity* differs (measured in E2)
        assert res.final("speed") > 50.0

    def test_peripheral_blocks_replaced(self):
        from repro.baselines.generic_target import GenericPeripheralBlock

        sm = build_generic_servo_model(ServoConfig())
        inner = sm.controller.inner
        kinds = [b for b in inner.blocks.values() if isinstance(b, GenericPeripheralBlock)]
        assert len(kinds) == 2  # QD1 + PWM1
