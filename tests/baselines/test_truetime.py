"""Tests for the TrueTime-style kernel block."""

import numpy as np
import pytest

from repro.baselines import DeclaredTask, TrueTimeKernelBlock
from repro.model import Model
from repro.model.block import BlockContext
from repro.model.engine import simulate
from repro.model.library import Clock, Scope


def delay_rig(kernel, t_final=0.02, dt=1e-4):
    """Clock through the kernel: output shows the effective delay."""
    m = Model()
    clk = m.add(Clock("clk"))
    m.add(kernel)
    sc = m.add(Scope("s", label="y"))
    sc2 = m.add(Scope("s2", label="t"))
    m.connect(clk, kernel)
    m.connect(kernel, sc)
    m.connect(clk, sc2)
    return simulate(m, t_final=t_final, dt=dt)


class TestResponseModel:
    def test_bare_response_is_latency_plus_wcet(self):
        k = TrueTimeKernelBlock("k", control_period=1e-3, wcet=200e-6,
                                latency=10e-6)
        assert k.response_time(0.0) == pytest.approx(210e-6)

    def test_blocking_from_declared_task(self):
        k = TrueTimeKernelBlock(
            "k", control_period=1e-3, wcet=100e-6,
            tasks=[DeclaredTask("logger", period=1e-3, wcet=300e-6)],
        )
        # released exactly when the logger starts: full blocking
        assert k.blocking_at(0.0) == pytest.approx(300e-6)
        # released mid-logger: remaining only
        assert k.blocking_at(100e-6) == pytest.approx(200e-6)
        # released after the logger finished: none
        assert k.blocking_at(500e-6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrueTimeKernelBlock("k", control_period=0.0, wcet=1e-6)
        with pytest.raises(ValueError):
            TrueTimeKernelBlock("k", control_period=1e-3, wcet=-1.0)
        with pytest.raises(ValueError):
            DeclaredTask("t", period=-1.0, wcet=0.0)


class TestSimulatedDelay:
    def test_actuation_delayed_by_wcet(self):
        # wcet = 5 base steps: the staged value lands half a period late
        k = TrueTimeKernelBlock("k", control_period=1e-3, wcet=0.5e-3)
        res = delay_rig(k)
        y, t = res["y"], res["t"]
        # at t=0.4ms the job released at 0 has not landed yet
        assert res.at("y", 0.4e-3) == 0.0
        # by 0.6ms it has (staged value was the input at release, i.e. 0)
        # the job released at 1ms lands at 1.5ms carrying u(1ms)=1ms
        assert res.at("y", 1.6e-3) == pytest.approx(1e-3, abs=1e-9)

    def test_zero_cost_kernel_tracks_with_one_period(self):
        k = TrueTimeKernelBlock("k", control_period=1e-3, wcet=0.0)
        res = delay_rig(k)
        # releases apply within one base step of the period grid
        assert res.at("y", 1.25e-3) == pytest.approx(1e-3, abs=1e-9)

    def test_interference_shifts_landing(self):
        quiet = TrueTimeKernelBlock("k", control_period=1e-3, wcet=0.2e-3)
        busy = TrueTimeKernelBlock(
            "k", control_period=1e-3, wcet=0.2e-3,
            tasks=[DeclaredTask("bg", period=1e-3, wcet=0.4e-3)],
        )
        r_quiet = delay_rig(quiet)
        r_busy = delay_rig(busy)
        # with blocking, the landing of each actuation is later
        t_land_quiet = r_quiet.t[np.argmax(r_quiet["y"] >= 1e-3 - 1e-9)]
        t_land_busy = r_busy.t[np.argmax(r_busy["y"] >= 1e-3 - 1e-9)]
        assert t_land_busy > t_land_quiet
