"""ARQ layer unit tests: ReliableChannel over a scripted lossy pipe."""

import pytest

from repro.comm import (
    ARQConfig,
    PacketCodec,
    PacketDecoder,
    PacketType,
    ReliableChannel,
    SerialLine,
)
from repro.comm.host import HostSerialPort
from repro.mcu import MCUDevice, MC56F8367


class FakeScheduler:
    """Deterministic event queue without the MCU machinery."""

    def __init__(self):
        self.time = 0.0
        self._events = []
        self._n = 0

    def schedule(self, t, fn):
        self._n += 1
        self._events.append((max(t, self.time), self._n, fn))
        self._events.sort(key=lambda e: (e[0], e[1]))

    def run_until(self, t_end):
        while self._events and self._events[0][0] <= t_end:
            t, _, fn = self._events.pop(0)
            self.time = t
            fn()
        self.time = t_end


def make_pair(cfg=None, a_to_b=None, b_to_a=None):
    """Two channels joined by instantaneous (scriptable) pipes.

    ``a_to_b``/``b_to_a`` filter raw frames; return None to eat one.
    """
    sched = FakeScheduler()
    delivered_a, delivered_b = [], []
    dec_a = PacketDecoder()
    dec_b = PacketDecoder()

    def send_a(frame):
        f = a_to_b(frame) if a_to_b else frame
        if f is not None:
            sched.schedule(sched.time, lambda: dec_b.feed(f))

    def send_b(frame):
        f = b_to_a(frame) if b_to_a else frame
        if f is not None:
            sched.schedule(sched.time, lambda: dec_a.feed(f))

    cha = ReliableChannel(sched, send_a, delivered_a.append, cfg, name="a")
    chb = ReliableChannel(sched, send_b, delivered_b.append, cfg, name="b")
    dec_a.on_packet = cha.on_packet
    dec_a.on_error = cha.on_frame_error
    dec_b.on_packet = chb.on_packet
    dec_b.on_error = chb.on_frame_error
    return sched, cha, chb, delivered_a, delivered_b


class TestHappyPath:
    def test_delivery_and_ack(self):
        sched, cha, chb, da, db = make_pair()
        seq = cha.send(PacketType.DATA, [1, 2, 3])
        sched.run_until(0.01)
        assert [p.words for p in db] == [(1, 2, 3)]
        assert db[0].seq == seq
        assert cha.in_flight == 0
        assert cha.health.acked == 1
        assert chb.health.acks_sent == 1
        assert cha.health.retransmits == 0

    def test_no_retransmit_after_ack(self):
        sched, cha, chb, da, db = make_pair()
        cha.send(PacketType.DATA, [7])
        sched.run_until(1.0)  # far past every timer
        assert len(db) == 1
        assert cha.health.timeouts == 0
        assert cha.health.send_failures == 0

    def test_bidirectional(self):
        sched, cha, chb, da, db = make_pair()
        cha.send(PacketType.DATA, [1])
        chb.send(PacketType.ACTUATION, [2])
        sched.run_until(0.01)
        assert [p.ptype for p in db] == [PacketType.DATA]
        assert [p.ptype for p in da] == [PacketType.ACTUATION]


class TestLossRecovery:
    def test_lost_frame_is_retransmitted(self):
        drop_first = {"n": 0}

        def lossy(frame):
            # eat only the very first data frame; ACKs flow freely
            if frame[2] == int(PacketType.DATA) and drop_first["n"] == 0:
                drop_first["n"] += 1
                return None
            return frame

        cfg = ARQConfig(timeout=1e-3)
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=lossy)
        cha.send(PacketType.DATA, [42])
        sched.run_until(0.5e-3)
        assert db == []  # first copy eaten
        sched.run_until(5e-3)
        assert [p.words for p in db] == [(42,)]
        assert cha.health.retransmits == 1
        assert cha.health.timeouts == 1
        assert cha.in_flight == 0

    def test_lost_ack_causes_dup_which_is_suppressed(self):
        eat_acks = {"n": 0}

        def ack_eater(frame):
            if frame[2] == int(PacketType.ACK) and eat_acks["n"] == 0:
                eat_acks["n"] += 1
                return None
            return frame

        cfg = ARQConfig(timeout=1e-3)
        sched, cha, chb, da, db = make_pair(cfg, b_to_a=ack_eater)
        cha.send(PacketType.DATA, [9])
        sched.run_until(10e-3)
        # delivered exactly once despite the retransmission
        assert [p.words for p in db] == [(9,)]
        assert chb.health.duplicates == 1
        assert chb.health.acks_sent == 2
        assert cha.in_flight == 0

    def test_retry_budget_exhaustion(self):
        cfg = ARQConfig(timeout=1e-3, backoff=1.0, max_retries=3)
        gave_up = []
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=lambda f: None)
        cha.on_give_up = gave_up.append
        seq = cha.send(PacketType.DATA, [1])
        sched.run_until(1.0)
        assert cha.health.send_failures == 1
        assert cha.health.retransmits == 3
        assert cha.in_flight == 0
        assert gave_up == [seq]

    def test_backoff_spreads_retries(self):
        times = []

        def spy(frame):
            if frame[2] == int(PacketType.DATA):
                times.append(sched.time)
            return None  # never deliver

        cfg = ARQConfig(timeout=1e-3, backoff=2.0, max_retries=3)
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=spy)
        cha.send(PacketType.DATA, [1])
        sched.run_until(1.0)
        # transmissions at 0, then +1ms, +2ms, +4ms
        gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
        assert gaps == pytest.approx([1e-3, 2e-3, 4e-3], rel=1e-9)


class TestNak:
    def test_frame_error_solicits_retransmit(self):
        corrupt_first = {"n": 0}

        def corruptor(frame):
            if frame[2] == int(PacketType.DATA) and corrupt_first["n"] == 0:
                corrupt_first["n"] += 1
                return frame[:-1] + bytes([frame[-1] ^ 0xFF])  # break CRC
            return frame

        cfg = ARQConfig(timeout=50e-3)  # timer alone would be slow
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=corruptor)
        cha.send(PacketType.DATA, [5])
        sched.run_until(10e-3)
        # NAK beat the 50 ms timer: data is already there
        assert [p.words for p in db] == [(5,)]
        assert chb.health.naks_sent == 1
        assert cha.health.naks_received == 1
        assert cha.health.retransmits == 1

    def test_nak_rate_limited(self):
        cfg = ARQConfig(timeout=10e-3)
        sched, cha, chb, da, db = make_pair(cfg)
        # two decoder errors back to back -> one NAK
        cha.on_frame_error()
        cha.on_frame_error()
        assert cha.health.naks_sent == 1
        sched.run_until(20e-3)
        cha.on_frame_error()
        assert cha.health.naks_sent == 2

    def test_nak_disabled(self):
        cfg = ARQConfig(nak_enabled=False)
        sched, cha, chb, da, db = make_pair(cfg)
        cha.on_frame_error()
        assert cha.health.naks_sent == 0


class TestSupersede:
    def test_new_send_abandons_stale_retries_of_same_type(self):
        cfg = ARQConfig(timeout=1e-3, supersede=True)
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=lambda f: None)
        cha.send(PacketType.DATA, [1])
        cha.send(PacketType.DATA, [2])  # fresher sample of the same stream
        assert cha.in_flight == 1
        assert cha.health.superseded == 1
        sched.run_until(0.5)
        # only the fresh frame kept retrying; the stale one's timer defused
        assert cha.health.send_failures == 1

    def test_supersede_is_per_packet_type(self):
        cfg = ARQConfig(timeout=1e-3, supersede=True)
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=lambda f: None)
        cha.send(PacketType.DATA, [1])
        cha.send(PacketType.ACTUATION, [2])  # different stream
        assert cha.in_flight == 2
        assert cha.health.superseded == 0

    def test_default_keeps_every_frame_pending(self):
        sched, cha, chb, da, db = make_pair(a_to_b=lambda f: None)
        cha.send(PacketType.DATA, [1])
        cha.send(PacketType.DATA, [2])
        assert cha.in_flight == 2
        assert cha.health.superseded == 0


class TestReset:
    def test_reset_abandons_pending(self):
        cfg = ARQConfig(timeout=1e-3)
        sched, cha, chb, da, db = make_pair(cfg, a_to_b=lambda f: None)
        cha.send(PacketType.DATA, [1])
        assert cha.in_flight == 1
        cha.reset()
        assert cha.in_flight == 0
        assert cha.health.resyncs == 1
        sched.run_until(1.0)
        assert cha.health.retransmits == 0  # stale timers defused

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ARQConfig(timeout=0.0)
        with pytest.raises(ValueError):
            ARQConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ARQConfig(history=256)


class TestOverRealLine:
    """The ARQ pair across the actual SerialLine + UART models."""

    def rig(self, error_rate, seed=11, cfg=None):
        dev = MCUDevice(MC56F8367)
        line = SerialLine(dev, error_rate=error_rate, seed=seed)
        sci = dev.sci(0)
        sci.configure(115200)
        sci.connect(line, 0)
        line.declare_baud(0, sci.baud)
        host = HostSerialPort(dev, 115200)
        host.connect(line, 1)
        got_host, got_mcu = [], []
        dec_host = PacketDecoder()
        dec_mcu = PacketDecoder()
        ch_host = ReliableChannel(dev, host.send, got_host.append, cfg)
        ch_mcu = ReliableChannel(dev, sci.send, got_mcu.append, cfg)
        dec_host.on_packet = ch_host.on_packet
        dec_host.on_error = ch_host.on_frame_error
        dec_mcu.on_packet = ch_mcu.on_packet
        dec_mcu.on_error = ch_mcu.on_frame_error
        host.on_byte = lambda b: dec_host.feed(bytes([b]))
        sci.rx_irq_vector = None
        # poll-mode MCU receive: drain the RX FIFO on a fine tick
        def poll(t=[0.0]):
            data = sci.receive()
            if data:
                dec_mcu.feed(data)
            t[0] += 1e-4
            dev.schedule(t[0], poll)
        dev.schedule(0.0, poll)
        return dev, ch_host, ch_mcu, got_host, got_mcu

    def test_every_word_arrives_despite_noise(self):
        cfg = ARQConfig(timeout=3e-3)
        dev, ch_host, ch_mcu, got_host, got_mcu = self.rig(0.05, cfg=cfg)
        sent = []
        for k in range(40):
            dev.schedule(k * 2e-3, lambda k=k: sent.append(ch_host.send(PacketType.DATA, [k])))
        dev.run_until(0.5)
        words = sorted(p.words[0] for p in got_mcu)
        assert words == list(range(40))  # lossless despite 5 % byte noise
        assert ch_host.health.retransmits > 0

    def test_clean_line_zero_overhead_counters(self):
        dev, ch_host, ch_mcu, got_host, got_mcu = self.rig(0.0)
        dev.schedule(0.0, lambda: ch_host.send(PacketType.DATA, [1, 2]))
        dev.run_until(0.05)
        assert [p.words for p in got_mcu] == [(1, 2)]
        assert ch_host.health.retransmits == 0
        assert ch_host.health.send_failures == 0
        assert ch_mcu.health.duplicates == 0
