"""Tests for the serial line + SCI + host port on one timeline."""

import pytest

from repro.comm import HostSerialPort, SerialLine
from repro.mcu import MCUDevice, MC56F8367, InterruptSource


def rig(baud=115200, host_baud=None, **line_kwargs):
    """MCU sci0 <-> host port over one line, sharing the device scheduler."""
    dev = MCUDevice(MC56F8367)
    line = SerialLine(dev, **line_kwargs)
    sci = dev.sci(0)
    sci.configure(baud)
    sci.connect(line, 0)
    line.declare_baud(0, sci.baud)
    host = HostSerialPort(dev, host_baud or baud)
    host.connect(line, 1)
    return dev, line, sci, host


class TestTransport:
    def test_mcu_to_host(self):
        dev, line, sci, host = rig()
        sci.send(b"hello")
        dev.run_until(0.01)
        assert host.receive() == b"hello"
        assert line.bytes_delivered[1] == 5

    def test_host_to_mcu(self):
        dev, line, sci, host = rig()
        host.send(b"\x01\x02\x03")
        dev.run_until(0.01)
        assert sci.receive() == b"\x01\x02\x03"
        assert sci.bytes_received == 3

    def test_byte_pacing_at_baud(self):
        dev, line, sci, host = rig(baud=9600)
        n = 10
        sci.send(bytes(range(n)))
        # 10 bytes * 10 bits / 9600 baud ~ 10.4 ms; not all arrive at 5 ms
        dev.run_until(5e-3)
        assert len(host.receive()) < n
        dev.run_until(0.05)
        assert len(host.receive()) + sci.bytes_sent >= n

    def test_rx_interrupt_per_byte(self):
        dev, line, sci, host = rig()
        hits = []
        sci.rx_irq_vector = "sci_rx"
        dev.intc.register(
            InterruptSource("sci_rx", priority=2, cycles=40, on_complete=lambda d: hits.append(d.time))
        )
        host.send(b"abc")
        dev.run_until(0.01)
        assert len(hits) == 3

    def test_tx_fifo_overflow_counts(self):
        dev, line, sci, host = rig()
        accepted = sci.send(bytes(1000))
        assert accepted <= sci.tx_fifo_depth + 1
        assert sci.overruns >= 1


class TestErrorInjection:
    def test_drop_rate(self):
        dev, line, sci, host = rig(drop_rate=1.0)
        sci.send(b"xxxx")
        dev.run_until(0.01)
        assert host.receive() == b""
        assert line.bytes_dropped == 4

    def test_corruption_flips_bytes(self):
        dev, line, sci, host = rig(error_rate=1.0, seed=1)
        sci.send(b"\x55")
        dev.run_until(0.01)
        data = host.receive()
        assert len(data) == 1 and data != b"\x55"
        assert line.bytes_corrupted == 1

    def test_baud_mismatch_corrupts(self):
        dev, line, sci, host = rig(baud=115200, host_baud=57600)
        assert line.baud_mismatch > 0.5
        sci.send(b"\x42")
        dev.run_until(0.01)
        assert line.bytes_corrupted == 1

    def test_matching_bauds_clean(self):
        from repro.comm.line import BAUD_TOLERANCE

        # the SCI's divider-quantized baud differs slightly from the host's
        # exact 115200, but stays inside the receiver tolerance
        dev, line, sci, host = rig(baud=115200)
        assert 0 < line.baud_mismatch < BAUD_TOLERANCE
        sci.send(b"\x42")
        dev.run_until(0.01)
        assert line.bytes_corrupted == 0

    def test_invalid_rates_rejected(self):
        dev = MCUDevice(MC56F8367)
        with pytest.raises(ValueError):
            SerialLine(dev, error_rate=2.0)


class TestBoundaryRates:
    """Accounting at the probability extremes 0.0 and 1.0."""

    def test_zero_rates_deliver_everything(self):
        dev, line, sci, host = rig(error_rate=0.0, drop_rate=0.0)
        sci.send(bytes(range(32)))
        dev.run_until(0.05)
        assert host.receive() == bytes(range(32))
        assert line.bytes_dropped == 0
        assert line.bytes_corrupted == 0
        assert line.bytes_delivered[1] == 32
        assert line.total_bytes == 32

    def test_full_drop_counts_every_byte(self):
        dev, line, sci, host = rig(drop_rate=1.0)
        sci.send(bytes(range(32)))
        dev.run_until(0.05)
        assert host.receive() == b""
        assert line.bytes_dropped == 32
        assert line.bytes_corrupted == 0
        assert line.bytes_delivered == [0, 0]
        assert line.total_bytes == 32

    def test_full_corruption_counts_and_delivers(self):
        dev, line, sci, host = rig(error_rate=1.0, seed=5)
        sci.send(bytes(range(32)))
        dev.run_until(0.05)
        got = host.receive()
        assert len(got) == 32
        assert got != bytes(range(32))
        assert line.bytes_corrupted == 32
        assert line.bytes_dropped == 0

    def test_drop_wins_over_corruption_at_both_ones(self):
        dev, line, sci, host = rig(error_rate=1.0, drop_rate=1.0)
        sci.send(b"\x10\x20")
        dev.run_until(0.01)
        assert line.bytes_dropped == 2
        assert line.bytes_corrupted == 0


class TestFaultHook:
    def test_hook_can_drop_and_corrupt(self):
        dev, line, sci, host = rig()
        # drop every even byte, flip bit 0 of every odd byte
        line.fault = lambda t, b: None if b % 2 == 0 else b ^ 0x01
        sci.send(bytes([2, 3, 4, 5]))
        dev.run_until(0.01)
        assert host.receive() == bytes([2, 4])
        assert line.bytes_dropped == 2
        assert line.bytes_corrupted == 2

    def test_identity_hook_counts_nothing(self):
        dev, line, sci, host = rig()
        line.fault = lambda t, b: b
        sci.send(b"ok")
        dev.run_until(0.01)
        assert host.receive() == b"ok"
        assert line.bytes_dropped == 0
        assert line.bytes_corrupted == 0


class TestSciConfiguration:
    def test_baud_quantization(self):
        dev = MCUDevice(MC56F8367)
        sci = dev.sci(0)
        sol = sci.configure(115200)
        # 60 MHz / (16 * 33) = 113636 -> ~1.4% error
        assert sol.relative_error < 0.02
        assert sol.achieved != 115200

    def test_round_baud_exact(self):
        dev = MCUDevice(MC56F8367)
        sci = dev.sci(0)
        sol = sci.configure(62500)  # 60e6/(16*60) = 62500 exactly
        assert sol.achieved == pytest.approx(62500)
        assert sol.relative_error < 1e-12

    def test_unconfigured_send_fails(self):
        dev = MCUDevice(MC56F8367)
        with pytest.raises(RuntimeError):
            dev.sci(0).send(b"x")
