"""Unit + property tests for the PIL packet protocol."""

import pytest
from hypothesis import given, strategies as st

from repro.comm import Packet, PacketCodec, PacketDecoder, PacketType, crc8
from repro.comm.packets import OVERHEAD_BYTES, signed_from_words, words_from_signed


class TestCrc8:
    def test_known_properties(self):
        assert crc8(b"") == 0
        assert crc8(b"\x00") == 0
        assert crc8(b"\x01") != 0

    def test_detects_single_bit_flip(self):
        data = bytes([1, 2, 3, 4, 5])
        base = crc8(data)
        for i in range(len(data)):
            for bit in range(8):
                mutated = bytearray(data)
                mutated[i] ^= 1 << bit
                assert crc8(mutated) != base


class TestRoundTrip:
    def test_encode_decode(self):
        codec, dec = PacketCodec(), PacketDecoder()
        frame = codec.encode(PacketType.DATA, [100, 65535, 0])
        pkts = dec.feed(frame)
        assert len(pkts) == 1
        assert pkts[0].ptype is PacketType.DATA
        assert pkts[0].words == (100, 65535, 0)

    def test_sequence_numbers_increment(self):
        codec, dec = PacketCodec(), PacketDecoder()
        for k in range(260):
            dec.feed(codec.encode(PacketType.SYNC, []))
        seqs = [p.seq for p in dec.packets]
        assert seqs[:3] == [0, 1, 2]
        assert seqs[256] == 0  # 8-bit wrap

    def test_incremental_feed_byte_by_byte(self):
        codec, dec = PacketCodec(), PacketDecoder()
        frame = codec.encode(PacketType.ACTUATION, [1234])
        for b in frame[:-1]:
            assert dec.feed(bytes([b])) == []
        assert len(dec.feed(frame[-1:])) == 1

    def test_two_packets_in_one_feed(self):
        codec, dec = PacketCodec(), PacketDecoder()
        buf = codec.encode(PacketType.DATA, [1]) + codec.encode(PacketType.DATA, [2])
        pkts = dec.feed(buf)
        assert [p.words for p in pkts] == [(1,), (2,)]

    def test_wire_size(self):
        codec = PacketCodec()
        frame = codec.encode(PacketType.DATA, [1, 2, 3])
        assert len(frame) == OVERHEAD_BYTES + 6
        assert PacketCodec.wire_size(3) == len(frame)

    def test_payload_limit(self):
        codec = PacketCodec()
        with pytest.raises(ValueError):
            codec.encode(PacketType.DATA, [0] * 128)


class TestCorruptionHandling:
    def test_crc_error_counted_and_resync(self):
        codec, dec = PacketCodec(), PacketDecoder()
        bad = bytearray(codec.encode(PacketType.DATA, [42]))
        bad[5] ^= 0xFF  # corrupt payload
        good = codec.encode(PacketType.DATA, [43])
        pkts = dec.feed(bytes(bad) + good)
        assert dec.crc_errors >= 1
        assert [p.words for p in pkts] == [(43,)]

    def test_garbage_prefix_resync(self):
        codec, dec = PacketCodec(), PacketDecoder()
        frame = codec.encode(PacketType.DATA, [7])
        pkts = dec.feed(b"\x00\x01\x02" + frame)
        assert len(pkts) == 1
        assert dec.resyncs >= 3

    def test_truncated_frame_waits(self):
        codec, dec = PacketCodec(), PacketDecoder()
        frame = codec.encode(PacketType.DATA, [7])
        assert dec.feed(frame[: len(frame) // 2]) == []
        assert dec.feed(frame[len(frame) // 2 :]) != []

    def test_unknown_type_rejected(self):
        dec = PacketDecoder()
        body = bytes([0x00, 0x7F, 0x00])  # seq, bad type, len 0
        frame = bytes([0xA5]) + body + bytes([crc8(body)])
        assert dec.feed(frame) == []
        assert dec.crc_errors == 1


class TestSignedConversion:
    def test_roundtrip(self):
        vals = [-32768, -1, 0, 1, 32767]
        assert signed_from_words(words_from_signed(vals)) == vals


class TestProperties:
    @given(
        st.sampled_from(list(PacketType)),
        st.lists(st.integers(0, 0xFFFF), max_size=100),
    )
    def test_roundtrip_any_payload(self, ptype, words):
        codec, dec = PacketCodec(), PacketDecoder()
        pkts = dec.feed(codec.encode(ptype, words))
        assert len(pkts) == 1
        assert pkts[0].ptype is ptype
        assert list(pkts[0].words) == words

    @given(st.binary(max_size=200))
    def test_decoder_never_crashes_on_garbage(self, junk):
        dec = PacketDecoder()
        dec.feed(junk)  # must not raise

    @given(st.binary(max_size=60), st.lists(st.integers(0, 0xFFFF), max_size=10))
    def test_packet_after_garbage_always_decodes(self, junk, words):
        codec, dec = PacketCodec(), PacketDecoder()
        # ensure junk cannot contain a partial valid-looking frame at the
        # end by terminating with a full frame after a flush of zeros
        dec.feed(junk + bytes(300))
        pkts = dec.feed(codec.encode(PacketType.DATA, words))
        assert any(tuple(words) == p.words for p in pkts)
