"""Tests for the CAN bus model and the PIL-over-CAN adapter."""

import pytest

from repro.comm import CANBus, CANFrame
from repro.mcu import MCUDevice, MC56F8367


def bus(bitrate=500e3):
    dev = MCUDevice(MC56F8367)
    return dev, CANBus(dev, bitrate)


class TestCANFrame:
    def test_id_range(self):
        CANFrame(0x7FF, b"")
        with pytest.raises(ValueError):
            CANFrame(0x800, b"")
        with pytest.raises(ValueError):
            CANFrame(-1, b"")

    def test_dlc_limit(self):
        CANFrame(1, bytes(8))
        with pytest.raises(ValueError):
            CANFrame(1, bytes(9))


class TestCANBus:
    def test_delivery_with_filter(self):
        dev, b = bus()
        got_a, got_b = [], []
        b.attach(got_a.append, ids=[0x100])
        b.attach(got_b.append)  # promiscuous
        b.send(0x100, b"\x01")
        b.send(0x200, b"\x02")
        dev.run_for(1e-3)
        assert [f.can_id for f in got_a] == [0x100]
        assert [f.can_id for f in got_b] == [0x100, 0x200]

    def test_arbitration_lowest_id_wins(self):
        dev, b = bus()
        order = []
        b.attach(lambda f: order.append(f.can_id))
        # enqueue while the bus is busy with an initial frame
        b.send(0x300, bytes(8))
        b.send(0x200, bytes(8))
        b.send(0x100, bytes(8))
        dev.run_for(10e-3)
        assert order == [0x300, 0x100, 0x200]  # first out, then priority order

    def test_frame_time_scales_with_dlc(self):
        dev, b = bus(bitrate=500e3)
        assert b.frame_time(8) > b.frame_time(0)
        # 8-byte frame: (47 + 64) * 1.2 bits at 500 kbit/s
        assert b.frame_time(8) == pytest.approx((47 + 64) * 1.2 / 500e3)

    def test_fifo_among_equal_ids(self):
        dev, b = bus()
        seen = []
        b.attach(lambda f: seen.append(f.data))
        b.send(0x10, b"a")
        b.send(0x10, b"b")
        dev.run_for(1e-3)
        assert seen == [b"a", b"b"]

    def test_utilization(self):
        dev, b = bus(bitrate=125e3)
        b.attach(lambda f: None)
        for _ in range(50):
            b.send(0x10, bytes(8))
        dev.run_for(0.1)
        assert 0.4 < b.utilization(0.1) <= 1.0

    def test_invalid_bitrate(self):
        dev = MCUDevice(MC56F8367)
        with pytest.raises(ValueError):
            CANBus(dev, 0)


class TestPILOverCAN:
    def make(self, adapter=None, **kw):
        from repro.casestudy import ServoConfig, build_servo_model
        from repro.core import PEERTTarget
        from repro.sim import LINUX_TARGET, PILSimulator

        sm = build_servo_model(ServoConfig(setpoint=100.0))
        app = PEERTTarget(sm.model).build()
        return PILSimulator(app, link=adapter or "can", target=LINUX_TARGET,
                            plant_dt=1e-4, **kw)

    def test_quiet_bus_tracks(self):
        r = self.make().run(0.3)
        assert r.result.final("speed") == pytest.approx(100.0, abs=10.0)
        assert r.crc_errors == 0

    def test_application_traffic_starves_pil(self):
        """Higher-priority application frames on a saturated bus win every
        arbitration round; the PIL exchange starves and control degrades —
        the paper's reason to prefer the unused RS-232 (section 6)."""
        from repro.sim import CANAdapter

        quiet = self.make().run(0.3)
        busy_adapter = CANAdapter(
            bitrate=125e3,
            app_traffic=[(0x050, 8, 0.4e-3), (0x051, 8, 0.5e-3)],
        )
        busy = self.make(adapter=busy_adapter).run(0.3)
        assert busy.mean_data_latency > 2 * quiet.mean_data_latency
        assert busy_adapter.bus.utilization(0.3) > 0.95
        assert busy_adapter.app_frames_sent > 1000

    def test_xpc_rejects_can(self):
        from repro.casestudy import ServoConfig, build_servo_model
        from repro.core import PEERTTarget
        from repro.sim import PILSimulator, SimulatorTargetError, XPC_TARGET

        sm = build_servo_model(ServoConfig())
        app = PEERTTarget(sm.model).build()
        with pytest.raises(SimulatorTargetError):
            PILSimulator(app, link="can", target=XPC_TARGET)
