"""Tests for the model <-> PE-project sync bus (the PES_COM substitute)."""

import pytest

from repro.core.blocks import ADCBlock, ProcessorExpertConfig, PWMBlock
from repro.core.sync import ModelProjectSync, SyncError
from repro.model.graph import Model
from repro.model.library import Gain
from repro.pe.project import PEProject


def rig():
    m = Model("ctl")
    m.add(ProcessorExpertConfig("PE", chip="MC56F8367"))
    m.add(ADCBlock("AD1", sample_time=1e-3))
    proj = PEProject("ctl")
    sync = ModelProjectSync(m, proj)
    return m, proj, sync


class TestModelToProject:
    def test_reconcile_registers_existing_blocks(self):
        m, proj, sync = rig()
        assert "AD1" in proj.beans
        assert proj.cpu.get_property("chip") == "MC56F8367"
        assert sync.is_consistent()

    def test_insertion_propagates(self):
        m, proj, sync = rig()
        m.add(PWMBlock("PWM1", frequency=20e3))
        assert "PWM1" in proj.beans
        assert proj.beans["PWM1"] is m.block("PWM1").bean

    def test_erasure_propagates(self):
        m, proj, sync = rig()
        m.remove("AD1")
        assert "AD1" not in proj.beans

    def test_rename_propagates(self):
        m, proj, sync = rig()
        m.rename("AD1", "AD_feedback")
        assert "AD_feedback" in proj.beans
        assert "AD1" not in proj.beans
        # the bean itself was renamed (it is the same object)
        assert m.block("AD_feedback").bean.name == "AD_feedback"

    def test_non_pe_blocks_ignored(self):
        m, proj, sync = rig()
        m.add(Gain("g"))
        assert "g" not in proj.beans
        m.remove("g")
        assert sync.is_consistent()


class TestProjectToModel:
    def test_erasure_propagates_back(self):
        m, proj, sync = rig()
        proj.remove_bean("AD1")
        assert "AD1" not in m.blocks

    def test_rename_propagates_back(self):
        m, proj, sync = rig()
        proj.rename_bean("AD1", "AD_x")
        assert "AD_x" in m.blocks and "AD1" not in m.blocks


class TestLifecycle:
    def test_close_detaches(self):
        m, proj, sync = rig()
        sync.close()
        m.add(PWMBlock("PWM1"))
        assert "PWM1" not in proj.beans

    def test_two_pe_config_blocks_rejected(self):
        m = Model("bad")
        m.add(ProcessorExpertConfig("PE1"))
        m.add(ProcessorExpertConfig("PE2"))
        with pytest.raises(SyncError):
            ModelProjectSync(m, PEProject("bad"))

    def test_reconcile_removes_orphan_beans(self):
        m, proj, sync = rig()
        sync.close()
        from repro.pe.beans import PWMBean

        proj.add_bean(PWMBean("orphan"))
        sync2 = ModelProjectSync(m, proj)
        assert "orphan" not in proj.beans

    def test_no_echo_loops(self):
        # a propagated change must not bounce back and forth
        m, proj, sync = rig()
        m.rename("AD1", "AD2")
        m.rename("AD2", "AD1")
        assert sync.is_consistent()
        assert set(proj.beans) == {"AD1"}
