"""Tests for the PE block set (MIL behaviour and configuration)."""

import pytest

from repro.core.blocks import (
    ADCBlock,
    BitIOBlock,
    PEBlockMode,
    ProcessorExpertConfig,
    PWMBlock,
    QuadDecBlock,
    TimerIntBlock,
)
from repro.model.block import BlockContext
from repro.pe.properties import BeanConfigError


def ctx():
    return BlockContext()


class TestConfiguration:
    def test_properties_go_to_the_bean(self):
        blk = ADCBlock("AD1", sample_time=1e-3)
        blk.set_property("channel", 3)
        assert blk.bean["channel"] == 3
        assert blk.get_property("channel") == 3

    def test_invalid_property_raises_immediately(self):
        blk = ADCBlock("AD1", sample_time=1e-3)
        with pytest.raises(BeanConfigError):
            blk.set_property("resolution", 13)

    def test_inspector_is_bean_inspector(self):
        blk = PWMBlock("PWM1", frequency=20e3)
        assert "Bean Inspector" in blk.inspector()
        assert "frequency" in blk.inspector()

    def test_constructor_kwargs_are_bean_props(self):
        blk = PWMBlock("PWM1", frequency=5e3, polarity="low")
        assert blk.bean["polarity"] == "low"

    def test_pil_mode_needs_buffer(self):
        blk = PWMBlock("PWM1")
        with pytest.raises(ValueError):
            blk.set_mode(PEBlockMode.PIL)


class TestADCBlockMIL:
    def test_quantizes_to_resolution(self):
        blk = ADCBlock("AD1", sample_time=1e-3)
        c = ctx()
        # mid-rail in, mid-code out
        assert blk.outputs(0, [1.65], c)[0] in (2047.0, 2048.0)
        # distinct nearby voltages collapse to the same code
        v = 1.0
        lsb = 3.3 / 4096
        assert blk.outputs(0, [v], c) == blk.outputs(0, [v + lsb / 4], c)

    def test_rail_clipping(self):
        blk = ADCBlock("AD1", sample_time=1e-3)
        c = ctx()
        assert blk.outputs(0, [5.0], c) == [4095.0]
        assert blk.outputs(0, [-1.0], c) == [0.0]

    def test_reduced_resolution(self):
        blk = ADCBlock("AD8", sample_time=1e-3, resolution=8)
        assert blk.outputs(0, [3.3], ctx()) == [255.0]

    def test_vref_validation(self):
        with pytest.raises(ValueError):
            ADCBlock("AD1", sample_time=1e-3, vref_low=3.3, vref_high=0.0)

    def test_fires_onend_when_enabled(self):
        blk = ADCBlock("AD1", sample_time=1e-3)
        blk.bean.enable_event("OnEnd")
        fired = []
        c = ctx()
        c._fire = lambda p: fired.append(p)
        blk.outputs(0, [1.0], c)
        assert fired == [0]


class TestPWMBlockMIL:
    def test_exact_before_validation(self):
        blk = PWMBlock("PWM1", frequency=20e3)
        assert blk.outputs(0, [0.123456], ctx()) == [0.123456]

    def test_quantizes_after_validation(self):
        from repro.pe import PEProject

        blk = PWMBlock("PWM1", frequency=20e3)
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(blk.bean)
        proj.validate()  # sets derived duty_resolution = 1/3000
        y = blk.outputs(0, [0.123456], ctx())[0]
        assert y != 0.123456
        assert abs(y - 0.123456) <= 1 / 3000 / 2 + 1e-12

    def test_clamps(self):
        blk = PWMBlock("PWM1")
        assert blk.outputs(0, [1.5], ctx()) == [1.0]
        assert blk.outputs(0, [-0.5], ctx()) == [0.0]


class TestQuadDecBlockMIL:
    def test_wraps_16bit(self):
        blk = QuadDecBlock("QD1")
        assert blk.outputs(0, [65536.0 + 5], ctx()) == [5.0]
        assert blk.outputs(0, [100.0], ctx()) == [100.0]


class TestTimerIntBlockMIL:
    def test_fires_every_hit(self):
        blk = TimerIntBlock("TI1", period=1e-3)
        assert blk.sample_time == 1e-3
        fired = []
        c = ctx()
        c._fire = lambda p: fired.append(p)
        blk.outputs(0, [], c)
        assert fired == [0]

    def test_no_fire_in_hw_mode(self):
        blk = TimerIntBlock("TI1", period=1e-3)
        blk.mode = PEBlockMode.HW
        fired = []
        c = ctx()
        c._fire = lambda p: fired.append(p)
        blk.outputs(0, [], c)
        assert fired == []


class TestBitIOBlockMIL:
    def test_binarizes(self):
        blk = BitIOBlock("KEY1", direction="input")
        c = ctx()
        blk.start(c)
        assert blk.outputs(0, [0.7], c) == [1.0]
        assert blk.outputs(0, [0.0], c) == [0.0]

    def test_edge_fires_once_per_edge(self):
        blk = BitIOBlock("KEY1", direction="input", edge_irq="rising")
        blk.bean.enable_event("OnEdge")
        fired = []
        c = ctx()
        blk.start(c)
        c._fire = lambda p: fired.append(p)
        blk.outputs(0, [0.0], c)
        blk.outputs(0, [1.0], c)
        blk.outputs(0, [1.0], c)  # held high: no refire
        blk.outputs(0, [0.0], c)
        blk.outputs(0, [1.0], c)
        assert len(fired) == 2


class TestAutosarVariant:
    def test_functionally_identical_to_pe(self):
        from repro.core.autosar import AutosarAdc

        pe = ADCBlock("AD1", sample_time=1e-3)
        aut = AutosarAdc("AD2", sample_time=1e-3, group=0)
        assert aut.outputs(0, [1.65], ctx()) == pe.outputs(0, [1.65], ctx())

    def test_mcal_param_translation(self):
        from repro.core.autosar import AutosarAdc, AutosarDio, AutosarGpt, AutosarPwm

        adc = AutosarAdc("AD1", sample_time=1e-3, group=5)
        assert adc.bean["channel"] == 5
        pwm = AutosarPwm("P1", channel_id=2, period_frequency=8e3)
        assert pwm.bean["channel"] == 2 and pwm.bean["frequency"] == 8e3
        gpt = AutosarGpt("G1", channel_tick_period=2e-3)
        assert gpt.bean["period"] == 2e-3
        dio = AutosarDio("D1", channel_id=4, direction="DIO_OUTPUT")
        assert dio.bean["pin"] == 4 and dio.bean["direction"] == "output"

    def test_autosar_api_style_marker(self):
        from repro.core.autosar import AutosarPwm
        from repro.pe.halgen import ApiStyle

        assert AutosarPwm("P1").API_STYLE is ApiStyle.AUTOSAR
