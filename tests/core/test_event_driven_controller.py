"""The event-driven controller variant: algorithm inside a function-call
subsystem triggered by the TimerInt event.

Paper section 5: PE block events "can be used for the event-driven
triggering of a subsystem block execution"; on the target, "function-call
subsystems that are executed asynchronously are executed within interrupt
service routines of triggering events."  Here the *whole control law* is
the function-call subsystem and the timer event is its trigger — the same
diagram must behave identically in MIL and deployed.
"""

import pytest

from repro.casestudy import ServoConfig
from repro.control import PIDController, PIDGains, QuadratureSpeed, LowPassFilter
from repro.core import PEERTTarget
from repro.core.blocks import (
    PEBlockMode,
    ProcessorExpertConfig,
    PWMBlock,
    QuadDecBlock,
    TimerIntBlock,
)
from repro.model.graph import Model
from repro.model.library import (
    Constant,
    FunctionCallSubsystem,
    Inport,
    Outport,
    Scope,
    Subsystem,
    Sum,
)
from repro.plants import build_servo_plant
from repro.sim import HILSimulator, run_mil

TS = 1e-3
SETPOINT = 100.0


def build_event_driven_servo():
    """Controller: QD1 -> [FC subsystem: speed estimate + PI] -> PWM1,
    with the FC subsystem fired by TI1's OnInterrupt event."""
    cfg = ServoConfig(setpoint=SETPOINT)

    algo = FunctionCallSubsystem("algo")
    a = algo.inner
    pos_in = a.add(Inport("pos", index=0))
    speed = a.add(QuadratureSpeed("speed", counts_per_rev=400, sample_time=TS))
    filt = a.add(LowPassFilter("filt", cutoff_hz=80.0, sample_time=TS))
    ref = a.add(Constant("ref", value=SETPOINT))
    err = a.add(Sum("err", signs="+-"))
    pid = a.add(PIDController("pid", cfg.gains(), TS))
    duty_out = a.add(Outport("duty", index=0))
    a.connect(pos_in, speed)
    a.connect(speed, filt)
    a.connect(ref, err, 0, 0)
    a.connect(filt, err, 0, 1)
    a.connect(err, pid)
    a.connect(pid, duty_out)

    ctrl = Subsystem("controller")
    c = ctrl.inner
    c.add(ProcessorExpertConfig("PE", chip=cfg.chip))
    ti = c.add(TimerIntBlock("TI1", period=TS))
    count_in = c.add(Inport("count_in", index=0))
    qd = c.add(QuadDecBlock("QD1"))
    c.add(algo)
    pwm = c.add(PWMBlock("PWM1", frequency=cfg.pwm_frequency))
    out = c.add(Outport("duty_out", index=0))
    c.connect(count_in, qd)
    c.connect(qd, algo)
    c.connect(algo, pwm)
    c.connect(pwm, out)
    c.connect_event(ti, algo)

    m = Model("servo_ev")
    m.add(ctrl)
    plant = m.add(build_servo_plant())
    load = m.add(Constant("load", value=0.0))
    sc = m.add(Scope("speed_scope", label="speed"))
    m.connect(plant, ctrl, 0, 0)
    m.connect(ctrl, plant, 0, 0)
    m.connect(load, plant, 0, 1)
    m.connect(plant, sc, 1, 0)
    return m, algo


class TestEventDrivenController:
    def test_mil_tracks(self):
        m, algo = build_event_driven_servo()
        res = run_mil(m, t_final=0.6, dt=1e-4)
        assert res.final("speed") == pytest.approx(SETPOINT, abs=3.0)
        # the FC subsystem ran once per control period, not per base step
        assert algo.call_count == pytest.approx(0.6 / TS, abs=3)

    def test_build_generates_isr_for_fc_subsystem(self):
        m, _ = build_event_driven_servo()
        app = PEERTTarget(m).build()
        assert "void algo_isr(void)" in app.artifacts.files["servo_ev.c"]
        assert "algo" in app.artifacts.isr_costs

    def test_deployed_fc_runs_in_tick_isr(self):
        m, _ = build_event_driven_servo()
        app = PEERTTarget(m).build()
        device = app.deploy(PEBlockMode.HW)
        app.start()
        qdec = device.peripheral(app.project.beans["QD1"].resource_name)
        for k in range(1, 101):
            device.schedule(k * TS - 1e-6, (lambda kk=k: qdec.set_position(4 * kk)))
        pwm = device.peripheral(app.project.beans["PWM1"].resource_name)
        device.run_for(0.05)
        d_early = pwm.duty(0)
        device.run_for(0.05)
        # speed below setpoint -> the event-driven PI integrates duty up
        assert pwm.duty(0) > d_early > 0.0

    def test_hil_matches_mil(self):
        from repro.analysis import trajectory_rmse

        m1, _ = build_event_driven_servo()
        mil = run_mil(m1, t_final=0.3, dt=1e-4)
        m2, _ = build_event_driven_servo()
        app = PEERTTarget(m2).build()
        hil = HILSimulator(app, plant_dt=1e-4).run(0.3)
        assert trajectory_rmse(mil.t, mil["speed"], hil.t, hil["speed"]) < 5.0

    def test_tick_cost_includes_fc_body(self):
        m, _ = build_event_driven_servo()
        app = PEERTTarget(m).build()
        device = app.deploy(PEBlockMode.HW)
        app.start()
        device.run_for(10.5e-3)
        stats = app.profiler().stats(app.tick_vector)
        # the tick's execution time covers step + the FC subsystem body,
        # which holds the (expensive, float) PID
        fc_cost_s = app.artifacts.isr_costs["algo"] / 60e6
        assert stats.exec_avg > fc_cost_s
