"""Tests for the build-pipeline user hooks (the peert_make_rtw_hook.m
mechanism of paper section 3)."""

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.core.target import BUILD_HOOK_POINTS


class TestBuildHooks:
    def test_all_points_fire_in_order(self):
        sm = build_servo_model(ServoConfig())
        target = PEERTTarget(sm.model)
        fired = []
        for point in BUILD_HOOK_POINTS:
            target.add_hook(point, lambda t, *a, p=point: fired.append(p))
        target.build()
        assert fired == list(BUILD_HOOK_POINTS)

    def test_unknown_point_rejected(self):
        sm = build_servo_model(ServoConfig())
        with pytest.raises(ValueError, match="unknown hook point"):
            PEERTTarget(sm.model).add_hook("before_coffee", lambda t: None)

    def test_before_validate_can_adjust_beans(self):
        """The paper's example: the hook 'enables the code generation for
        methods used in the corresponding tlc file' — here it retunes a
        bean setting before validation locks it in."""
        sm = build_servo_model(ServoConfig(pwm_frequency=20e3))
        target = PEERTTarget(sm.model)

        def retune(t, project):
            project.bean("PWM1").set_property("frequency", 10e3)

        target.add_hook("before_validate", retune)
        app = target.build()
        assert app.project.bean("PWM1")["achieved_frequency"] == pytest.approx(
            10e3, rel=1e-3
        )

    def test_after_hal_can_inject_files(self):
        """Cooperation with external development tools: a hook drops a
        linker script into the build output."""
        sm = build_servo_model(ServoConfig())
        target = PEERTTarget(sm.model)
        target.add_hook(
            "after_hal",
            lambda t, artifacts, hal: artifacts.files.__setitem__(
                "linker.cmd", "/* custom memory map */\n"
            ),
        )
        app = target.build()
        assert "linker.cmd" in app.artifacts.files

    def test_hook_receives_artifacts(self):
        sm = build_servo_model(ServoConfig())
        target = PEERTTarget(sm.model)
        seen = {}
        target.add_hook("after_codegen", lambda t, a: seen.setdefault("loc", a.loc))
        target.build()
        assert seen["loc"] > 0

    def test_multiple_hooks_same_point(self):
        sm = build_servo_model(ServoConfig())
        target = PEERTTarget(sm.model)
        calls = []
        target.add_hook("entry", lambda t: calls.append(1))
        target.add_hook("entry", lambda t: calls.append(2))
        target.build()
        assert calls == [1, 2]
