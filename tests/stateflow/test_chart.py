"""Unit tests for the hierarchical state chart core."""

import pytest

from repro.stateflow import Chart, ChartError, State


def traced_chart():
    """Two-state chart recording action order in data['trace']."""
    ch = Chart("c")
    ch.data["trace"] = []

    def log(tag):
        return lambda d: d["trace"].append(tag)

    a = ch.add_state(State("a", entry=log("a.en"), during=log("a.du"), exit=log("a.ex")))
    b = ch.add_state(State("b", entry=log("b.en"), exit=log("b.ex")))
    ch.add_transition(a, b, event="go", action=log("t.ac"))
    ch.add_transition(b, a, event="back")
    return ch


class TestFlatChart:
    def test_start_enters_initial(self):
        ch = traced_chart()
        ch.start()
        assert ch.active_leaf.name == "a"
        assert ch.data["trace"] == ["a.en"]

    def test_dispatch_fires_exit_action_entry(self):
        ch = traced_chart()
        ch.start()
        assert ch.dispatch("go") is True
        assert ch.active_leaf.name == "b"
        assert ch.data["trace"] == ["a.en", "a.ex", "t.ac", "b.en"]

    def test_unknown_event_ignored(self):
        ch = traced_chart()
        ch.start()
        assert ch.dispatch("nope") is False
        assert ch.active_leaf.name == "a"

    def test_during_runs_on_step(self):
        ch = traced_chart()
        ch.start()
        ch.step()
        ch.step()
        assert ch.data["trace"].count("a.du") == 2

    def test_is_active(self):
        ch = traced_chart()
        ch.start()
        assert ch.is_active("a") and not ch.is_active("b")

    def test_dispatch_before_start_raises(self):
        ch = traced_chart()
        with pytest.raises(ChartError):
            ch.dispatch("go")

    def test_empty_chart_rejected(self):
        with pytest.raises(ChartError):
            Chart("empty").start()


class TestGuards:
    def test_guard_blocks_transition(self):
        ch = Chart()
        a = ch.add_state(State("a"))
        b = ch.add_state(State("b"))
        ch.add_transition(a, b, event="go", guard=lambda d: d.get("armed", False))
        ch.start()
        ch.dispatch("go")
        assert ch.active_leaf.name == "a"
        ch.data["armed"] = True
        ch.dispatch("go")
        assert ch.active_leaf.name == "b"

    def test_priority_orders_candidates(self):
        ch = Chart()
        a = ch.add_state(State("a"))
        b = ch.add_state(State("b"))
        c = ch.add_state(State("c"))
        ch.add_transition(a, b, event="go", priority=2)
        ch.add_transition(a, c, event="go", priority=1)
        ch.start()
        ch.dispatch("go")
        assert ch.active_leaf.name == "c"

    def test_eventless_transition_runs_to_completion(self):
        ch = Chart()
        a = ch.add_state(State("a"))
        b = ch.add_state(State("b"))
        c = ch.add_state(State("c"))
        ch.add_transition(a, b, guard=lambda d: d["x"] > 0)
        ch.add_transition(b, c, guard=lambda d: d["x"] > 1)
        ch.data["x"] = 2
        ch.start()  # chains a -> b -> c immediately
        assert ch.active_leaf.name == "c"

    def test_transition_cycle_detected(self):
        ch = Chart()
        a = ch.add_state(State("a"))
        b = ch.add_state(State("b"))
        ch.add_transition(a, b)  # unguarded eventless both ways
        ch.add_transition(b, a)
        with pytest.raises(ChartError, match="quiesce"):
            ch.start()


class TestHierarchy:
    @staticmethod
    def build():
        ch = Chart()
        ch.data["trace"] = []

        def log(tag):
            return lambda d: d["trace"].append(tag)

        run = ch.add_state(State("run", entry=log("run.en"), exit=log("run.ex")))
        slow = run.add_substate(State("slow", entry=log("slow.en"), exit=log("slow.ex")))
        fast = run.add_substate(State("fast", entry=log("fast.en"), exit=log("fast.ex")))
        idle = ch.add_state(State("idle", entry=log("idle.en"), exit=log("idle.ex")))
        ch.add_transition(slow, fast, event="up")
        ch.add_transition(run, idle, event="stop")  # from the composite
        ch.add_transition(idle, run, event="start")
        return ch

    def test_entering_composite_descends_to_initial(self):
        ch = self.build()
        ch.start()
        assert ch.active_leaf.name == "slow"
        assert ch.is_active("run")
        assert ch.data["trace"] == ["run.en", "slow.en"]

    def test_inner_transition_keeps_parent_active(self):
        ch = self.build()
        ch.start()
        ch.dispatch("up")
        assert ch.active_leaf.name == "fast"
        assert ch.is_active("run")
        # parent must not have exited
        assert "run.ex" not in ch.data["trace"]

    def test_composite_transition_exits_child_first(self):
        ch = self.build()
        ch.start()
        ch.data["trace"].clear()
        ch.dispatch("stop")  # defined on the composite 'run'
        assert ch.data["trace"] == ["slow.ex", "run.ex", "idle.en"]
        assert ch.active_leaf.name == "idle"

    def test_outer_transition_wins_over_inner(self):
        ch = self.build()
        # also add an inner transition on the same event; outer-first search
        run = ch.top[0]
        slow, fast = run.substates
        ch.add_transition(slow, fast, event="stop")
        ch.start()
        ch.dispatch("stop")
        assert ch.active_leaf.name == "idle"

    def test_reenter_composite(self):
        ch = self.build()
        ch.start()
        ch.dispatch("up")
        ch.dispatch("stop")
        ch.dispatch("start")
        # re-entry goes to the *initial* substate, not the last active one
        assert ch.active_leaf.name == "slow"

    def test_state_cannot_have_two_parents(self):
        s = State("s")
        p1, p2 = State("p1"), State("p2")
        p1.add_substate(s)
        with pytest.raises(ChartError):
            p2.add_substate(s)


class TestSelfTransition:
    def test_self_transition_runs_exit_entry(self):
        ch = Chart()
        ch.data["n"] = 0

        def inc(d):
            d["n"] += 1

        a = ch.add_state(State("a", entry=inc))
        ch.add_transition(a, a, event="again")
        ch.start()
        assert ch.data["n"] == 1
        ch.dispatch("again")
        assert ch.data["n"] == 2
