"""Tests for the chart <-> block-diagram adapters."""

import pytest

from repro.model import Model
from repro.model.engine import simulate
from repro.model.library import Constant, PulseGenerator, Scope, Step, Terminator
from repro.stateflow import Chart, ChartBlock, State, TriggeredChartBlock


def mode_chart():
    """Manual/auto chart: 'auto_btn' toggles mode; output data 'mode'."""
    ch = Chart("modes")

    def set_mode(v):
        return lambda d: d.__setitem__("mode", v)

    manual = ch.add_state(State("manual", entry=set_mode(0.0)))
    auto = ch.add_state(State("auto", entry=set_mode(1.0)))
    ch.add_transition(manual, auto, event="btn")
    ch.add_transition(auto, manual, event="btn")
    return ch


class TestChartBlock:
    def test_edge_event_toggles_state(self):
        m = Model()
        # button pressed (rising edge) at t in [0.3, 0.5)
        btn = m.add(Step("btn", step_time=0.3))
        cb = m.add(
            ChartBlock(
                "modes",
                mode_chart(),
                inputs=["btn"],
                outputs=["mode"],
                sample_time=0.01,
                edge_events=["btn"],
            )
        )
        sc = m.add(Scope("sc", label="mode"))
        m.connect(btn, cb)
        m.connect(cb, sc)
        res = simulate(m, t_final=0.6, dt=0.01)
        assert res.at("mode", 0.0) == 0.0
        assert res.at("mode", 0.5) == 1.0  # one rising edge -> one toggle

    def test_level_does_not_retrigger(self):
        # button held high: exactly one dispatch, not one per step
        m = Model()
        btn = m.add(Step("btn", step_time=0.1))
        cb = m.add(
            ChartBlock(
                "modes",
                mode_chart(),
                inputs=["btn"],
                outputs=["mode"],
                sample_time=0.01,
                edge_events=["btn"],
            )
        )
        sc = m.add(Scope("sc", label="mode"))
        m.connect(btn, cb)
        m.connect(cb, sc)
        res = simulate(m, t_final=0.5, dt=0.01)
        assert res.final("mode") == 1.0

    def test_two_edges_toggle_twice(self):
        m = Model()
        btn = m.add(PulseGenerator("btn", period=0.2, duty=0.5))
        cb = m.add(
            ChartBlock(
                "modes",
                mode_chart(),
                inputs=["btn"],
                outputs=["mode"],
                sample_time=0.01,
                edge_events=["btn"],
            )
        )
        sc = m.add(Scope("sc", label="mode"))
        m.connect(btn, cb)
        m.connect(cb, sc)
        res = simulate(m, t_final=0.3, dt=0.01)
        # edges at t=0 and t=0.2 -> toggled twice -> back to 0
        assert res.final("mode") == 0.0
        assert res.at("mode", 0.1) == 1.0

    def test_unknown_edge_event_rejected(self):
        with pytest.raises(ValueError):
            ChartBlock("c", mode_chart(), inputs=["x"], edge_events=["y"])


class TestTriggeredChartBlock:
    def test_triggered_by_event_line(self):
        from tests.model.test_subsystems import EveryNSteps

        ch = Chart("count")
        ch.data["n"] = 0.0

        def inc(d):
            d["n"] += 1.0

        s = ch.add_state(State("s", during=inc))
        m = Model()
        src = m.add(EveryNSteps("src", n=2))
        tb = m.add(TriggeredChartBlock("tb", ch, outputs=["n"], trigger_event=None))
        sc = m.add(Scope("sc", label="n"))
        t = m.add(Terminator("t"))
        m.connect(src, t)
        m.connect(tb, sc)
        m.connect_event(src, tb)
        res = simulate(m, t_final=0.009, dt=1e-3)
        # fired at steps 0,2,4,6,8 -> 5 during actions
        assert res.final("n") == 5.0
