"""Tests for history junctions on composite states."""

import pytest

from repro.stateflow import Chart, ChartError, State


def machine(history: bool):
    ch = Chart()
    run = ch.add_state(State("run", history=history))
    slow = run.add_substate(State("slow"))
    fast = run.add_substate(State("fast"))
    idle = ch.add_state(State("idle"))
    ch.add_transition(slow, fast, event="up")
    ch.add_transition(fast, slow, event="down")
    ch.add_transition(run, idle, event="stop")
    ch.add_transition(idle, run, event="start")
    ch.start()
    return ch


class TestHistoryJunction:
    def test_without_history_reenters_initial(self):
        ch = machine(history=False)
        ch.dispatch("up")      # slow -> fast
        ch.dispatch("stop")    # leave run
        ch.dispatch("start")   # re-enter
        assert ch.active_leaf.name == "slow"

    def test_with_history_resumes_last_substate(self):
        ch = machine(history=True)
        ch.dispatch("up")      # slow -> fast
        ch.dispatch("stop")
        ch.dispatch("start")
        assert ch.active_leaf.name == "fast"  # resumed, not reset

    def test_history_tracks_multiple_cycles(self):
        ch = machine(history=True)
        ch.dispatch("up")
        ch.dispatch("stop"); ch.dispatch("start")
        assert ch.active_leaf.name == "fast"
        ch.dispatch("down")    # fast -> slow
        ch.dispatch("stop"); ch.dispatch("start")
        assert ch.active_leaf.name == "slow"

    def test_first_entry_uses_initial(self):
        ch = machine(history=True)
        assert ch.active_leaf.name == "slow"

    def test_nested_history(self):
        ch = Chart()
        outer = ch.add_state(State("outer", history=True))
        mid = outer.add_substate(State("mid", history=True))
        a = mid.add_substate(State("a"))
        b = mid.add_substate(State("b"))
        off = ch.add_state(State("off"))
        ch.add_transition(a, b, event="flip")
        ch.add_transition(outer, off, event="kill")
        ch.add_transition(off, outer, event="boot")
        ch.start()
        ch.dispatch("flip")
        ch.dispatch("kill")
        ch.dispatch("boot")
        # both levels of history resume
        assert ch.active_leaf.name == "b"

    def test_reset_clears_history(self):
        ch = machine(history=True)
        ch.dispatch("up")
        ch.dispatch("stop")
        ch.reset()
        ch.start()
        assert ch.active_leaf.name == "slow"  # fresh power-up, no memory

    def test_inner_transitions_update_history(self):
        # exiting only the leaf (inner transition) must still record it
        ch = machine(history=True)
        ch.dispatch("up")      # records slow as run's last child? no:
        # up exits 'slow' (parent run stays active): run._last_active = slow
        # then stop exits fast+run: run._last_active = fast
        ch.dispatch("stop")
        ch.dispatch("start")
        assert ch.active_leaf.name == "fast"
