"""Multirate cascade control: 10 kHz current loop inside the 1 kHz speed
loop — the workload the paper's powertrain motivation implies (multiple
rates in one generated application, dispatched from one base-rate timer
with rate guards).
"""

import pytest

from repro.analysis import step_metrics
from repro.casestudy import ServoConfig
from repro.control import LowPassFilter, PIDController, PIDGains, QuadratureSpeed
from repro.core import PEERTTarget
from repro.core.blocks import (
    ADCBlock,
    PEBlockMode,
    ProcessorExpertConfig,
    PWMBlock,
    QuadDecBlock,
    TimerIntBlock,
)
from repro.model.graph import Model
from repro.model.library import Bias, Constant, Gain, Inport, Outport, Saturation, Scope, Subsystem, Sum
from repro.plants import build_servo_plant
from repro.sim import HILSimulator, run_mil

TS_FAST = 1e-4   # current loop, 10 kHz (the base rate)
TS_SLOW = 1e-3   # speed loop, 1 kHz
SETPOINT = 100.0

#: current-sense scaling: mid-rail at 0 A, rails at +/-5 A
SENSE_OFFSET = 1.65
SENSE_GAIN = 1.65 / 5.0


def build_cascade_model():
    cfg = ServoConfig(setpoint=SETPOINT)
    ctrl = Subsystem("controller")
    c = ctrl.inner
    c.add(ProcessorExpertConfig("PE", chip="MC56F8367"))
    c.add(TimerIntBlock("TI1", period=TS_FAST))

    # ---- outer speed loop (1 kHz blocks) --------------------------------
    count_in = c.add(Inport("count_in", index=0))
    qd = c.add(QuadDecBlock("QD1"))
    speed = c.add(QuadratureSpeed("speed", counts_per_rev=400, sample_time=TS_SLOW))
    filt = c.add(LowPassFilter("filt", cutoff_hz=80.0, sample_time=TS_SLOW))
    ref = c.add(Constant("ref", value=SETPOINT))
    err_w = c.add(Sum("err_w", signs="+-"))
    # outer PI outputs a current request in amps; the current-commanded
    # motor is ~an integrator of gain Kt/J ~ 2125 (rad/s^2)/A, so
    # kp = 2*zeta*wn/K, ki = wn^2/K at wn ~ 30 rad/s critically damped
    pid_w = c.add(PIDController(
        "pid_w", PIDGains(kp=0.03, ki=0.45, u_min=-4.0, u_max=4.0), TS_SLOW,
    ))
    c.connect(count_in, qd)
    c.connect(qd, speed)
    c.connect(speed, filt)
    c.connect(ref, err_w, 0, 0)
    c.connect(filt, err_w, 0, 1)
    c.connect(err_w, pid_w)

    # ---- inner current loop (10 kHz blocks) ------------------------------
    sense_in = c.add(Inport("isense_in", index=1))
    adc = c.add(ADCBlock("AD1", sample_time=TS_FAST))
    to_amps_v = c.add(Gain("to_volts", gain=3.3 / 4096))
    de_bias = c.add(Bias("de_bias", bias=-SENSE_OFFSET))
    to_amps = c.add(Gain("to_amps", gain=1.0 / SENSE_GAIN))
    err_i = c.add(Sum("err_i", signs="+-"))
    # PI current controller -> duty around the 0.5 bipolar midpoint
    # (bandwidth ~600 Hz: kp * 2*Vsup / L well under the 10 kHz rate)
    pid_i = c.add(PIDController(
        "pid_i", PIDGains(kp=0.02, ki=30.0, u_min=-0.5, u_max=0.5), TS_FAST,
    ))
    mid = c.add(Bias("mid", bias=0.5))
    clamp = c.add(Saturation("clamp", lower=0.0, upper=1.0))
    pwm = c.add(PWMBlock("PWM1", frequency=20e3))
    duty_out = c.add(Outport("duty_out", index=0))
    c.connect(sense_in, adc)
    c.connect(adc, to_amps_v)
    c.connect(to_amps_v, de_bias)
    c.connect(de_bias, to_amps)
    c.connect(pid_w, err_i, 0, 0)
    c.connect(to_amps, err_i, 0, 1)
    c.connect(err_i, pid_i)
    c.connect(pid_i, mid)
    c.connect(mid, clamp)
    c.connect(clamp, pwm)
    c.connect(pwm, duty_out)

    # ---- top level --------------------------------------------------------
    m = Model("cascade")
    m.add(ctrl)
    plant = m.add(build_servo_plant())
    load = m.add(Constant("load", value=0.0))
    # current sense electronics on the plant side
    i_gain = m.add(Gain("i_gain", gain=SENSE_GAIN))
    i_bias = m.add(Bias("i_bias", bias=SENSE_OFFSET))
    sc_w = m.add(Scope("speed_scope", label="speed"))
    sc_i = m.add(Scope("current_scope", label="current"))
    m.connect(plant, ctrl, 0, 0)              # counts
    m.connect(plant, i_gain, 2, 0)            # amps -> sense volts
    m.connect(i_gain, i_bias)
    m.connect(i_bias, ctrl, 0, 1)
    m.connect(ctrl, plant, 0, 0)
    m.connect(load, plant, 0, 1)
    m.connect(plant, sc_w, 1, 0)
    m.connect(plant, sc_i, 2, 0)
    return m


class TestCascadeMIL:
    def test_tracks_speed_setpoint(self):
        m = build_cascade_model()
        res = run_mil(m, t_final=0.6, dt=TS_FAST)
        met = step_metrics(res.t, res["speed"], reference=SETPOINT)
        assert met.final_value == pytest.approx(SETPOINT, abs=4.0)
        assert met.overshoot_pct < 25.0

    def test_current_stays_bounded(self):
        import numpy as np

        m = build_cascade_model()
        res = run_mil(m, t_final=0.4, dt=TS_FAST)
        assert np.max(np.abs(res["current"])) < 6.0  # sense range respected


class TestCascadeCodegen:
    def test_rate_guard_emitted_for_slow_blocks(self):
        m = build_cascade_model()
        app = PEERTTarget(m).build()
        assert app.dt == pytest.approx(TS_FAST)
        src = app.artifacts.files["cascade.c"]
        assert "(rt_tick % 10U) == 0U" in src  # 1 kHz blocks guarded

    def test_deployed_multirate_matches_mil(self):
        from repro.analysis import trajectory_rmse

        m1 = build_cascade_model()
        mil = run_mil(m1, t_final=0.3, dt=TS_FAST)
        m2 = build_cascade_model()
        app = PEERTTarget(m2).build()
        hil = HILSimulator(app, plant_dt=TS_FAST).run(0.3)
        rmse = trajectory_rmse(mil.t, mil["speed"], hil.t, hil["speed"])
        assert rmse < 8.0

    def test_tick_rate_is_10khz_on_target(self):
        m = build_cascade_model()
        app = PEERTTarget(m).build()
        app.deploy(PEBlockMode.HW)
        app.start()
        app.run_for(20.1e-3)
        ticks = len(app.device.cpu.records_for(app.tick_vector))
        assert ticks == pytest.approx(200, abs=3)

    def test_cpu_load_reflects_both_rates(self):
        m = build_cascade_model()
        app = PEERTTarget(m).build()
        app.deploy(PEBlockMode.HW)
        app.start()
        app.run_for(0.1)
        load = app.profiler().cpu_load(0.1)
        # the double-precision inner loop at 10 kHz is heavy on the
        # FPU-less DSP but must still fit
        assert 0.05 < load < 0.95
