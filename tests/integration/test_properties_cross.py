"""Cross-cutting property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.comm import PacketCodec, PacketDecoder, PacketType
from repro.mcu.clock import PrescalerChain
from repro.mcu.peripherals.qdec import QuadratureDecoder
from repro.model import Model
from repro.model.engine import simulate
from repro.model.library import Constant, Gain, Scope, StateSpace, Sum, UnitDelay
from repro.stateflow import Chart, State


class TestEngineProperties:
    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_first_order_lag_matches_closed_form(self, k, tau):
        """RK4 on dx = (k*u - x)/tau tracks the analytic exponential."""
        m = Model()
        u = m.add(Constant("u", value=1.0))
        plant = m.add(StateSpace("p", A=[[-1.0 / tau]], B=[[k / tau]], C=[[1.0]]))
        sc = m.add(Scope("s", label="y"))
        m.connect(u, plant)
        m.connect(plant, sc)
        res = simulate(m, t_final=min(3 * tau, 2.0), dt=1e-3)
        expected = k * (1 - np.exp(-res.t / tau))
        assert np.max(np.abs(res["y"] - expected)) < 1e-4 * max(1.0, k)

    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_gain_chain_is_product(self, gains):
        m = Model()
        src = m.add(Constant("c", value=1.0))
        prev = src
        for i, g in enumerate(gains):
            blk = m.add(Gain(f"g{i}", gain=g))
            m.connect(prev, blk)
            prev = blk
        sc = m.add(Scope("s", label="y"))
        m.connect(prev, sc)
        res = simulate(m, t_final=0.002, dt=1e-3)
        assert res.final("y") == pytest.approx(math.prod(gains), rel=1e-12, abs=1e-12)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_multirate_hold_counts(self, k1, k2):
        """A discrete block at k*dt holds its output exactly k steps."""
        dt = 1e-3
        m = Model()
        from repro.model.library import Clock

        clk = m.add(Clock("t"))
        d = m.add(UnitDelay("d", sample_time=k1 * k2 * dt))
        sc = m.add(Scope("s", label="y"))
        m.connect(clk, d)
        m.connect(d, sc)
        res = simulate(m, t_final=dt * k1 * k2 * 4, dt=dt)
        y = res["y"]
        changes = np.count_nonzero(np.diff(y))
        assert changes <= 4


class TestChartProperties:
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_ring_chart_position(self, n_states, n_events):
        """A ring of N states advanced K times ends at state K mod N."""
        ch = Chart()
        states = [ch.add_state(State(f"s{i}")) for i in range(n_states)]
        for i in range(n_states):
            ch.add_transition(states[i], states[(i + 1) % n_states], event="go")
        ch.start()
        for _ in range(n_events):
            ch.dispatch("go")
        assert ch.active_leaf.name == f"s{n_events % n_states}"

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_chart_never_leaves_state_space(self, events):
        ch = Chart()
        s1 = ch.add_state(State("s1"))
        s2 = ch.add_state(State("s2"))
        ch.add_transition(s1, s2, event="a")
        ch.add_transition(s2, s1, event="b")
        ch.start()
        for e in events:
            ch.dispatch(e)
            assert ch.active_leaf.name in ("s1", "s2")


class TestCommProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(PacketType)),
                st.lists(st.integers(0, 0xFFFF), max_size=20),
            ),
            max_size=10,
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_with_garbage_between_frames(self, frames, data):
        """Frames interleaved with arbitrary junk all decode (in order)."""
        codec, dec = PacketCodec(), PacketDecoder()
        stream = bytearray()
        for ptype, words in frames:
            junk = data.draw(st.binary(max_size=6))
            # junk must not contain SOF fragments that alias a frame header;
            # the decoder recovers anyway, but words could then be consumed.
            stream += bytes(b for b in junk if b != 0xA5)
            stream += codec.encode(ptype, words)
        dec.feed(bytes(stream))
        got = [(p.ptype, list(p.words)) for p in dec.packets]
        want = [(pt, list(w)) for pt, w in frames]
        assert got == want

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_qdec_delta_inverse(self, a, b):
        d = QuadratureDecoder.count_delta(a, b)
        assert (b + d) % (1 << 16) == a
        assert -(1 << 15) <= d < (1 << 15)


class TestClockProperties:
    @given(
        st.floats(min_value=1e6, max_value=100e6),
        st.floats(min_value=1e-6, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_solver_result_is_achievable_and_near_optimal(self, f_in, period):
        chain = PrescalerChain([1, 2, 4, 8, 16], 0xFFFF)
        sol = chain.solve_period(f_in, period)
        if sol is None:
            # genuinely out of range
            assert (
                period > chain.max_period(f_in) * 0.999
                or period < chain.min_period(f_in) * 1.001
            )
            return
        # achieved value lies exactly on the divider grid
        assert sol.achieved == pytest.approx(sol.prescaler * sol.modulo / f_in)
        assert 1 <= sol.modulo <= 0xFFFF
        # no exhaustive alternative beats it by more than float fuzz
        best = min(
            abs(p * m / f_in - period)
            for p in (1, 2, 4, 8, 16)
            for m in (
                max(1, min(0xFFFF, int(period * f_in / p))),
                max(1, min(0xFFFF, int(period * f_in / p) + 1)),
            )
        )
        assert abs(sol.achieved - period) <= best * (1 + 1e-9) + 1e-15
