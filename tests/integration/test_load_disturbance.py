"""Load-disturbance rejection — the servo bench test every drive gets.

A step load torque hits the shaft mid-run; the speed loop must dip and
recover, identically in MIL and deployed (HIL).
"""

import numpy as np
import pytest

from repro.analysis import trajectory_rmse
from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.model.library import Step
from repro.sim import HILSimulator, run_mil

SETPOINT = 100.0
T_LOAD = 0.5
TAU_LOAD = 0.015  # N m — a hefty bite for the small motor
T_FINAL = 1.0


def build_with_load_step():
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    m = sm.model
    # swap the constant load for a step disturbance
    m.remove("load")
    load = m.add(Step("load", step_time=T_LOAD, final=TAU_LOAD))
    m.connect(load, sm.plant, 0, 1)
    return sm


class TestLoadDisturbance:
    def test_mil_dips_and_recovers(self):
        sm = build_with_load_step()
        res = run_mil(sm.model, t_final=T_FINAL, dt=1e-4)
        speed = res["speed"]
        pre = res.at("speed", T_LOAD - 0.02)
        dip = float(np.min(speed[res.t > T_LOAD]))
        final = res.final("speed")
        assert pre == pytest.approx(SETPOINT, abs=2.0)
        assert dip < SETPOINT - 5.0        # the load bites
        assert final == pytest.approx(SETPOINT, abs=2.0)  # integral action recovers

    def test_duty_rises_to_carry_the_load(self):
        sm = build_with_load_step()
        res = run_mil(sm.model, t_final=T_FINAL, dt=1e-4)
        duty_before = res.at("duty", T_LOAD - 0.02)
        duty_after = res.final("duty")
        assert duty_after > duty_before + 0.01

    def test_hil_matches_mil_through_the_disturbance(self):
        sm1 = build_with_load_step()
        mil = run_mil(sm1.model, t_final=T_FINAL, dt=1e-4)
        sm2 = build_with_load_step()
        app = PEERTTarget(sm2.model).build()
        hil = HILSimulator(app, plant_dt=1e-4).run(T_FINAL)
        rmse = trajectory_rmse(mil.t, mil["speed"], hil.t, hil["speed"])
        assert rmse < 5.0
        assert hil.final("speed") == pytest.approx(SETPOINT, abs=3.0)
