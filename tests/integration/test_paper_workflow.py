"""The complete paper workflow as a single integration test.

Follows section 2's V-model: model-in-the-loop validation, the fixed-
point conversion of section 7, code generation through PEERT, processor-
in-the-loop validation over RS-232, and hardware-in-the-loop — asserting
the consistency guarantees the paper promises at every rung.
"""

import numpy as np
import pytest

from repro.analysis import step_metrics, trajectory_rmse
from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.sim import HILSimulator, PILSimulator, run_mil

SETPOINT = 100.0
T = 0.4
DT = 1e-4


@pytest.fixture(scope="module")
def workflow():
    """Run the whole cycle once; individual tests assert on the pieces."""
    out = {}
    servo = build_servo_model(ServoConfig(setpoint=SETPOINT, fixed_point=True))
    out["servo"] = servo
    out["sig0"] = servo.model.structural_signature()
    out["mil"] = run_mil(servo.model, t_final=T, dt=DT)
    app = PEERTTarget(servo.model).build()
    out["app"] = app
    pil = PILSimulator(app, baud=115200, plant_dt=DT)
    out["pil"] = pil.run(T)
    out["pil_prof"] = pil.profiler()

    servo2 = build_servo_model(ServoConfig(setpoint=SETPOINT, fixed_point=True))
    app2 = PEERTTarget(servo2.model).build()
    hil = HILSimulator(app2, plant_dt=DT)
    out["hil"] = hil.run(T)
    return out


class TestWorkflow:
    def test_mil_validates_the_design(self, workflow):
        m = step_metrics(workflow["mil"].t, workflow["mil"]["speed"], SETPOINT)
        assert m.final_value == pytest.approx(SETPOINT, abs=3.0)
        assert m.overshoot_pct < 15

    def test_codegen_artifacts_complete(self, workflow):
        app = workflow["app"]
        files = app.artifacts.files
        assert {"servo.c", "servo.h", "main.c", "Makefile", "PE_Types.h"} <= set(files)
        # every bean contributed its HAL pair
        for bean in app.project.all_beans():
            assert f"{bean.name}.c" in files and f"{bean.name}.h" in files

    def test_pil_confirms_the_controller(self, workflow):
        r = workflow["pil"]
        assert r.result.final("speed") == pytest.approx(SETPOINT, abs=5.0)
        assert r.crc_errors == 0
        stats = workflow["pil_prof"].stats(workflow["app"].tick_vector)
        assert stats.count == pytest.approx(T / 1e-3, abs=3)

    def test_hil_matches_pil_shape(self, workflow):
        rmse = trajectory_rmse(
            workflow["pil"].result.t, workflow["pil"].result["speed"],
            workflow["hil"].t, workflow["hil"]["speed"],
        )
        assert rmse < 10.0

    def test_mil_matches_deployed_shape(self, workflow):
        rmse = trajectory_rmse(
            workflow["mil"].t, workflow["mil"]["speed"],
            workflow["hil"].t, workflow["hil"]["speed"],
        )
        assert rmse < 10.0

    def test_single_model_untouched(self, workflow):
        assert workflow["servo"].model.structural_signature() == workflow["sig0"]

    def test_fixed_point_cost_is_embeddable(self, workflow):
        app = workflow["app"]
        # Q15 controller step uses a small slice of the 1 ms period
        step_time = app.artifacts.step_cost_cycles / 60e6
        assert step_time < 0.05e-3

    def test_memory_fits_the_chip(self, workflow):
        app = workflow["app"]
        assert app.artifacts.ram_bytes < app.project.chip.ram_bytes
        assert app.artifacts.flash_bytes < app.project.chip.flash_bytes
