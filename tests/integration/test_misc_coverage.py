"""Coverage-gap tests: small behaviours not exercised elsewhere."""

import numpy as np
import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.model import Model
from repro.model.library import Constant, Gain, Inport, Outport, Scope, Subsystem
from repro.sim import ControllerProxy
from repro.sim.pil import PILResult


class TestModelDescribe:
    def test_lists_blocks_lines_and_rates(self):
        sm = build_servo_model(ServoConfig())
        text = sm.model.describe()
        assert "Model 'servo'" in text
        assert "controller: Subsystem" in text
        assert "PE: ProcessorExpertConfig" in text   # expanded subsystem
        assert "Ts=0.001s" in text                   # discrete rate shown
        assert "-->" in text

    def test_event_lines_marked(self):
        sm = build_servo_model(ServoConfig())
        # the case-study controller has TI1 wired by... no event line by
        # default; build one
        from tests.core.test_event_driven_controller import build_event_driven_servo

        m, _ = build_event_driven_servo()
        assert "(function-call)" in m.describe()


class TestControllerProxy:
    def test_bad_port_rejected(self):
        p = ControllerProxy("c", n_in=1, n_out=1)
        with pytest.raises(ValueError):
            p.set_output(3, 1.0)

    def test_outputs_hold_values(self):
        from repro.model.block import BlockContext

        p = ControllerProxy("c", n_in=0, n_out=2)
        p.set_output(1, 0.7)
        assert p.outputs(0.0, [], BlockContext()) == [0.0, 0.7]


class TestPILResultProps:
    def test_empty_result_edge_cases(self):
        from repro.model.result import SimulationResult

        r = PILResult(
            result=SimulationResult(np.array([0.0]), {}),
            control_period=1e-3,
            bytes_to_mcu=0, bytes_to_host=0, crc_errors=0, steps=0,
        )
        assert r.bytes_per_step == 0.0
        assert r.line_utilization(1e-4) == 0.0
        assert r.mean_rtt == 0.0
        assert r.mean_data_latency == 0.0
        assert r.max_data_latency == 0.0


class TestMilModeReset:
    def test_nested_pe_blocks_reset(self):
        from repro.core.blocks import PEBlockMode
        from repro.sim.mil import _reset_modes

        sm = build_servo_model(ServoConfig())
        sm.pwm_block.mode = PEBlockMode.HW
        _reset_modes(sm.model)
        assert sm.pwm_block.mode is PEBlockMode.MIL


class TestVexeMemoryReport:
    def test_before_and_after_load(self):
        from repro.codegen import ISRTask, VirtualExecutable
        from repro.mcu import MCUDevice, MC56F8367

        vx = VirtualExecutable("app", None)
        rep = vx.memory_report
        assert rep["ram_bytes"] == 0 and "stack_bytes" not in rep
        vx.add_task(ISRTask("t", priority=1, cycles=100))
        dev = MCUDevice(MC56F8367)
        vx.load(dev)
        dev.intc.request("t")
        dev.run_for(1e-3)
        rep = vx.memory_report
        assert rep["stack_bytes"] >= 64
        assert rep["max_nesting"] == 1

    def test_double_load_rejected(self):
        from repro.codegen import VirtualExecutable
        from repro.mcu import MCUDevice, MC56F8367

        vx = VirtualExecutable("app")
        vx.load(MCUDevice(MC56F8367))
        with pytest.raises(RuntimeError):
            vx.load(MCUDevice(MC56F8367))

    def test_add_task_after_load_rejected(self):
        from repro.codegen import ISRTask, VirtualExecutable
        from repro.mcu import MCUDevice, MC56F8367

        vx = VirtualExecutable("app")
        vx.load(MCUDevice(MC56F8367))
        with pytest.raises(RuntimeError):
            vx.add_task(ISRTask("late", priority=1, cycles=1))
