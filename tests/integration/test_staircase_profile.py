"""The servo bench profile: staircase set-point tracking (the classic
demo sequence the case-study keyboard drives manually)."""

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.sim import run_mil

PROFILE = [(0.0, 50.0), (0.4, 150.0), (0.8, 80.0)]


class TestStaircaseProfile:
    def test_tracks_every_level(self):
        sm = build_servo_model(ServoConfig(setpoint=PROFILE))
        res = run_mil(sm.model, t_final=1.2, dt=1e-4)
        assert res.at("speed", 0.38) == pytest.approx(50.0, abs=3.0)
        assert res.at("speed", 0.78) == pytest.approx(150.0, abs=4.0)
        assert res.at("speed", 1.18) == pytest.approx(80.0, abs=3.0)

    def test_profile_deploys(self):
        from repro.core import PEERTTarget
        from repro.sim import HILSimulator

        sm = build_servo_model(ServoConfig(setpoint=PROFILE))
        app = PEERTTarget(sm.model).build()
        # the Staircase block generates as a lookup over rt_time
        assert "rt_staircase" in app.artifacts.files["servo.c"]
        res = HILSimulator(app, plant_dt=1e-4).run(0.6)
        assert res.at("speed", 0.38) == pytest.approx(50.0, abs=4.0)
        assert res.final("speed") == pytest.approx(150.0, abs=20.0)  # mid-rise
