"""Failure-injection integration tests.

Exercises the system's behaviour when things go wrong: controller
overruns, watchdog expiry, saturated and corrupted PIL links, sensor
dropouts — the situations PIL exists to expose before the hardware does.
"""

import numpy as np
import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.core.blocks import PEBlockMode
from repro.mcu.interrupts import InterruptSource
from repro.rt import BareBoardRuntime, Profiler
from repro.mcu import MCUDevice, MC56F8367
from repro.sim import HILSimulator, PILSimulator

SETPOINT = 100.0


class TestControllerOverrun:
    def test_overrun_detected_by_profiler(self):
        """A step that costs more than its period shows up as overruns."""
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        app.artifacts.step_cost_cycles = 1.4 * 60e6 * app.dt  # 140 % load
        hil = HILSimulator(app, plant_dt=1e-4)
        hil.run(0.1)
        jit = hil.profiler().jitter(app.tick_vector, app.tick_period)
        assert jit.overruns > 0

    def test_watchdog_catches_stuck_step(self):
        """The watchdog fires when the tick stops servicing it."""
        dev = MCUDevice(MC56F8367)
        wd = dev.wdog(0)
        wd.configure(5e-3)
        resets = []
        wd.on_reset = lambda: resets.append(dev.time)

        alive = {"running": True}

        def step():
            if alive["running"]:
                wd.kick()

        rt = BareBoardRuntime(dev, 1e-3, step, step_cycles=600)
        rt.install()
        rt.start()
        wd.start()
        dev.run_for(20e-3)
        assert resets == []  # healthy loop services the dog
        alive["running"] = False  # the step "hangs" (stops kicking)
        dev.run_for(20e-3)
        assert len(resets) >= 1
        assert resets[0] == pytest.approx(dev.time - 20e-3 + 5e-3, abs=2e-3)


class TestLinkFaults:
    def test_pil_survives_heavy_corruption(self):
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4, line_error_rate=0.05)
        r = pil.run(0.3)
        assert r.crc_errors > 3           # faults happened and were caught
        speeds = r.result["speed"]
        assert np.max(np.abs(speeds)) < 500  # loop never runs away

    def test_pil_with_total_sensor_dropout(self):
        """All host->MCU packets dropped: the controller holds its last
        (zero) sensor data and integrates the duty up — bounded by the
        saturation, no crash."""
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4, line_drop_rate=1.0)
        r = pil.run(0.2)
        assert r.steps > 150              # the board keeps ticking
        duty = r.result["duty"]
        assert np.all(duty <= 1.0) and np.all(duty >= 0.0)

    def test_crc_never_accepts_corrupted_words(self):
        """Under corruption, accepted packets are exact (CRC-8 filters the
        rest) — checked by injecting a known constant sensor value."""
        from repro.comm import PacketCodec, PacketDecoder, PacketType, SerialLine
        from repro.comm.host import HostSerialPort

        dev = MCUDevice(MC56F8367)
        line = SerialLine(dev, error_rate=0.08, seed=7)
        sci = dev.sci(0)
        sci.configure(115200)
        sci.connect(line, 0)
        line.declare_baud(0, sci.baud)
        host = HostSerialPort(dev, 115200)
        host.connect(line, 1)
        codec, dec = PacketCodec(), PacketDecoder()
        host.on_byte = None  # buffered
        for _ in range(300):
            sci.send(codec.encode(PacketType.DATA, [0x1234, 0x5678]))
        dev.run_for(1.0)
        dec.feed(host.receive())
        assert dec.crc_errors > 0
        assert len(dec.packets) > 0
        for pkt in dec.packets:
            assert pkt.words == (0x1234, 0x5678)


class TestDeviceFaults:
    def test_mcu_reset_recovers(self):
        """A power-on reset clears peripheral state; the firmware image
        (registered vectors) persists and the loop restarts."""
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        dev = app.deploy(PEBlockMode.HW)
        app.start()
        dev.run_for(20e-3)
        steps_before = app.step_count
        assert steps_before >= 19
        dev.reset()
        assert dev.time == 0.0
        # rebind/restart (re-flash-and-boot after the brown-out)
        for bean in app.project.beans.values():
            bean.bind(dev, bean.resource_name)
        app._enable_peripherals()
        dev.run_for(20e-3)
        assert app.step_count > steps_before

    def test_interrupt_storm_starves_lower_priorities_only(self):
        """An interrupt storm on a high-priority vector delays but does
        not lose the periodic work (non-preemptive queueing)."""
        dev = MCUDevice(MC56F8367)
        steps = []
        rt = BareBoardRuntime(dev, 1e-3, lambda: steps.append(dev.time), 600)
        rt.install()
        dev.intc.register(InterruptSource("storm", priority=0, cycles=300))
        rt.start()
        t = 0.0
        while t < 50e-3:
            dev.schedule(t, lambda: dev.intc.request("storm"))
            t += 0.2e-3  # 5 kHz storm, ~1.5 % load each
        dev.run_for(52e-3)
        assert len(steps) >= 50  # no tick lost
        prof = Profiler(dev)
        assert prof.stats("rt_tick").response_max > prof.stats("rt_tick").response_min
