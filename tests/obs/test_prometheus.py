"""Prometheus exposition-format validation, line by line.

A scraper is strict about the text format: ``# TYPE`` must precede a
metric's samples, histogram series need consistent ``_bucket``/``_sum``/
``_count`` triples, and cumulative bucket counts must be monotone in
``le``.  ``validate_prometheus_text`` below checks all of that; it runs
both against registry-rendered text and against a live ``/metrics``
scrape over a real socket.
"""

from __future__ import annotations

import re
import unittest
import urllib.request

from repro.obs.metrics import MetricsRegistry

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>[0-9]+))?$"
)
_HEADER_RE = re.compile(r"^# (?P<kind>HELP|TYPE) (?P<name>\S+)(?: (?P<rest>.*))?$")
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def validate_prometheus_text(text: str) -> list[str]:
    """Return a list of format problems (empty = valid exposition)."""
    problems: list[str] = []
    typed: dict[str, str] = {}
    help_seen: set[str] = set()
    samples: dict[str, list[tuple[dict, float]]] = {}
    seen_sample_for: set[str] = set()

    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _HEADER_RE.match(line)
            if m is None:
                if not line.startswith("# "):
                    problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            name = m.group("name")
            if m.group("kind") == "TYPE":
                if m.group("rest") not in _TYPES:
                    problems.append(
                        f"line {lineno}: unknown TYPE {m.group('rest')!r}"
                    )
                if name in typed:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                if name in seen_sample_for:
                    problems.append(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                typed[name] = m.group("rest") or "untyped"
            else:
                if name in seen_sample_for:
                    problems.append(
                        f"line {lineno}: HELP for {name} after its samples"
                    )
                help_seen.add(name)
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = m.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        seen_sample_for.add(name)
        seen_sample_for.add(base)
        labels = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                if not part:
                    continue
                k, _, v = part.partition("=")
                if not (v.startswith('"') and v.endswith('"')):
                    problems.append(f"line {lineno}: unquoted label value {part!r}")
                labels[k] = v.strip('"')
        raw = m.group("value")
        try:
            value = float("inf") if raw == "+Inf" else float(raw)
        except ValueError:
            problems.append(f"line {lineno}: bad value {raw!r}")
            continue
        samples.setdefault(name, []).append((labels, value))

    # histogram series consistency
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{name}_bucket", [])
        sums = samples.get(f"{name}_sum", [])
        counts = samples.get(f"{name}_count", [])
        if not buckets:
            problems.append(f"histogram {name}: no _bucket samples")
            continue
        if len(sums) != 1 or len(counts) != 1:
            problems.append(f"histogram {name}: needs exactly one _sum and _count")
            continue
        bounds = []
        for labels, value in buckets:
            if "le" not in labels:
                problems.append(f"histogram {name}: bucket without le= label")
                continue
            le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
            bounds.append((le, value))
        if bounds != sorted(bounds, key=lambda bv: bv[0]):
            problems.append(f"histogram {name}: le= bounds not ascending")
        cum = [v for _, v in bounds]
        if any(b > a for a, b in zip(cum[1:], cum)):
            problems.append(f"histogram {name}: bucket counts not monotone")
        if bounds and bounds[-1][0] != float("inf"):
            problems.append(f"histogram {name}: missing le=\"+Inf\" bucket")
        if bounds and bounds[-1][1] != counts[0][1]:
            problems.append(
                f"histogram {name}: +Inf bucket != _count "
                f"({bounds[-1][1]} vs {counts[0][1]})"
            )
    # every sample family should be typed (our exporter always emits TYPE)
    for name in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            problems.append(f"sample family {name}: no TYPE line")
    return problems


class TestValidator(unittest.TestCase):
    """The validator itself must catch broken expositions."""

    def test_accepts_valid_text(self):
        text = (
            "# HELP jobs_total jobs\n# TYPE jobs_total counter\n"
            "jobs_total 5\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 2\nlat_bucket{le="+Inf"} 3\n'
            "lat_sum 0.25\nlat_count 3\n"
        )
        self.assertEqual(validate_prometheus_text(text), [])

    def test_rejects_nonmonotone_buckets(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\nlat_bucket{le="0.5"} 3\n'
            'lat_bucket{le="+Inf"} 5\nlat_sum 1\nlat_count 5\n'
        )
        problems = validate_prometheus_text(text)
        self.assertTrue(any("not monotone" in p for p in problems))

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\nlat_sum 0.05\nlat_count 1\n'
        )
        problems = validate_prometheus_text(text)
        self.assertTrue(any("+Inf" in p for p in problems))

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 2\nlat_sum 0.05\nlat_count 3\n'
        )
        problems = validate_prometheus_text(text)
        self.assertTrue(any("_count" in p for p in problems))

    def test_rejects_untyped_sample(self):
        problems = validate_prometheus_text("mystery_metric 1\n")
        self.assertTrue(any("no TYPE" in p for p in problems))

    def test_rejects_type_after_samples(self):
        text = "jobs_total 5\n# TYPE jobs_total counter\n"
        problems = validate_prometheus_text(text)
        self.assertTrue(any("after its samples" in p for p in problems))


class TestRegistryExposition(unittest.TestCase):
    def test_registry_renders_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="all jobs").inc(7)
        reg.gauge("depth", help="queue depth").set(3)
        h = reg.histogram("latency_seconds", help="latency")
        for v in (0.0004, 0.002, 0.03, 0.7, 12.0):
            h.observe(v)
        text = reg.prometheus_text()
        self.assertEqual(validate_prometheus_text(text), [])
        self.assertIn('latency_seconds_bucket{le="+Inf"} 5', text)

    def test_empty_histogram_is_still_valid(self):
        reg = MetricsRegistry()
        reg.histogram("quiet_seconds")
        self.assertEqual(validate_prometheus_text(reg.prometheus_text()), [])


class TestLiveScrape(unittest.TestCase):
    """End to end: a live SimServe answers /metrics with valid exposition."""

    def test_scrape_over_socket(self):
        from repro.service import MILRequest, SimServe
        from tests.service.helpers import build_loop_model

        with SimServe(workers=2, ops_port=0, flight=False) as svc:
            handles = [
                svc.submit(MILRequest(builder=build_loop_model, dt=1e-3,
                                      t_final=0.05))
                for _ in range(3)
            ]
            self.assertTrue(svc.wait_all(handles, timeout=60.0))
            with urllib.request.urlopen(svc.ops_url + "/metrics", timeout=5) as r:
                self.assertEqual(r.status, 200)
                self.assertIn("text/plain; version=0.0.4",
                              r.headers["Content-Type"])
                text = r.read().decode()
        self.assertEqual(validate_prometheus_text(text), [])
        self.assertIn("simserve_jobs_completed_total 3", text)
        # the per-phase waterfall histograms are scrapeable
        self.assertIn("simserve_phase_run_seconds_bucket", text)
        self.assertIn("simserve_phase_queue_seconds_count 3", text)
        # the global registry rides along (tracer drop gauge, engine counters)
        self.assertIn("obs_tracer_dropped_events", text)


if __name__ == "__main__":
    unittest.main()
