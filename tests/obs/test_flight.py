"""Black-box flight recorder: ring semantics, triggers, dumps, wiring."""

from __future__ import annotations

import json
import os
import unittest

from repro.obs.flight import (
    NULL_RECORDER,
    TRIGGER_REASONS,
    FlightRecorder,
    configure_flight,
    get_flight_recorder,
    load_flight_dump,
)

import tempfile


class TestFlightRing(unittest.TestCase):
    def test_record_and_snapshot(self):
        fr = FlightRecorder(capacity=8)
        fr.record("a", args={"k": 1})
        fr.record("b", cat="test", sim_t=0.5)
        events = fr.events()
        self.assertEqual([e["name"] for e in events], ["a", "b"])
        self.assertEqual(events[0]["args"], {"k": 1})
        self.assertEqual(events[1]["sim_t"], 0.5)
        self.assertEqual(len(fr), 2)
        # timestamps are monotone within the ring
        self.assertLessEqual(events[0]["ts"], events[1]["ts"])

    def test_bounded_overflow_counts_drops(self):
        fr = FlightRecorder(capacity=4)
        for k in range(10):
            fr.record(f"e{k}")
        self.assertEqual(len(fr), 4)
        self.assertEqual(fr.dropped_events, 6)
        self.assertEqual([e["name"] for e in fr.events()],
                         ["e6", "e7", "e8", "e9"])

    def test_disabled_recorder_is_inert(self):
        fr = FlightRecorder(enabled=False)
        fr.record("x")
        self.assertEqual(len(fr), 0)
        self.assertIsNone(fr.trigger("manual"))
        self.assertFalse(NULL_RECORDER.enabled)
        NULL_RECORDER.record("x")
        self.assertEqual(len(NULL_RECORDER), 0)

    def test_clear_resets(self):
        fr = FlightRecorder(capacity=2)
        for k in range(5):
            fr.record(f"e{k}")
        fr.clear()
        self.assertEqual(len(fr), 0)
        self.assertEqual(fr.dropped_events, 0)


class TestTriggers(unittest.TestCase):
    def test_trigger_records_event_and_counts(self):
        fr = FlightRecorder()  # no dump_dir: record-only
        self.assertIsNone(fr.trigger("deadline_shed", args={"job": "j1"}))
        self.assertEqual(fr.trigger_counts, {"deadline_shed": 1})
        names = [e["name"] for e in fr.events()]
        self.assertIn("flight.trigger.deadline_shed", names)

    def test_trigger_taxonomy_is_complete(self):
        for reason in ("worker_crash", "deadline_shed", "job_exception",
                       "watchdog_reset", "campaign_interrupt", "manual"):
            self.assertIn(reason, TRIGGER_REASONS)

    def test_trigger_auto_dumps_with_manifest(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp)
            fr.record("job.finish", args={"job": "j1", "phases": {"run": 0.01}})
            path = fr.trigger("worker_crash", args={"job": "j1"})
            self.assertIsNotNone(path)
            self.assertTrue(os.path.exists(path))
            self.assertIn("worker_crash", os.path.basename(path))
            events = load_flight_dump(path)
            self.assertEqual(events[0]["name"], "job.finish")
            self.assertEqual(events[-1]["name"], "flight.trigger.worker_crash")
            with open(path + ".manifest.json") as fh:
                manifest = json.load(fh)
            self.assertEqual(manifest["reason"], "worker_crash")
            self.assertEqual(manifest["events"], len(events))
            self.assertEqual(manifest["trigger_counts"], {"worker_crash": 1})

    def test_dump_rate_limit_and_cap(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp, min_dump_interval_s=3600.0)
            first = fr.trigger("job_exception")
            second = fr.trigger("job_exception")
            self.assertIsNotNone(first)
            self.assertIsNone(second)  # rate-limited
            self.assertEqual(fr.trigger_counts["job_exception"], 2)  # still counted
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp, max_dumps=1,
                                min_dump_interval_s=0.0)
            self.assertIsNotNone(fr.trigger("manual"))
            self.assertIsNone(fr.trigger("manual"))  # capped
            self.assertEqual(len(fr.dumps), 1)

    def test_explicit_dump(self):
        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder()
            fr.record("x")
            path = fr.dump(os.path.join(tmp, "box.jsonl"))
            self.assertEqual(load_flight_dump(path)[0]["name"], "x")

    def test_to_jsonl_roundtrip(self):
        fr = FlightRecorder()
        fr.record("a", args={"n": 1})
        fr.record("b")
        lines = fr.to_jsonl().strip().splitlines()
        self.assertEqual(len(lines), 2)
        self.assertEqual(json.loads(lines[0])["name"], "a")

    def test_stats_shape(self):
        fr = FlightRecorder(capacity=16)
        fr.record("a")
        fr.trigger("manual")
        stats = fr.stats()
        self.assertEqual(stats["capacity"], 16)
        self.assertEqual(stats["events"], 2)
        self.assertEqual(stats["trigger_counts"], {"manual": 1})
        self.assertTrue(stats["enabled"])


class TestGlobalRecorder(unittest.TestCase):
    def test_configure_flight_in_place(self):
        fr = get_flight_recorder()
        old = (fr.capacity, fr.dump_dir, fr.enabled)
        try:
            got = configure_flight(capacity=64)
            self.assertIs(got, fr)
            self.assertEqual(fr.capacity, 64)
        finally:
            configure_flight(capacity=old[0], enabled=old[2])
            fr.dump_dir = old[1]

    def test_global_is_shared(self):
        self.assertIs(get_flight_recorder(), get_flight_recorder())


if __name__ == "__main__":
    unittest.main()
