"""Tracer core: ring buffer, span stack, pickling, exporters, loading."""

import json
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import Tracer, configure, get_tracer, load_trace, use_tracer


def _capture_child(parent_id, capacity):
    """Module-level worker: run a span tree under a fresh capture tracer
    attached to the submitter's span, return the events (the pattern
    ``FaultCampaign._run_cell_task_traced`` uses)."""
    from repro.obs import Tracer, use_tracer

    local = Tracer(capacity=capacity, enabled=True)
    with use_tracer(local):
        with local.attach(parent_id):
            with local.span("child.work", cat="test") as outer:
                local.instant("child.tick", cat="test")
            assert outer is not None
    return local.events()


class TestRingBuffer:
    def test_overflow_keeps_newest_and_counts_drops(self):
        tr = Tracer(capacity=4, enabled=True)
        for k in range(10):
            tr.instant(f"ev-{k}")
        assert len(tr) == 4
        assert tr.dropped_events == 6
        assert [e["name"] for e in tr.events()] == ["ev-6", "ev-7", "ev-8", "ev-9"]

    def test_clear_resets_drop_counter(self):
        tr = Tracer(capacity=2, enabled=True)
        for k in range(5):
            tr.instant(f"ev-{k}")
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped_events == 0

    def test_configure_capacity_change_keeps_newest(self):
        tr = Tracer(capacity=16, enabled=True)
        with use_tracer(tr):
            for k in range(8):
                get_tracer().instant(f"ev-{k}")
            configure(capacity=3)
            assert tr.capacity == 3
            assert [e["name"] for e in tr.events()] == ["ev-5", "ev-6", "ev-7"]
            configure(enabled=False, capacity=16)
            assert not tr.enabled

    def test_configure_rejects_bad_values(self):
        with use_tracer(Tracer()):
            with pytest.raises(ValueError):
                configure(capacity=0)
            with pytest.raises(ValueError):
                configure(step_stride=0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(step_stride=0)


class TestSpans:
    def test_disabled_tracer_is_inert(self):
        tr = Tracer(enabled=False)
        assert tr.begin("x") is None
        tr.end(None)
        tr.instant("x")
        tr.complete("x", "app", t0=0.0)
        with tr.span("x") as sp:
            assert sp is None
        assert len(tr) == 0

    def test_nesting_records_parent_chain(self):
        tr = Tracer(enabled=True)
        with tr.span("outer") as outer:
            assert tr.current_span() == outer.id
            with tr.span("inner") as inner:
                assert inner.parent == outer.id
                tr.instant("mark")
        assert tr.current_span() is None
        by_name = {e["name"]: e for e in tr.events()}
        assert by_name["mark"]["parent"] == by_name["inner"]["id"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        # spans close inner-first
        assert [e["name"] for e in tr.events() if e["ph"] == "X"] == [
            "inner", "outer",
        ]

    def test_span_args_mutable_until_end(self):
        tr = Tracer(enabled=True)
        with tr.span("run", args={"a": 1}) as sp:
            sp.args["b"] = 2
        (ev,) = tr.events()
        assert ev["args"] == {"a": 1, "b": 2}
        assert ev["dur"] >= 0.0

    def test_complete_inherits_open_span_as_parent(self):
        import time

        tr = Tracer(enabled=True)
        with tr.span("outer") as outer:
            tr.complete("timed", "engine", t0=time.perf_counter(), sim_t=0.5)
        timed = next(e for e in tr.events() if e["name"] == "timed")
        assert timed["parent"] == outer.id
        assert timed["sim_t"] == 0.5
        assert timed["cat"] == "engine"

    def test_sim_t_rides_along(self):
        tr = Tracer(enabled=True)
        tr.instant("tick", sim_t=0.125)
        (ev,) = tr.events()
        assert ev["sim_t"] == 0.125
        assert ev["ph"] == "i"


class TestPickling:
    def test_round_trip_ships_config_only(self):
        tr = Tracer(capacity=128, enabled=True, step_stride=7)
        tr.instant("before-pickle")
        clone = pickle.loads(pickle.dumps(tr))
        assert clone.capacity == 128
        assert clone.enabled
        assert clone.step_stride == 7
        assert len(clone) == 0  # buffer does not cross the boundary
        clone.instant("after")  # and the rebuilt clone is usable
        assert len(clone) == 1


class TestCrossProcess:
    def test_attach_and_ingest_reparent(self):
        tr = Tracer(enabled=True)
        with tr.span("parent.submit") as sp:
            parent_id = sp.id
        foreign = _capture_child(parent_id, capacity=64)
        assert tr.ingest(foreign) == len(foreign)
        events = tr.events()
        child_root = next(e for e in events if e["name"] == "child.work")
        assert child_root["parent"] == parent_id
        tick = next(e for e in events if e["name"] == "child.tick")
        assert tick["parent"] == child_root["id"]

    def test_reparenting_across_real_process_pool(self):
        tr = Tracer(enabled=True)
        with tr.span("parent.submit") as sp:
            parent_id = sp.id
            with ProcessPoolExecutor(max_workers=1) as pool:
                foreign = pool.submit(_capture_child, parent_id, 64).result()
        tr.ingest(foreign)
        child_root = next(e for e in tr.events() if e["name"] == "child.work")
        assert child_root["parent"] == parent_id
        assert child_root["pid"] != tr.pid  # ids embed the producing pid
        assert child_root["id"].startswith(f"{child_root['pid']}-")


class TestExporters:
    def _traced(self):
        tr = Tracer(enabled=True)
        with tr.span("outer", cat="engine", sim_t=0.0, args={"n": 3}):
            tr.instant("mark", cat="link", sim_t=0.001, args={"seq": 9})
        return tr

    def test_chrome_round_trips_json_loads(self, tmp_path):
        tr = self._traced()
        path = tr.export_chrome(tmp_path / "t.trace.json", manifest=False)
        doc = json.loads(open(path).read())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        outer, mark = by_name["outer"], by_name["mark"]
        assert outer["ph"] == "X" and "dur" in outer
        assert mark["ph"] == "i" and mark["s"] == "t"
        assert mark["args"]["seq"] == 9
        assert mark["args"]["sim_t"] == 0.001
        assert outer["args"]["span_id"]  # ids survive via args

    def test_jsonl_and_chrome_load_identically(self, tmp_path):
        tr = self._traced()
        p_jsonl = tr.export_jsonl(tmp_path / "t.jsonl", manifest=False)
        p_chrome = tr.export_chrome(tmp_path / "t.trace.json", manifest=False)
        a, b = load_trace(p_jsonl), load_trace(p_chrome)
        assert len(a) == len(b) == 2
        for ea, eb in zip(a, b):
            for key in ("ph", "name", "cat", "sim_t", "id", "parent", "pid"):
                assert ea[key] == eb[key], key
            assert eb["ts"] == pytest.approx(ea["ts"], abs=1e-9)
            assert eb["dur"] == pytest.approx(ea["dur"], abs=1e-9)

    def test_single_line_jsonl_loads(self, tmp_path):
        tr = Tracer(enabled=True)
        tr.instant("only")
        path = tr.export_jsonl(tmp_path / "one.jsonl", manifest=False)
        (ev,) = load_trace(path)
        assert ev["name"] == "only"

    def test_export_writes_manifest_next_to_trace(self, tmp_path):
        tr = self._traced()
        path = tr.export_jsonl(tmp_path / "t.jsonl", config={"dt": 1e-3})
        manifest = json.loads(open(path + ".manifest.json").read())
        assert manifest["config"] == {"dt": 1e-3}
        assert manifest["tracer_stats"]["events"] == 2
        assert manifest["tracer_stats"]["dropped_events"] == 0
        assert "python" in manifest["versions"]


class TestUseTracer:
    def test_swaps_and_restores_global(self):
        before = get_tracer()
        scratch = Tracer(enabled=True)
        with use_tracer(scratch) as active:
            assert get_tracer() is scratch is active
        assert get_tracer() is before
