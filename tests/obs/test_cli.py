"""``python -m repro.obs`` — summary/convert subcommands and validation."""

import json

import pytest

from repro.obs import Tracer, load_trace, summarize, validate, format_summary
from repro.obs.__main__ import main


@pytest.fixture
def trace_jsonl(tmp_path):
    tr = Tracer(enabled=True)
    with tr.span("outer", cat="engine", sim_t=0.0):
        with tr.span("inner", cat="engine", sim_t=0.001):
            tr.instant("mark", cat="link", args={"seq": 1})
    return tr.export_jsonl(tmp_path / "run.jsonl", manifest=False)


class TestSummary:
    def test_human_output(self, trace_jsonl, capsys):
        assert main(["summary", trace_jsonl]) == 0
        out = capsys.readouterr().out
        assert "events 3" in out
        assert "engine" in out and "link" in out
        assert "validation: ok" in out

    def test_json_output(self, trace_jsonl, capsys):
        assert main(["summary", trace_jsonl, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["problems"] == []
        assert doc["summary"]["spans"] == 2
        assert doc["summary"]["instants"] == 1
        assert set(doc["summary"]["categories"]) == {"engine", "link"}

    def test_strict_passes_clean_trace(self, trace_jsonl):
        assert main(["summary", trace_jsonl, "--strict"]) == 0

    def test_top_spans_table(self, trace_jsonl, capsys):
        assert main(["summary", trace_jsonl, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "slowest spans — engine" in out
        assert "outer" in out and "p95" in out

    def test_top_spans_json(self, trace_jsonl, capsys):
        assert main(["summary", trace_jsonl, "--json", "--top", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rows = doc["top_spans"]["engine"]
        assert len(rows) == 1
        # "outer" contains "inner", so it dominates total duration
        assert rows[0]["name"] == "outer"
        assert {"name", "count", "total_dur", "p95_dur", "max_dur"} <= set(rows[0])

    def test_strict_fails_broken_trace(self, tmp_path, capsys):
        broken = dict(
            ph="i", name="orphan", cat="app", ts=0.0, dur=0.0, sim_t=None,
            id=None, parent="1-999", pid=1, tid=0, args={},
        )
        path = tmp_path / "broken.jsonl"
        path.write_text(json.dumps(broken) + "\n")
        assert main(["summary", str(path), "--strict"]) == 1
        assert main(["summary", str(path)]) == 0  # non-strict only reports
        out = capsys.readouterr().out
        assert "parent '1-999' not in trace" in out


class TestConvert:
    def test_jsonl_to_chrome_and_back(self, trace_jsonl, tmp_path, capsys):
        chrome = str(tmp_path / "run.trace.json")
        back = str(tmp_path / "back.jsonl")
        assert main(["convert", trace_jsonl, chrome]) == 0
        assert "wrote 3 events" in capsys.readouterr().out
        json.loads(open(chrome).read())  # valid Chrome JSON
        assert main(["convert", chrome, back]) == 0
        a, b = load_trace(trace_jsonl), load_trace(back)
        assert [e["name"] for e in a] == [e["name"] for e in b]
        assert [e["id"] for e in a] == [e["id"] for e in b]
        assert [e["parent"] for e in a] == [e["parent"] for e in b]
        assert validate(b) == []


class TestServeAndReport:
    def test_serve_demo_then_report(self, tmp_path, capsys):
        import os

        from repro.obs.flight import get_flight_recorder

        snap_path = str(tmp_path / "snap.json")
        flight_dir = str(tmp_path / "flight")
        fr = get_flight_recorder()
        old_dir = fr.dump_dir
        try:
            assert main([
                "serve", "--port", "0", "--demo-jobs", "1", "--force-shed",
                "--t-final", "0.01", "--snapshot", snap_path,
                "--flight-dir", flight_dir,
            ]) == 0
        finally:
            fr.dump_dir = old_dir
            fr.clear()
        out = capsys.readouterr().out
        assert "ops plane listening on http://127.0.0.1:" in out
        snap = json.loads(open(snap_path).read())
        assert snap["jobs"]["completed"] >= 1
        assert snap["jobs"]["shed"] == 1
        assert "run" in snap["waterfall"]
        # the forced shed auto-dumped a flight box
        dumps = [p for p in os.listdir(flight_dir) if p.endswith(".jsonl")]
        assert len(dumps) >= 1

        # snapshot -> report
        html = str(tmp_path / "report.html")
        assert main(["report", snap_path, "-o", html]) == 0
        out = capsys.readouterr().out
        assert "ops report (snapshot" in out
        assert "shed" in out
        text = open(html).read()
        assert "Phase waterfall" in text

        # flight dump -> report (post-mortem path)
        assert main([
            "report", os.path.join(flight_dir, dumps[0]), "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "flight"
        assert doc["triggers"].get("deadline_shed") == 1


class TestValidator:
    def test_negative_duration_flagged(self):
        ev = dict(ph="X", name="bad", cat="app", ts=0.0, dur=-1.0, sim_t=None,
                  id="1-1", parent=None, pid=1, tid=0, args={})
        problems = validate([ev])
        assert len(problems) == 1 and "negative duration" in problems[0]

    def test_child_escaping_parent_flagged(self):
        parent = dict(ph="X", name="p", cat="app", ts=0.0, dur=1.0, sim_t=None,
                      id="1-1", parent=None, pid=1, tid=0, args={})
        child = dict(ph="X", name="c", cat="app", ts=0.5, dur=2.0, sim_t=None,
                     id="1-2", parent="1-1", pid=1, tid=0, args={})
        problems = validate([parent, child])
        assert len(problems) == 1 and "escapes parent" in problems[0]

    def test_cross_pid_child_exempt_from_containment(self):
        parent = dict(ph="X", name="p", cat="app", ts=0.0, dur=1.0, sim_t=None,
                      id="1-1", parent=None, pid=1, tid=0, args={})
        child = dict(ph="X", name="c", cat="app", ts=50.0, dur=2.0, sim_t=None,
                     id="2-1", parent="1-1", pid=2, tid=0, args={})
        assert validate([parent, child]) == []

    def test_summary_counts(self):
        tr = Tracer(enabled=True)
        with tr.span("a", cat="x"):
            tr.instant("b", cat="y")
        s = summarize(tr.events())
        assert s["events"] == 2 and s["spans"] == 1 and s["instants"] == 1
        assert s["processes"] == 1
        text = format_summary(s, problems=[])
        assert "validation: ok" in text
