"""Metric primitives: counters, gauges, histograms, registry, ticker."""

import threading

import pytest

from repro.obs import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_function_binding_wins(self):
        g = Gauge("depth")
        g.set(1)
        g.set_function(lambda: 42)
        assert g.value == 42.0
        assert g.snapshot() == 42.0

    def test_fn_at_construction(self):
        assert Gauge(fn=lambda: 7).value == 7.0


class TestHistogram:
    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}

    def test_snapshot_keys_and_values(self):
        h = Histogram(capacity=16)
        for v in (0.01, 0.02, 0.03, 0.04):
            h.observe(v)
        s = h.snapshot()
        assert s["count"] == 4
        assert s["min"] == 0.01
        assert s["max"] == 0.04
        assert s["mean"] == pytest.approx(0.025)
        assert s["p50"] == pytest.approx(0.025)
        assert set(s) == {"count", "mean", "min", "max", "p50", "p90", "p99"}

    def test_reservoir_bounded_but_count_total(self):
        h = Histogram(capacity=8)
        for k in range(100):
            h.observe(float(k))
        s = h.snapshot()
        assert s["count"] == 100          # true count
        assert s["max"] == 99.0           # running extrema survive eviction
        assert s["p50"] >= 92.0           # percentiles from the newest window

    def test_bucket_snapshot_is_cumulative(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        b = h.bucket_snapshot()
        assert b["buckets"] == {0.1: 1, 1.0: 3, 10.0: 4}  # 50.0 -> +Inf only
        assert b["count"] == 5
        assert b["sum"] == pytest.approx(56.05)

    def test_bucket_edge_is_inclusive(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_snapshot()["buckets"] == {1.0: 1, 2.0: 1}

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total")
        b = reg.counter("jobs_total")
        assert a is b
        assert reg.get("jobs_total") is a
        assert reg.names() == ["jobs_total"]

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(0.2)
        snap = reg.snapshot()
        assert snap["a"] == 3.0
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="jobs seen").inc(2)
        reg.gauge("queue_depth").set(4)
        reg.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.prometheus_text()
        assert "# HELP jobs_total jobs seen" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 2" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 4" in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.05" in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_name_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with space")
        assert "weird_name_with_space 0" in reg.prometheus_text()

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().prometheus_text() == ""


class TestSnapshotTicker:
    def test_delivers_snapshots_until_stopped(self):
        reg = MetricsRegistry()
        reg.counter("ticks").inc(5)
        got = []
        seen_two = threading.Event()

        def sink(snap):
            got.append(snap)
            if len(got) >= 2:
                seen_two.set()

        ticker = reg.start_snapshots(0.01, sink)
        assert seen_two.wait(2.0)
        ticker.stop()
        n_at_stop = len(got)
        assert got[0]["ticks"] == 5.0
        # no further deliveries after stop
        threading.Event().wait(0.05)
        assert len(got) == n_at_stop

    def test_context_manager(self):
        reg = MetricsRegistry()
        got = []
        first = threading.Event()
        with reg.start_snapshots(0.01, lambda s: (got.append(s), first.set())):
            assert first.wait(2.0)
        assert got

    def test_bad_interval(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.start_snapshots(0.0, lambda s: None)
