"""HTTP ops endpoint: routes, content types, liveness codes, flight download."""

from __future__ import annotations

import json
import unittest
import urllib.error
import urllib.request

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import OpsServer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestOpsServer(unittest.TestCase):
    def _server(self, **kwargs) -> OpsServer:
        srv = OpsServer(port=0, **kwargs).start()
        self.addCleanup(srv.stop)
        return srv

    def test_ephemeral_port_and_url(self):
        srv = self._server()
        self.assertIsInstance(srv.port, int)
        self.assertGreater(srv.port, 0)
        self.assertEqual(srv.url, f"http://127.0.0.1:{srv.port}")

    def test_metrics_route_content_type(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", help="demo").inc(3)
        srv = self._server(metrics_text_fn=reg.prometheus_text)
        status, headers, body = _get(srv.url + "/metrics")
        self.assertEqual(status, 200)
        self.assertIn("text/plain; version=0.0.4", headers["Content-Type"])
        self.assertIn(b"demo_total 3", body)

    def test_healthz_codes(self):
        srv = self._server(health_fn=lambda: {"ok": True, "note": "fine"})
        status, _, body = _get(srv.url + "/healthz")
        self.assertEqual(status, 200)
        self.assertTrue(json.loads(body)["ok"])

        sick = self._server(health_fn=lambda: {"ok": False, "why": "pool broken"})
        with self.assertRaises(urllib.error.HTTPError) as ctx:
            _get(sick.url + "/healthz")
        self.assertEqual(ctx.exception.code, 503)
        self.assertFalse(json.loads(ctx.exception.read())["ok"])

    def test_statusz_json_and_html(self):
        payload = {"jobs": [{
            "job": "job-000001", "kind": "mil", "state": "done",
            "priority": 1, "queued_s": 0.001, "exec_s": 0.01,
            "total_s": 0.011, "cache_hit": True,
            "phases": {"queue": 0.001, "run": 0.01},
        }]}
        srv = self._server(status_fn=lambda: payload)
        status, headers, body = _get(srv.url + "/statusz")
        self.assertEqual(status, 200)
        self.assertIn("application/json", headers["Content-Type"])
        self.assertEqual(json.loads(body)["jobs"][0]["job"], "job-000001")

        status, headers, body = _get(srv.url + "/statusz?format=html")
        self.assertIn("text/html", headers["Content-Type"])
        text = body.decode()
        self.assertIn("job-000001", text)
        self.assertIn("<table>", text)
        self.assertIn("run=10.00ms", text)  # phases render as k=..ms

    def test_flight_route_serves_ring(self):
        fr = FlightRecorder()
        fr.record("job.finish", args={"job": "j9"})
        srv = self._server(flight=fr)
        status, headers, body = _get(srv.url + "/flight")
        self.assertEqual(status, 200)
        self.assertIn("attachment", headers["Content-Disposition"])
        events = [json.loads(line) for line in body.decode().splitlines()]
        self.assertEqual(events[0]["name"], "job.finish")

    def test_flight_trigger_query_forces_dump(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            fr = FlightRecorder(dump_dir=tmp)
            fr.record("x")
            srv = OpsServer(port=0, flight=fr).start()
            try:
                status, headers, _ = _get(srv.url + "/flight?trigger=1")
                self.assertEqual(status, 200)
                self.assertIn("X-Flight-Dump", headers)
                self.assertEqual(fr.trigger_counts, {"manual": 1})
            finally:
                srv.stop()

    def test_flight_route_404_without_recorder(self):
        srv = self._server(flight=None)
        with self.assertRaises(urllib.error.HTTPError) as ctx:
            _get(srv.url + "/flight")
        self.assertEqual(ctx.exception.code, 404)

    def test_unknown_route_404_and_index(self):
        srv = self._server()
        status, _, body = _get(srv.url + "/")
        self.assertEqual(status, 200)
        self.assertIn(b"/metrics", body)
        with self.assertRaises(urllib.error.HTTPError) as ctx:
            _get(srv.url + "/nope")
        self.assertEqual(ctx.exception.code, 404)

    def test_provider_exception_answers_500(self):
        def boom():
            raise RuntimeError("provider bug")

        srv = self._server(health_fn=boom)
        with self.assertRaises(urllib.error.HTTPError) as ctx:
            _get(srv.url + "/healthz")
        self.assertEqual(ctx.exception.code, 500)
        self.assertIn("provider bug", json.loads(ctx.exception.read())["error"])

    def test_context_manager(self):
        with OpsServer(port=0) as srv:
            status, _, _ = _get(srv.url + "/healthz")
            self.assertEqual(status, 200)
        self.assertIsNone(srv.port)


if __name__ == "__main__":
    unittest.main()
