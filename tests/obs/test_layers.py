"""Cross-layer tracing: the acceptance path plus the overhead contracts.

The headline test drives one reliable servo PIL run *through SimServe*
with tracing on and asserts the exported trace carries all three layers
— engine major-step spans, ARQ link events, and service job spans — in a
single well-formed tree.  The rest pin the cost model (a disabled tracer
emits nothing on the engine hot loop), the fault-campaign progress
surface, and the profiler's trace bridge.
"""

import json

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import FaultCampaign, FaultPlan
from repro.model import SimulationOptions, Simulator
from repro.obs import Tracer, load_trace, use_tracer, validate
from repro.sim import LossPolicy, PILSimulator

from tests.service.helpers import build_loop_model, make_fake_pil


def make_servo_pil(reliable: bool = True) -> PILSimulator:
    """Module-level rig factory (the SimServe worker calls it)."""
    sm = build_servo_model(ServoConfig(setpoint=100.0))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=115200,
        plant_dt=1e-4,
        reliable=reliable,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5),
        watchdog_timeout=8e-3 if reliable else None,
    )


def _fake_campaign(**kwargs) -> FaultCampaign:
    return FaultCampaign(
        make_pil=make_fake_pil, plan=FaultPlan([], seed=7),
        t_final=0.1, reference=0.0, **kwargs,
    )


class TestThreeLayerTrace:
    def test_traced_pil_run_through_simserve(self, tmp_path):
        tr = Tracer(enabled=True, step_stride=50)
        with use_tracer(tr):
            from repro.service import PILRequest, SimServe

            with tr.span("client.request", cat="app"):
                with SimServe(workers=1, backend="thread") as svc:
                    h = svc.submit(
                        PILRequest(
                            make_pil=make_servo_pil,
                            t_final=0.03,
                            make_kwargs={"reliable": True},
                        )
                    )
                    h.result(timeout=60.0)
            path = tr.export_jsonl(tmp_path / "servo.jsonl", manifest=False)

        events = load_trace(path)
        cats = {e["cat"] for e in events}
        names = {e["name"] for e in events}
        # all three layers in the one trace
        assert {"engine", "link", "service"} <= cats
        assert "engine.major_step" in names
        assert "link.send" in names
        assert {"service.submit", "service.job"} <= names
        # the job span hangs off the client span, the PIL run off the job
        by_name = {e["name"]: e for e in events}
        client = by_name["client.request"]
        job = by_name["service.job"]
        assert job["parent"] == client["id"]
        assert by_name["pil.run"]["parent"] == job["id"]
        assert job["args"]["state"] == "DONE"
        # engine spans carry the simulated clock
        steps = [e for e in events if e["name"] == "engine.major_step"]
        assert steps and all(e["sim_t"] is not None for e in steps)
        # nesting is structurally sound
        assert validate(events) == []

    def test_chrome_export_of_layered_trace_round_trips(self, tmp_path):
        tr = Tracer(enabled=True, step_stride=50)
        with use_tracer(tr):
            sim = Simulator(
                build_loop_model(), SimulationOptions(dt=1e-3, t_final=0.2)
            )
            sim.run()
            path = tr.export_chrome(tmp_path / "mil.trace.json", manifest=False)
        doc = json.loads(open(path).read())
        assert any(e["name"] == "engine.run" for e in doc["traceEvents"])
        assert validate(load_trace(path)) == []


class TestDisabledOverhead:
    def test_disabled_tracer_emits_nothing_on_engine_hot_loop(self, monkeypatch):
        emitted = []
        monkeypatch.setattr(
            Tracer, "_emit", lambda self, event: emitted.append(event)
        )
        sim = Simulator(
            build_loop_model(), SimulationOptions(dt=1e-3, t_final=0.5)
        )
        assert not sim._tracer.enabled
        sim.run()
        assert emitted == []

    def test_disabled_tracer_allocates_no_events(self):
        """tracemalloc budget: the guard path of the hot loop must not
        build spans/dicts — a 500-step run stays within a tiny slack."""
        import tracemalloc

        sim = Simulator(
            build_loop_model(), SimulationOptions(dt=1e-3, t_final=0.5)
        )
        sim.initialize()
        for _ in range(10):  # warm caches/logs outside the measurement
            sim.advance()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(500):
            sim.advance()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # log arrays are preallocated; anything beyond small transients
        # would indicate per-step event construction
        assert after - before < 64 * 1024
        assert len(sim._tracer) == 0


class TestCampaignProgress:
    def test_on_cell_done_serial(self):
        seen = []
        camp = _fake_campaign(
            on_cell_done=lambda i, n, o: seen.append((i, n, o.reliable))
        )
        camp.run([0.5, 1.0])
        assert seen == [(0, 4, False), (1, 4, True), (2, 4, False), (3, 4, True)]

    def test_on_cell_done_parallel_grid_order(self):
        seen = []
        camp = _fake_campaign(
            on_cell_done=lambda i, n, o: seen.append((i, n, o.intensity))
        )
        outcomes = camp.run([0.5, 1.0], modes=(False,), workers=2)
        assert [o.intensity for o in outcomes] == [0.5, 1.0]
        assert seen == [(0, 2, 0.5), (1, 2, 1.0)]

    def test_hook_not_pickled_to_workers(self):
        import pickle

        camp = _fake_campaign(on_cell_done=lambda i, n, o: None)
        clone = pickle.loads(pickle.dumps(camp))
        assert clone.on_cell_done is None

    def test_traced_parallel_campaign_reparents_worker_cells(self, monkeypatch):
        # force the pool path: single-core hosts auto-downgrade to serial
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        tr = Tracer(enabled=True)
        with use_tracer(tr):
            camp = _fake_campaign()
            camp.run([0.5, 1.0], modes=(False,), workers=2)
        events = tr.events()
        run_span = next(e for e in events if e["name"] == "campaign.run")
        cells = [e for e in events if e["name"] == "campaign.cell"]
        assert len(cells) == 2
        for cell in cells:
            assert cell["parent"] == run_span["id"]
            assert cell["pid"] != tr.pid  # produced in the worker process
        # progress instants fire in the parent under the run span
        done = [e for e in events if e["name"] == "campaign.cell_done"]
        assert [e["args"]["index"] for e in done] == [0, 1]
        assert all(e["pid"] == tr.pid for e in done)
        assert validate(events) == []

    def test_untraced_parallel_campaign_matches_serial(self):
        serial = _fake_campaign().run([1.0], modes=(False, True))
        parallel = _fake_campaign().run([1.0], modes=(False, True), workers=2)
        assert serial == parallel


class TestProfilerBridge:
    def test_to_events_builds_rt_spans(self):
        pil = make_servo_pil(reliable=False)
        pil.run(0.02)
        profiler = pil.profiler()
        tr = Tracer(enabled=True)
        events = profiler.to_events(tracer=tr)
        assert events
        rec = profiler.records()[0]
        ev = events[0]
        assert ev["cat"] == "rt"
        assert ev["name"] == f"rt.{rec.name}"
        assert ev["ts"] == rec.t_start
        assert ev["dur"] == pytest.approx(rec.t_end - rec.t_start)
        assert ev["sim_t"] == rec.t_start
        assert ev["args"]["cycles"] == rec.cycles
        # merges cleanly into a trace and survives export
        tr.ingest(events)
        assert len(tr) == len(events)
        assert validate(tr.events()) == []

    def test_stats_and_report_still_serve_the_paper_table(self):
        pil = make_servo_pil(reliable=False)
        pil.run(0.02)
        profiler = pil.profiler()
        vec = profiler.vectors()[0]
        stats = profiler.stats(vec)
        snap = stats.snapshot()
        assert snap["count"] == stats.count
        assert snap["exec"]["min"] <= snap["exec"]["mean"] <= snap["exec"]["max"]
        row = stats.as_row()
        assert vec in row
        assert "µs" in profiler.report(0.02) or "exe_avg" in profiler.report(0.02)
