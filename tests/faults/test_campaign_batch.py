"""Batched fault campaigns with diverging lanes and uneven chunks.

Two pins the fuzzer's batch execution path rides on:

* ``FaultCampaign.run(batch=N)`` with a chunk size that does **not**
  divide the grid (a ragged final chunk) must still return grid-ordered
  rows bit-identical to the serial sweep, at any worker count;
* :class:`~repro.model.BatchSimulator` lanes whose faults make them
  take different event paths must stay bit-identical to their serial
  references, with ``lanes_diverged`` accounting for the split — at a
  lane count the vector width does not divide evenly.
"""

import numpy as np
import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import BurstErrors, FaultCampaign, FaultPlan, LineDropout
from repro.obs.trace import Tracer, use_tracer
from repro.sim import LossPolicy, PILSimulator

from tests.model.test_batch import (
    assert_lanes_identical,
    diverging_event_model,
    run_pair,
)

SETPOINT = 100.0


def make_pil(reliable: bool) -> PILSimulator:
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=460800,
        plant_dt=1e-4,
        reliable=reliable,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5),
        watchdog_timeout=8e-3 if reliable else None,
    )


def _campaign() -> FaultCampaign:
    plan = FaultPlan(
        [
            BurstErrors(start=0.01, duration=0.04, rate=0.25),
            LineDropout(start=0.06, duration=0.02),
        ],
        seed=43,
    )
    return FaultCampaign(
        make_pil=make_pil, plan=plan, t_final=0.1, reference=SETPOINT
    )


class TestUnevenChunks:
    """batch=3 over an 8-cell grid: chunks of 3+3+2."""

    INTENSITIES = [0.25, 0.5, 0.75, 1.0]  # x (raw, reliable) = 8 cells

    def test_ragged_chunks_equal_serial(self, monkeypatch):
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        serial = _campaign().run(self.INTENSITIES)
        ragged = _campaign().run(self.INTENSITIES, workers=2, batch=3)
        assert serial == ragged

    def test_chunk_size_sweep_all_identical(self, monkeypatch):
        """Every chunking of the same grid yields the same rows —
        including batch sizes larger than the grid."""
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        intensities = [0.5, 1.0]  # 4 cells
        serial = _campaign().run(intensities)
        for batch in (1, 3, 4, 7):
            rows = _campaign().run(intensities, workers=2, batch=batch)
            assert rows == serial, f"batch={batch} diverged from serial"

    def test_ragged_chunks_preserve_grid_order_when_traced(self, monkeypatch):
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        tracer = Tracer(capacity=1 << 16, enabled=True)
        with use_tracer(tracer):
            rows = _campaign().run([0.5, 1.0, 1.5], modes=(True,),
                                   workers=2, batch=2)
        assert [r.intensity for r in rows] == [0.5, 1.0, 1.5]
        done = [
            e["args"]["index"] for e in tracer.events()
            if e["name"] == "campaign.cell_done"
        ]
        assert done == [0, 1, 2]
        # each pool chunk ships exactly one capture of its cells
        cells = [e for e in tracer.events() if e["name"] == "campaign.cell"]
        assert len(cells) == 3


class TestDivergingLanesOddWidth:
    """Lane-diverging event dispatch at lane counts that leave ragged
    vector tails (B=5, B=7 — nothing the kernels' widths divide)."""

    @pytest.mark.parametrize("levels", [
        (0.0, 0.5, 2.0, 1.5, 0.25),            # B=5, two lanes fire
        (0.0, 2.0, 0.5, 3.0, 0.75, 1.25, 0.1),  # B=7, three lanes fire
    ])
    def test_bit_identical_with_divergence_accounting(self, levels):
        scenarios = [{"level": {"value": v}} for v in levels]
        serial, sim, batched = run_pair(
            diverging_event_model, scenarios, t_final=0.02
        )
        assert_lanes_identical(serial, batched)
        assert sim.lanes_diverged > 0
        fired = [v > 1.0 for v in levels]
        final = batched.final("isr_y")
        for lane, hot in enumerate(fired):
            if hot:
                assert final[lane] == pytest.approx(levels[lane] * 10.0)
            else:
                assert final[lane] == 0.0

    def test_uniform_lanes_report_no_divergence(self):
        scenarios = [{"level": {"value": v}} for v in (1.5, 2.0, 2.5, 3.0, 4.0)]
        serial, sim, batched = run_pair(
            diverging_event_model, scenarios, t_final=0.02
        )
        assert_lanes_identical(serial, batched)
        assert sim.lanes_diverged == 0
