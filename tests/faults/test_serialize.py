"""FaultPlan / fault-model serialization: exact round-trips, validation."""

import json

import pytest

from repro.faults import (
    FAULT_TYPES,
    BurstErrors,
    FaultPlan,
    LineDropout,
    StepOverrun,
    StuckSensor,
    fault_from_dict,
)


def _sample_plan() -> FaultPlan:
    return FaultPlan(
        [
            BurstErrors(start=0.015, duration=0.0625, rate=0.3),
            LineDropout(start=0.08, duration=0.03),
            StuckSensor("QD1", start=0.04, duration=0.08, value=12.5),
            StuckSensor("QD1", start=0.14, duration=0.02),  # hold-first
            StepOverrun(start=0.05, duration=0.04, factor=17.0),
        ],
        seed=42,
    )


class TestFaultModels:
    def test_registry_covers_every_model(self):
        assert set(FAULT_TYPES) == {
            "BurstErrors", "LineDropout", "StuckSensor", "StepOverrun"
        }

    @pytest.mark.parametrize(
        "fault",
        [
            BurstErrors(start=0.1, duration=0.2, rate=0.45),
            LineDropout(start=0.0, duration=0.5),
            StuckSensor("QD1", start=0.1, duration=0.3),
            StuckSensor("S2", start=0.1, duration=0.3, value=99.0),
            StepOverrun(start=0.2, duration=0.1, factor=3.5),
        ],
        ids=lambda f: type(f).__name__,
    )
    def test_round_trip_is_exact(self, fault):
        back = fault_from_dict(fault.to_dict())
        assert back == fault
        assert type(back) is type(fault)
        assert back.to_dict() == fault.to_dict()

    def test_structural_equality_not_identity(self):
        a = BurstErrors(start=0.1, duration=0.2, rate=0.45)
        b = BurstErrors(start=0.1, duration=0.2, rate=0.45)
        c = BurstErrors(start=0.1, duration=0.2, rate=0.46)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_runtime_state_excluded_from_identity(self):
        """A StuckSensor that has latched a held value still equals (and
        serializes as) its freshly-built twin — only parameters count."""
        a = StuckSensor("QD1", start=0.0, duration=1.0)
        b = StuckSensor("QD1", start=0.0, duration=1.0)
        a.apply_sensor(0.5, "QD1", 77.0)  # latches _held
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown fault type"):
            fault_from_dict({"type": "Gremlin", "start": 0.0, "duration": 1.0})

    def test_validation_applies_on_deserialize(self):
        doc = StepOverrun(start=0.0, duration=1.0, factor=2.0).to_dict()
        doc["factor"] = 0.5  # below the constructor's >= 1 floor
        with pytest.raises(ValueError):
            fault_from_dict(doc)


class TestPlanRoundTrip:
    def test_plan_round_trip_is_exact(self):
        plan = _sample_plan()
        back = FaultPlan.from_dict(plan.to_dict())
        assert back == plan
        assert back.to_dict() == plan.to_dict()

    def test_json_transport_preserves_floats_exactly(self):
        """The corpus stores plans as JSON text; shortest-repr float
        encoding must round-trip every parameter bit-for-bit."""
        plan = FaultPlan(
            [BurstErrors(start=0.1 + 0.2, duration=1 / 3, rate=0.1)],
            seed=7,
        )
        wire = json.dumps(plan.to_dict(), sort_keys=True)
        back = FaultPlan.from_dict(json.loads(wire))
        assert back.faults[0].start == plan.faults[0].start
        assert back.faults[0].duration == plan.faults[0].duration
        assert back == plan

    def test_round_tripped_plan_behaves_identically(self):
        """Same seed + same parameters -> the same armed byte stream."""
        plan = FaultPlan(
            [BurstErrors(start=0.0, duration=1.0, rate=0.5)], seed=31
        )
        twin = FaultPlan.from_dict(plan.to_dict())
        plan.arm()
        twin.arm()
        a = [plan.byte_fault(0.5, b) for b in range(256)]
        b = [twin.byte_fault(0.5, b) for b in range(256)]
        assert a == b

    def test_empty_plan(self):
        plan = FaultPlan([], seed=0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert plan.to_dict() == {"seed": 0, "faults": []}
