"""Parallel fault campaigns: determinism and grid ordering.

``FaultCampaign.run(..., workers=N)`` must produce outcomes identical to
the serial sweep — every cell builds a fresh rig and reseeds its own
fault plan, so neither worker count nor completion order may leak into
the rows.
"""

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import BurstErrors, FaultCampaign, FaultPlan, LineDropout
from repro.obs.trace import Tracer, use_tracer
from repro.sim import LossPolicy, PILSimulator

SETPOINT = 100.0


def make_pil(reliable: bool) -> PILSimulator:
    """Module-level factory — the process pool pickles the campaign."""
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=460800,
        plant_dt=1e-4,
        reliable=reliable,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5),
        watchdog_timeout=8e-3 if reliable else None,
    )


def _campaign() -> FaultCampaign:
    plan = FaultPlan(
        [
            BurstErrors(start=0.01, duration=0.04, rate=0.2),
            LineDropout(start=0.06, duration=0.02),
        ],
        seed=41,
    )
    return FaultCampaign(
        make_pil=make_pil, plan=plan, t_final=0.1, reference=SETPOINT
    )


class TestParallelCampaign:
    def test_parallel_equals_serial(self):
        intensities = [0.5, 1.0]
        serial = _campaign().run(intensities)
        parallel = _campaign().run(intensities, workers=2)
        assert serial == parallel

    def test_grid_order_preserved(self):
        rows = _campaign().run([1.0, 0.5], modes=(True, False), workers=2)
        assert [(r.intensity, r.reliable) for r in rows] == [
            (1.0, True),
            (1.0, False),
            (0.5, True),
            (0.5, False),
        ]

    def test_workers_one_is_serial_path(self):
        serial = _campaign().run([1.0], modes=(False,))
        one = _campaign().run([1.0], modes=(False,), workers=1)
        assert serial == one

    def test_batched_chunks_equal_serial(self, monkeypatch):
        # force the pool path regardless of host core count
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        intensities = [0.5, 1.0]
        serial = _campaign().run(intensities)
        chunked = _campaign().run(intensities, workers=2, batch=2)
        assert serial == chunked


class TestAutoSerial:
    def test_effectiveness_verdicts(self, monkeypatch):
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        assert FaultCampaign.parallel_effective(None, 8) == (False, "serial request")
        assert FaultCampaign.parallel_effective(1, 8) == (False, "serial request")
        assert FaultCampaign.parallel_effective(4, 1)[0] is False
        assert FaultCampaign.parallel_effective(4, 2)[0] is False  # grid < workers
        assert FaultCampaign.parallel_effective(2, 4) == (True, None)
        monkeypatch.setattr(mod.os, "cpu_count", lambda: 1)
        ok, reason = FaultCampaign.parallel_effective(2, 4)
        assert not ok and "cpu_count" in reason

    def test_single_core_falls_back_and_logs_instant(self, monkeypatch):
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 1)
        tracer = Tracer(capacity=4096, enabled=True)
        with use_tracer(tracer):
            rows = _campaign().run([1.0], modes=(False, True), workers=4)
        assert len(rows) == 2
        names = [e["name"] for e in tracer.events()]
        assert "campaign.auto_serial" in names
        serial = _campaign().run([1.0], modes=(False, True))
        assert rows == serial

    def test_effective_pool_does_not_log_instant(self, monkeypatch):
        import repro.faults.campaign as mod

        monkeypatch.setattr(mod.os, "cpu_count", lambda: 4)
        tracer = Tracer(capacity=65536, enabled=True)
        with use_tracer(tracer):
            _campaign().run([0.5, 1.0], modes=(False,), workers=2)
        names = [e["name"] for e in tracer.events()]
        assert "campaign.auto_serial" not in names
