"""Parallel fault campaigns: determinism and grid ordering.

``FaultCampaign.run(..., workers=N)`` must produce outcomes identical to
the serial sweep — every cell builds a fresh rig and reseeds its own
fault plan, so neither worker count nor completion order may leak into
the rows.
"""

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import BurstErrors, FaultCampaign, FaultPlan, LineDropout
from repro.sim import LossPolicy, PILSimulator

SETPOINT = 100.0


def make_pil(reliable: bool) -> PILSimulator:
    """Module-level factory — the process pool pickles the campaign."""
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=460800,
        plant_dt=1e-4,
        reliable=reliable,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5),
        watchdog_timeout=8e-3 if reliable else None,
    )


def _campaign() -> FaultCampaign:
    plan = FaultPlan(
        [
            BurstErrors(start=0.01, duration=0.04, rate=0.2),
            LineDropout(start=0.06, duration=0.02),
        ],
        seed=41,
    )
    return FaultCampaign(
        make_pil=make_pil, plan=plan, t_final=0.1, reference=SETPOINT
    )


class TestParallelCampaign:
    def test_parallel_equals_serial(self):
        intensities = [0.5, 1.0]
        serial = _campaign().run(intensities)
        parallel = _campaign().run(intensities, workers=2)
        assert serial == parallel

    def test_grid_order_preserved(self):
        rows = _campaign().run([1.0, 0.5], modes=(True, False), workers=2)
        assert [(r.intensity, r.reliable) for r in rows] == [
            (1.0, True),
            (1.0, False),
            (0.5, True),
            (0.5, False),
        ]

    def test_workers_one_is_serial_path(self):
        serial = _campaign().run([1.0], modes=(False,))
        one = _campaign().run([1.0], modes=(False,), workers=1)
        assert serial == one
