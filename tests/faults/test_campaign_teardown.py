"""Regression tests for the campaign teardown path.

A crashing cell used to leave ``FaultCampaign.run`` with a live process
pool and threw away every cell that had already finished.  Now the pool
is shut down in an orderly way and the partial grid is surfaced on
:class:`CampaignInterrupted`.
"""

import pytest

from repro.faults import CampaignInterrupted, FaultCampaign, FaultPlan, LineDropout

from tests.service.helpers import make_fake_pil


def _crashy_make_pil(reliable):
    # the reliable cells crash; the raw cells complete
    return make_fake_pil(reliable, crash=reliable)


def _good_make_pil(reliable):
    return make_fake_pil(reliable)


def _campaign(make_pil) -> FaultCampaign:
    return FaultCampaign(
        make_pil=make_pil,
        plan=FaultPlan([LineDropout(start=0.1, duration=0.05)], seed=7),
        t_final=0.5,
        reference=99.0,
    )


INTENSITIES = [0.0, 0.5, 1.0]


class TestSerialInterrupt:
    def test_partial_grid_surfaced(self):
        with pytest.raises(CampaignInterrupted) as ei:
            _campaign(_crashy_make_pil).run(INTENSITIES)
        err = ei.value
        # grid is (i, raw), (i, reliable), ...: the first raw cell finished
        assert len(err.grid) == len(err.outcomes) == 6
        assert err.completed == 1
        assert err.outcomes[0] is not None and err.outcomes[1] is None
        assert "rig crashed mid-run" in str(err)

    def test_clean_run_unaffected(self):
        rows = _campaign(_good_make_pil).run(INTENSITIES)
        assert len(rows) == 6 and all(r is not None for r in rows)


class TestParallelInterrupt:
    def test_crash_tears_down_pool_and_keeps_finished_cells(self):
        with pytest.raises(CampaignInterrupted) as ei:
            _campaign(_crashy_make_pil).run(INTENSITIES, workers=2)
        err = ei.value
        assert len(err.outcomes) == 6
        # at least the raw cells that ran before shutdown are preserved,
        # and every surviving outcome sits at a raw-link slot
        assert err.completed >= 1
        for k, o in enumerate(err.outcomes):
            if o is not None:
                assert o.reliable is err.grid[k][1]

    def test_pool_not_leaked_subsequent_run_works(self):
        """After an interrupted parallel sweep a fresh sweep must still
        run to completion (no stray executor, no hang)."""
        with pytest.raises(CampaignInterrupted):
            _campaign(_crashy_make_pil).run(INTENSITIES, workers=2)
        rows = _campaign(_good_make_pil).run(INTENSITIES, workers=2)
        assert len(rows) == 6 and all(r is not None for r in rows)


class TestKeyboardInterrupt:
    def test_serial_interrupt_propagates_as_itself(self):
        """Ctrl-C must not be rewrapped: only plain ``Exception`` cells
        become :class:`CampaignInterrupted`."""
        campaign = _campaign(_good_make_pil)
        original = FaultCampaign.run_cell
        calls = {"n": 0}

        def interrupting(self, i, reliable):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return original(self, i, reliable)

        campaign.run_cell = interrupting.__get__(campaign)
        with pytest.raises(KeyboardInterrupt):
            campaign.run(INTENSITIES)
