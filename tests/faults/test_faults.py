"""Fault models, FaultPlan wiring, and campaign determinism."""

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import (
    BurstErrors,
    FaultCampaign,
    FaultPlan,
    LineDropout,
    StepOverrun,
    StuckSensor,
)
from repro.sim import LossPolicy, PILSimulator

SETPOINT = 100.0


class TestModels:
    def test_window_activity(self):
        f = LineDropout(start=0.1, duration=0.05)
        assert not f.active(0.099)
        assert f.active(0.1)
        assert f.active(0.149)
        assert not f.active(0.151)
        assert f.end == pytest.approx(0.15)

    def test_dropout_eats_bytes_only_in_window(self):
        f = LineDropout(start=1.0, duration=1.0)
        assert f.apply_byte(0.5, 0x55) == 0x55
        assert f.apply_byte(1.5, 0x55) is None

    def test_burst_corrupts_at_rate_one(self):
        f = BurstErrors(start=0.0, duration=1.0, rate=1.0)
        f.reseed(3)
        assert f.apply_byte(0.5, 0x55) != 0x55
        assert f.apply_byte(2.0, 0x55) == 0x55  # outside the window

    def test_burst_rate_zero_is_identity(self):
        f = BurstErrors(start=0.0, duration=1.0, rate=0.0)
        f.reseed(3)
        assert f.apply_byte(0.5, 0x55) == 0x55

    def test_burst_determinism_via_reseed(self):
        f = BurstErrors(start=0.0, duration=1.0, rate=0.5)
        f.reseed(7)
        a = [f.apply_byte(0.1, b) for b in range(64)]
        f.reseed(7)
        b = [f.apply_byte(0.1, b) for b in range(64)]
        assert a == b

    def test_stuck_sensor_holds_first_value(self):
        f = StuckSensor("QD1", start=0.1, duration=0.2)
        f.reseed(0)
        assert f.apply_sensor(0.05, "QD1", 10.0) == 10.0   # before window
        assert f.apply_sensor(0.15, "QD1", 20.0) == 20.0   # freezes here
        assert f.apply_sensor(0.2, "QD1", 99.0) == 20.0    # held
        assert f.apply_sensor(0.2, "OTHER", 5.0) == 5.0    # other block clean
        assert f.apply_sensor(0.35, "QD1", 7.0) == 7.0     # window over

    def test_stuck_sensor_explicit_value(self):
        f = StuckSensor("QD1", start=0.0, duration=1.0, value=123.0)
        assert f.apply_sensor(0.5, "QD1", 0.0) == 123.0

    def test_step_overrun_scale(self):
        f = StepOverrun(start=0.1, duration=0.1, factor=4.0)
        assert f.cpu_scale(0.05) == 1.0
        assert f.cpu_scale(0.15) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstErrors(0, 1, rate=2.0)
        with pytest.raises(ValueError):
            StepOverrun(0, 1, factor=0.5)
        with pytest.raises(ValueError):
            LineDropout(0, -1.0)
        with pytest.raises(ValueError):
            LineDropout(-1.0, 1.0)


class TestPlan:
    def test_scaling_produces_new_models(self):
        plan = FaultPlan(
            [BurstErrors(0, 1, rate=0.1), StepOverrun(0, 1, factor=2.0)], seed=1
        )
        scaled = plan.scaled(2.0)
        assert scaled.faults[0].rate == pytest.approx(0.2)
        assert scaled.faults[1].factor == pytest.approx(4.0)
        # the original is untouched
        assert plan.faults[0].rate == pytest.approx(0.1)

    def test_burst_rate_scaling_clamped(self):
        plan = FaultPlan([BurstErrors(0, 1, rate=0.6)])
        assert plan.scaled(10.0).faults[0].rate == 1.0

    def test_byte_fault_chain_short_circuits_on_drop(self):
        plan = FaultPlan(
            [LineDropout(0, 1), BurstErrors(0, 1, rate=1.0)], seed=0
        )
        plan.arm()
        assert plan.byte_fault(0.5, 0x42) is None

    def test_kind_dispatch(self):
        plan = FaultPlan(
            [
                BurstErrors(0, 1, rate=0.1),
                StuckSensor("QD1", 0, 1),
                StepOverrun(0, 1, factor=2.0),
            ]
        )
        assert plan.has_line_faults
        assert plan.has_cpu_faults
        assert len(plan.by_kind("sensor")) == 1

    def test_arm_reseeds_identically(self):
        plan = FaultPlan([BurstErrors(0, 1, rate=0.5)], seed=9)
        plan.arm()
        a = [plan.byte_fault(0.1, b) for b in range(64)]
        plan.arm()
        b = [plan.byte_fault(0.1, b) for b in range(64)]
        assert a == b


def make_pil(reliable: bool) -> PILSimulator:
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=460800,
        plant_dt=1e-4,
        reliable=reliable,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5),
        watchdog_timeout=8e-3 if reliable else None,
    )


class TestCampaign:
    def test_campaign_is_deterministic(self):
        """Acceptance: two runs of the same FaultPlan -> identical metrics."""
        plan = FaultPlan(
            [
                BurstErrors(start=0.02, duration=0.05, rate=0.15),
                LineDropout(start=0.1, duration=0.02),
            ],
            seed=23,
        )

        def campaign():
            c = FaultCampaign(
                make_pil=make_pil,
                plan=plan,
                t_final=0.15,
                reference=SETPOINT,
            )
            return [o.key_metrics() for o in c.run([1.0], modes=(False, True))]

        assert campaign() == campaign()

    def test_campaign_rows_cover_grid(self):
        plan = FaultPlan([BurstErrors(0.0, 0.1, rate=0.1)], seed=5)
        c = FaultCampaign(
            make_pil=make_pil, plan=plan, t_final=0.06, reference=SETPOINT
        )
        rows = c.run([0.5, 1.0], modes=(False, True))
        assert [(r.intensity, r.reliable) for r in rows] == [
            (0.5, False),
            (0.5, True),
            (1.0, False),
            (1.0, True),
        ]
        for r in rows:
            assert r.steps > 0
            assert r.iae >= 0.0


class TestPlanOnPil:
    def test_stuck_sensor_freezes_the_loop_feedback(self):
        """A stuck speed sensor mid-run: the controller sees a frozen
        reading, keeps pushing, and the true speed overshoots the
        setpoint while the window lasts."""
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)
        # freeze the quadrature count early in the acceleration ramp
        qd_name = pil_sensor_block_name(app)
        FaultPlan(
            [StuckSensor(qd_name, start=0.05, duration=0.45)], seed=1
        ).attach(pil)
        r = pil.run(0.5)
        speed = r.result["speed"]
        assert float(speed.max()) > 1.3 * SETPOINT  # ran away while blind

    def test_cpu_overrun_starves_watchdog(self):
        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        pil = PILSimulator(
            app,
            baud=460800,
            plant_dt=1e-4,
            reliable=True,
            watchdog_timeout=6e-3,
        )
        FaultPlan(
            [StepOverrun(start=0.05, duration=0.05, factor=50.0)], seed=1
        ).attach(pil)
        r = pil.run(0.15)
        assert r.recoveries >= 1
        assert r.watchdog_resets >= 1

    def test_line_faults_require_rs232(self):
        from repro.core.target import TargetError
        from repro.sim import LINUX_TARGET

        sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
        app = PEERTTarget(sm.model).build()
        pil = PILSimulator(app, link="spi", target=LINUX_TARGET)
        FaultPlan([LineDropout(0.0, 0.1)]).attach(pil)
        with pytest.raises(TargetError, match="rs232"):
            pil.run(0.05)


def pil_sensor_block_name(app) -> str:
    ports = app.sensor_ports()
    assert ports, "servo model must expose a sensor port"
    return ports[0][2].name
