"""Profiler edge cases: empty ledgers and single-activation vectors."""

import pytest

from repro.mcu.cpu import ExecutionRecord
from repro.mcu.device import MCUDevice
from repro.rt.profiler import Profiler


@pytest.fixture
def device():
    return MCUDevice("MC56F8367")


def _record(t_request, t_start, t_end, name="pwm_isr"):
    return ExecutionRecord(
        name=name, t_request=t_request, t_start=t_start, t_end=t_end, cycles=100.0
    )


class TestEmptyLedger:
    def test_no_vectors(self, device):
        assert Profiler(device).vectors() == []

    def test_stats_on_unknown_vector_raises(self, device):
        with pytest.raises(ValueError, match="no activations"):
            Profiler(device).stats("pwm_isr")

    def test_report_renders_without_rows(self, device):
        text = Profiler(device).report(horizon=1e-3)
        assert "MC56F8367" in text and "CPU load 0.00%" in text

    def test_cpu_load_zero(self, device):
        assert Profiler(device).cpu_load(1e-3) == 0.0


class TestSingleActivation:
    def test_stats_degenerate_to_the_one_sample(self, device):
        device.cpu.records.append(_record(1e-3, 1.1e-3, 1.4e-3))
        s = Profiler(device).stats("pwm_isr")
        assert s.count == 1
        assert s.exec_min == s.exec_avg == s.exec_max == pytest.approx(0.3e-3)
        assert s.response_min == s.response_max == pytest.approx(0.4e-3)
        assert s.latency_avg == pytest.approx(0.1e-3)

    def test_jitter_requires_two_activations(self, device):
        device.cpu.records.append(_record(1e-3, 1.1e-3, 1.4e-3))
        with pytest.raises(ValueError, match="need >= 2"):
            Profiler(device).jitter("pwm_isr", nominal_period=1e-3)


class TestTwoActivations:
    def test_jitter_well_defined(self, device):
        device.cpu.records.append(_record(1e-3, 1.0e-3, 1.2e-3))
        device.cpu.records.append(_record(2e-3, 2.1e-3, 2.3e-3))
        j = Profiler(device).jitter("pwm_isr", nominal_period=1e-3)
        assert j.max_abs_jitter == pytest.approx(0.1e-3)
        assert j.period_min == j.period_max == pytest.approx(1.1e-3)
        assert j.overruns == 0

    def test_vectors_sorted_and_filtered(self, device):
        device.cpu.records.append(_record(1e-3, 1.0e-3, 1.2e-3, name="z_isr"))
        device.cpu.records.append(_record(2e-3, 2.0e-3, 2.2e-3, name="adc_isr"))
        p = Profiler(device)
        assert p.vectors() == ["adc_isr", "z_isr"]
        assert len(p.records("adc_isr")) == 1
        assert len(p.records()) == 2
