"""Tests for the bare-board runtime and the profiler."""

import pytest

from repro.mcu import DispatchMode, MCUDevice, MC56F8367
from repro.rt import BareBoardRuntime, Profiler


def make_runtime(period=1e-3, step_cycles=6000.0, mode=DispatchMode.NONPREEMPTIVE):
    dev = MCUDevice(MC56F8367, dispatch_mode=mode)
    steps = []
    rt = BareBoardRuntime(dev, period, lambda: steps.append(dev.time), step_cycles)
    return dev, rt, steps


class TestBareBoardRuntime:
    def test_periodic_steps_execute(self):
        dev, rt, steps = make_runtime()
        achieved = rt.install()
        assert achieved == pytest.approx(1e-3, rel=1e-6)
        rt.start()
        rt.run_for(10.5e-3)
        assert len(steps) == 10

    def test_event_task_coexists(self):
        dev, rt, steps = make_runtime()
        rt.install()
        events = []
        rt.add_event_task("adc_eoc", cycles=200, action=lambda: events.append(dev.time))
        rt.start()
        dev.schedule(2.5e-3, lambda: dev.intc.request("adc_eoc"))
        rt.run_for(5.5e-3)
        assert len(events) == 1 and len(steps) == 5

    def test_double_install_rejected(self):
        dev, rt, _ = make_runtime()
        rt.install()
        with pytest.raises(RuntimeError):
            rt.install()

    def test_start_requires_install(self):
        dev, rt, _ = make_runtime()
        with pytest.raises(RuntimeError):
            rt.start()

    def test_stop_halts_steps(self):
        dev, rt, steps = make_runtime()
        rt.install()
        rt.start()
        rt.run_for(3.5e-3)
        rt.stop()
        rt.run_for(5e-3)
        assert len(steps) == 3

    def test_background_task_starves_under_load(self):
        # with a heavy step the background loop gets less CPU
        dev1, rt1, _ = make_runtime(step_cycles=1000.0)
        rt1.install(); rt1.start(); rt1.run_for(0.1)
        dev2, rt2, _ = make_runtime(step_cycles=50000.0)
        rt2.install(); rt2.start(); rt2.run_for(0.1)
        assert rt2.background_iterations < rt1.background_iterations


class TestWatchdogService:
    def arm(self, rt, dev, timeout=5e-3):
        wd = dev.wdog(0)
        wd.configure(timeout)
        wd.start()
        rt.service_watchdog(wd)
        return wd

    def test_healthy_loop_keeps_the_dog_quiet(self):
        dev, rt, _ = make_runtime(step_cycles=6000.0)  # ~10 % load
        rt.install()
        wd = self.arm(rt, dev)
        rt.start()
        rt.run_for(50e-3)
        assert wd.reset_count == 0
        assert rt.watchdog_services >= 45  # kicked nearly every period

    def test_overrunning_step_starves_the_dog(self):
        # 70k cycles > the 60k-cycle period: the CPU is almost always
        # saturated (idle appears only when an overrun swallows a tick),
        # the background task rarely runs, the dog keeps firing
        dev, rt, _ = make_runtime(step_cycles=70000.0)
        rt.install()
        wd = self.arm(rt, dev)
        rt.start()
        rt.run_for(50e-3)
        assert rt.watchdog_services < 15
        assert wd.reset_count >= 1

    def test_timeout_must_exceed_check_period(self):
        dev, rt, _ = make_runtime(period=1e-3)
        wd = dev.wdog(0)
        wd.configure(1e-3)
        with pytest.raises(ValueError, match="exceed"):
            rt.service_watchdog(wd)


class TestProfiler:
    def test_stats_match_configuration(self):
        dev, rt, _ = make_runtime(step_cycles=6000.0)
        rt.install()
        rt.start()
        rt.run_for(50.5e-3)
        prof = Profiler(dev)
        st = prof.stats(rt.TICK_VECTOR)
        assert st.count == 50
        assert st.exec_avg == pytest.approx(6000 / 60e6, rel=1e-6)
        assert st.latency_avg == pytest.approx(22 / 60e6, rel=1e-6)

    def test_missing_vector_raises(self):
        dev, rt, _ = make_runtime()
        with pytest.raises(ValueError):
            Profiler(dev).stats("nothing")

    def test_jitter_zero_without_interference(self):
        dev, rt, _ = make_runtime()
        rt.install()
        rt.start()
        rt.run_for(20.5e-3)
        j = Profiler(dev).jitter(rt.TICK_VECTOR, 1e-3)
        assert j.max_abs_jitter < 1e-12
        assert j.overruns == 0

    def test_jitter_appears_with_competing_isr(self):
        dev, rt, _ = make_runtime()
        rt.install()
        # a long higher-priority ISR delays some ticks (non-preemptive, so
        # a tick that lands mid-ISR waits)
        blocker = []
        rt.add_event_task("noise", cycles=30000, action=lambda: blocker.append(1),
                          priority=1)
        rt.start()
        for k in range(5):
            dev.schedule(2e-3 * k + 0.9e-3, lambda: dev.intc.request("noise"))
        rt.run_for(20.5e-3)
        j = Profiler(dev).jitter(rt.TICK_VECTOR, 1e-3)
        assert j.max_abs_jitter > 1e-4  # 30k cycles = 0.5 ms blocking

    def test_overrun_detected_when_step_exceeds_period(self):
        dev, rt, _ = make_runtime(period=1e-3, step_cycles=70000.0)  # > 1 ms
        rt.install()
        rt.start()
        rt.run_for(10e-3)
        j = Profiler(dev).jitter(rt.TICK_VECTOR, 1e-3)
        assert j.overruns > 0

    def test_cpu_load(self):
        dev, rt, _ = make_runtime(step_cycles=6000.0)
        rt.install()
        rt.start()
        rt.run_for(100e-3)
        load = Profiler(dev).cpu_load(100e-3)
        assert load == pytest.approx(6000 / 60e6 / 1e-3, rel=0.05)  # ~10%

    def test_report_formatting(self):
        dev, rt, _ = make_runtime()
        rt.install()
        rt.start()
        rt.run_for(10.5e-3)
        text = Profiler(dev).report(10.5e-3)
        assert "rt_tick" in text
        assert "CPU load" in text
        assert "MC56F8367" in text

    def test_preemptive_mode_reduces_high_priority_response(self):
        def measure(mode):
            dev, rt, _ = make_runtime(step_cycles=30000.0, mode=mode)
            rt.install()
            hits = []
            rt.add_event_task("fast", cycles=100, action=lambda: hits.append(1),
                              priority=0)
            rt.start()
            for k in range(10):
                dev.schedule(1e-3 * k + 0.2e-3, lambda: dev.intc.request("fast"))
            rt.run_for(15e-3)
            return Profiler(dev).stats("fast").response_max

        non = measure(DispatchMode.NONPREEMPTIVE)
        pre = measure(DispatchMode.PREEMPTIVE)
        assert pre < non
