"""Tests for the static response-time analysis, validated against the
simulated interrupt controller (analysis must be safe, and tight when the
critical instant occurs)."""

import pytest

from repro.mcu import DispatchMode, InterruptSource, MCUDevice, MC56F8367
from repro.rt import AnalyzedTask, BareBoardRuntime, Profiler, ResponseTimeAnalysis

F = 60e6
LAT = 22  # MC56F8367 vector latency


def task(name, prio, period, wcec):
    return AnalyzedTask(name, prio, period, wcec, latency_cycles=LAT)


class TestBasics:
    def test_utilization(self):
        rta = ResponseTimeAnalysis(
            [task("a", 1, 1e-3, 6000), task("b", 2, 2e-3, 12000)], F
        )
        expected = (6000 + LAT) / F / 1e-3 + (12000 + LAT) / F / 2e-3
        assert rta.utilization() == pytest.approx(expected)

    def test_single_task_response(self):
        rta = ResponseTimeAnalysis([task("a", 1, 1e-3, 6000)], F)
        r = rta.response_time("a")
        assert r.response_time == pytest.approx((6000 + LAT) / F)
        assert r.schedulable

    def test_unknown_task(self):
        rta = ResponseTimeAnalysis([task("a", 1, 1e-3, 100)], F)
        with pytest.raises(KeyError):
            rta.response_time("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ResponseTimeAnalysis([task("a", 1, 1e-3, 1), task("a", 2, 1e-3, 1)], F)

    def test_overload_unschedulable(self):
        rta = ResponseTimeAnalysis(
            [task("a", 1, 1e-3, 50_000), task("b", 2, 1e-3, 50_000)], F
        )
        assert not rta.all_schedulable()

    def test_report_format(self):
        rta = ResponseTimeAnalysis([task("a", 1, 1e-3, 6000)], F)
        text = rta.report()
        assert "response-time analysis" in text and "a" in text


class TestNonPreemptiveSemantics:
    def test_blocking_term_is_longest_other(self):
        rta = ResponseTimeAnalysis(
            [task("hi", 1, 1e-3, 600), task("lo", 5, 10e-3, 30_000)], F,
            DispatchMode.NONPREEMPTIVE,
        )
        r = rta.response_time("hi")
        assert r.blocking == pytest.approx((30_000 + LAT) / F)
        # hi may have to wait out the whole lo handler
        assert r.response_time >= r.blocking

    def test_preemptive_has_no_blocking(self):
        rta = ResponseTimeAnalysis(
            [task("hi", 1, 1e-3, 600), task("lo", 5, 10e-3, 30_000)], F,
            DispatchMode.PREEMPTIVE,
        )
        r = rta.response_time("hi")
        assert r.blocking == 0.0
        assert r.response_time < 1e-3 * 0.1

    def test_low_priority_suffers_interference(self):
        rta = ResponseTimeAnalysis(
            [task("hi", 1, 1e-3, 6000), task("lo", 5, 5e-3, 6000)], F,
            DispatchMode.NONPREEMPTIVE,
        )
        r = rta.response_time("lo")
        assert r.interference > 0
        assert r.response_time > (6000 + LAT) / F


class TestBoundsAgainstSimulation:
    def _simulate_worst(self, mode, tick_cycles, noise_cycles, noise_period):
        """Simulated max response of the tick under periodic interference
        arranged to hit the critical instant (noise released just before
        each tick)."""
        dev = MCUDevice(MC56F8367, dispatch_mode=mode)
        rt = BareBoardRuntime(dev, 1e-3, lambda: None, float(tick_cycles),
                              priority=2)
        rt.install()
        dev.intc.register(InterruptSource("noise", priority=1,
                                          cycles=float(noise_cycles)))
        t = 1e-3 - 1e-7  # just before the first tick
        while t < 0.2:
            dev.schedule(t, lambda: dev.intc.request("noise"))
            t += noise_period
        rt.start()
        dev.run_for(0.21)
        return Profiler(dev).stats(rt.TICK_VECTOR).response_max

    @pytest.mark.parametrize("mode", [DispatchMode.NONPREEMPTIVE,
                                      DispatchMode.PREEMPTIVE])
    def test_analysis_upper_bounds_simulation(self, mode):
        tick_c, noise_c, noise_T = 6000, 9000, 2e-3
        tasks = [
            task("noise", 1, noise_T, noise_c),
            task("rt_tick", 2, 1e-3, tick_c),
        ]
        rta = ResponseTimeAnalysis(tasks, F, mode)
        bound = rta.response_time("rt_tick").response_time
        observed = self._simulate_worst(mode, tick_c, noise_c, noise_T)
        assert observed <= bound * (1 + 1e-9), "analysis must be safe"
        # and reasonably tight: within 2x of the constructed critical case
        assert bound <= observed * 2.5

    def test_app_task_derivation(self):
        from repro.casestudy import ServoConfig, build_servo_model
        from repro.core import PEERTTarget
        from repro.rt import tasks_from_app

        sm = build_servo_model(ServoConfig())
        app = PEERTTarget(sm.model).build()
        tasks = tasks_from_app(app)
        rta = ResponseTimeAnalysis(tasks, 60e6)
        assert rta.all_schedulable()
        r = rta.response_time(app.tick_vector)
        # the design has huge margin at 1 kHz
        assert r.response_time < 0.1e-3
