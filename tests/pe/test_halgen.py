"""Focused tests for the HAL code generator internals."""

import pytest

from repro.pe import ApiStyle, PEProject
from repro.pe.beans import ADCBean, PWMBean, TimerIntBean
from repro.pe.halgen import HalBundle, generate_hal, method_symbol


def small_project(chip="MC56F8367"):
    proj = PEProject("p", chip)
    proj.add_bean(ADCBean("AD1", channel=3))
    proj.add_bean(PWMBean("PWM1", frequency=10e3))
    return proj


class TestMethodSymbols:
    def test_pe_style(self):
        b = ADCBean("AD1")
        assert method_symbol(b, "Measure", ApiStyle.PE) == "AD1_Measure"

    def test_autosar_known_mapping(self):
        b = ADCBean("AD1")
        assert (
            method_symbol(b, "Measure", ApiStyle.AUTOSAR)
            == "Adc_StartGroupConversion_AD1"
        )

    def test_autosar_fallback_for_unmapped(self):
        b = TimerIntBean("TI1")
        # Enable maps to StartTimer; an unmapped name keeps its own
        assert method_symbol(b, "Enable", ApiStyle.AUTOSAR) == "Gpt_StartTimer_TI1"


class TestGeneratedContent:
    def test_header_guard_and_include(self):
        proj = small_project()
        proj.validate()
        hal = generate_hal(proj)
        hdr = hal.files["AD1.h"]
        assert "#ifndef __AD1_H" in hdr
        assert '#include "PE_Types.h"' in hdr

    def test_init_body_carries_validated_settings(self):
        proj = small_project()
        proj.validate()  # derives achieved values
        hal = generate_hal(proj)
        src = hal.files["AD1.c"]
        assert "AD1_Init" in src
        assert "CHANNEL" in src.upper()  # channel register write

    def test_event_callbacks_only_when_enabled(self):
        proj = small_project()
        hal1 = generate_hal(proj)
        assert "AD1_OnEnd" not in hal1.files["AD1.h"]
        proj.bean("AD1").enable_event("OnEnd")
        hal2 = generate_hal(proj)
        assert "AD1_OnEnd" in hal2.files["AD1.h"]

    def test_pe_types_shared_header(self):
        hal = generate_hal(small_project())
        assert "typedef unsigned short word;" in hal.files["PE_Types.h"]

    def test_bundle_partitions(self):
        hal = generate_hal(small_project())
        assert set(hal.headers()) | set(hal.sources()) == set(hal.files)
        assert all(n.endswith(".h") for n in hal.headers())

    def test_symbol_table_excludes_comments(self):
        hal = generate_hal(small_project())
        for sym in hal.symbol_table():
            assert " " not in sym
            assert sym.isidentifier()


class TestChipSpecificBodies:
    def test_bodies_name_the_chip(self):
        proj = small_project("MCF5235")
        hal = generate_hal(proj)
        assert "MCF5235" in hal.files["PWM1.c"]
        assert "MCF5235" in hal.files["PWM1.h"]

    def test_same_interface_different_body(self):
        p1, p2 = small_project("MC56F8367"), small_project("MCF5235")
        p1.validate(), p2.validate()
        h1, h2 = generate_hal(p1), generate_hal(p2)
        assert h1.symbol_table() == h2.symbol_table()
        assert h1.files["AD1.c"] != h2.files["AD1.c"]
