"""Tests for the Embedded Bean framework and the bean library."""

import pytest

from repro.mcu import InterruptSource, MC56F8367
from repro.pe import BeanConfigError, PEProject
from repro.pe.beans import (
    ADCBean,
    AsynchroSerialBean,
    BitIOBean,
    CPUBean,
    PWMBean,
    QuadDecBean,
    TimerIntBean,
    WatchDogBean,
)


class TestBeanBasics:
    def test_property_set_get(self):
        b = ADCBean("AD1")
        b["channel"] = 3
        assert b["channel"] == 3

    def test_kwargs_constructor(self):
        b = ADCBean("AD1", channel=2, resolution=10)
        assert b["channel"] == 2 and b["resolution"] == 10

    def test_invalid_property_value_immediate(self):
        b = ADCBean("AD1")
        with pytest.raises(BeanConfigError):
            b["resolution"] = 13  # not an offered resolution

    def test_unknown_property(self):
        with pytest.raises(BeanConfigError):
            ADCBean("AD1")["nope"] = 1

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            ADCBean("1AD")
        with pytest.raises(ValueError):
            ADCBean("AD 1")

    def test_unbound_call_rejected(self):
        with pytest.raises(RuntimeError, match="not bound"):
            ADCBean("AD1").call("Measure")

    def test_unknown_method_rejected(self):
        with pytest.raises(BeanConfigError):
            ADCBean("AD1").call("Nope")

    def test_event_vector_naming(self):
        b = ADCBean("AD1")
        assert b.event_vector("OnEnd") == "AD1_OnEnd"
        with pytest.raises(BeanConfigError):
            b.event_vector("OnNothing")

    def test_inspector_lists_everything(self):
        b = PWMBean("PWM1")
        text = b.inspector()
        assert "frequency" in text
        assert "SetRatio16" in text
        assert "OnEnd" in text
        assert "Bean Inspector" in text


def bound_project(**beans):
    proj = PEProject("t", "MC56F8367")
    for bean in beans.values():
        proj.add_bean(bean)
    device = proj.build_device()
    return proj, device


class TestADCBean:
    def test_measure_getvalue_roundtrip(self):
        proj, dev = bound_project(ad=ADCBean("AD1", channel=0))
        dev.analog_in[0] = 1.65
        proj.bean("AD1").call("Measure", False)
        dev.run_for(1e-3)
        raw = proj.bean("AD1").call("GetValue")
        assert abs(raw - 2048) <= 1  # mid-rail on 12 bits

    def test_reduced_resolution_shifts(self):
        proj, dev = bound_project(ad=ADCBean("AD1", channel=0, resolution=8))
        dev.analog_in[0] = 3.3
        proj.bean("AD1").call("Measure", False)
        dev.run_for(1e-3)
        assert proj.bean("AD1").call("GetValue") == 255

    def test_onend_event_fires(self):
        ad = ADCBean("AD1", channel=0)
        ad.enable_event("OnEnd")
        proj, dev = bound_project(ad=ad)
        hits = []
        dev.intc.register(
            InterruptSource("AD1_OnEnd", priority=2, cycles=30,
                            on_complete=lambda d: hits.append(d.time))
        )
        ad.call("Measure", False)
        dev.run_for(1e-3)
        assert len(hits) == 1

    def test_continuous_mode(self):
        ad = ADCBean("AD1", channel=0, mode="continuous")
        proj, dev = bound_project(ad=ad)
        dev.analog_in[0] = 2.0
        dev.run_for(1e-3)
        assert ad.call("GetValue") > 0


class TestPWMBean:
    def test_set_ratio16(self):
        proj, dev = bound_project(p=PWMBean("PWM1", frequency=20e3))
        p = proj.bean("PWM1")
        p.call("Enable")
        achieved = p.call("SetRatio16", 32768)
        assert achieved == pytest.approx(0.5, abs=1e-3)
        assert dev.pwm(0).duty(0) == achieved

    def test_polarity_low_inverts(self):
        proj, dev = bound_project(p=PWMBean("PWM1", frequency=20e3, polarity="low"))
        p = proj.bean("PWM1")
        p.call("Enable")
        achieved = p.call("SetRatio16", 0)
        assert achieved == 1.0

    def test_duty_percent(self):
        proj, dev = bound_project(p=PWMBean("PWM1", frequency=20e3))
        p = proj.bean("PWM1")
        p.call("Enable")
        assert p.call("SetDutyPercent", 25) == pytest.approx(0.25, abs=1e-3)

    def test_derived_properties_after_validate(self):
        proj = PEProject("t", "MC56F8367")
        p = proj.add_bean(PWMBean("PWM1", frequency=20e3))
        proj.validate()
        assert p["achieved_frequency"] == pytest.approx(20e3, rel=1e-3)
        assert p["duty_resolution"] == pytest.approx(1 / 3000)


class TestTimerIntBean:
    def test_periodic_event(self):
        ti = TimerIntBean("TI1", period=1e-3)
        proj, dev = bound_project(ti=ti)
        ticks = []
        dev.intc.register(
            InterruptSource("TI1_OnInterrupt", priority=1, cycles=50,
                            on_start=lambda d: ticks.append(d.time))
        )
        ti.call("Enable")
        dev.run_for(10.5e-3)
        assert len(ticks) == 10

    def test_achieved_period_derived(self):
        proj = PEProject("t", "MC56F8367")
        ti = proj.add_bean(TimerIntBean("TI1", period=1e-3))
        proj.validate()
        assert ti["achieved_period"] == pytest.approx(1e-3, rel=1e-6)


class TestBitIOBean:
    def test_output_putval(self):
        b = BitIOBean("LED1", pin=5, direction="output", init_value=1)
        proj, dev = bound_project(b=b)
        assert b.call("GetVal") == 1
        b.call("PutVal", 0)
        assert b.call("GetVal") == 0
        b.call("NegVal")
        assert b.call("GetVal") == 1

    def test_input_drive(self):
        b = BitIOBean("KEY1", pin=2, direction="input")
        proj, dev = bound_project(b=b)
        assert b.call("GetVal") == 0
        b.drive(1)
        assert b.call("GetVal") == 1

    def test_edge_event(self):
        b = BitIOBean("KEY1", pin=2, direction="input", edge_irq="rising")
        b.enable_event("OnEdge")
        proj, dev = bound_project(b=b)
        hits = []
        dev.intc.register(
            InterruptSource("KEY1_OnEdge", priority=3, cycles=20,
                            on_complete=lambda d: hits.append(1))
        )
        b.drive(1)
        b.drive(0)
        b.drive(1)
        dev.run_for(1e-3)
        assert len(hits) == 2

    def test_pin_maps_across_ports(self):
        # MC56F8367 gpio ports are 16 wide; pin 20 -> gpio1 pin 4
        b = BitIOBean("IO", pin=20, direction="output")
        proj, dev = bound_project(b=b)
        b.call("PutVal", 1)
        assert dev.gpio(1).read(4) == 1


class TestQuadDecBean:
    def test_get_position(self):
        import math

        q = QuadDecBean("QD1")
        proj, dev = bound_project(q=q)
        dev.qdec(0).update_from_angle(math.pi, ppr=100)
        assert q.call("GetPosition") == 200


class TestWatchDogBean:
    def test_clear_keeps_alive(self):
        w = WatchDogBean("WD1", timeout=1e-3)
        proj, dev = bound_project(w=w)
        w.call("Enable")
        for k in range(1, 10):
            dev.schedule(k * 0.5e-3, lambda: w.call("Clear"))
        dev.run_for(5e-3)
        assert dev.wdog(0).reset_count == 0


class TestSerialBean:
    def test_achieved_baud_derived(self):
        proj = PEProject("t", "MC56F8367")
        s = proj.add_bean(AsynchroSerialBean("AS1", baud=115200))
        report = proj.validate()
        assert report.ok
        assert s["achieved_baud"] == pytest.approx(113636, rel=1e-3)

    def test_send_through_loopback(self):
        from repro.comm import SerialLine, HostSerialPort

        s = AsynchroSerialBean("AS1", baud=115200)
        proj, dev = bound_project(s=s)
        line = SerialLine(dev)
        s.sci.connect(line, 0)
        line.declare_baud(0, s.sci.baud)
        host = HostSerialPort(dev, 115200)
        host.connect(line, 1)
        s.call("SendChar", 0x41)
        dev.run_for(1e-2)
        assert host.receive() == b"A"


class TestCPUBean:
    def test_default_clock(self):
        cpu = CPUBean("Cpu", chip="MC56F8367")
        assert cpu.clock_tree().f_sys == pytest.approx(60e6)

    def test_invalid_pll_caught_by_check(self):
        cpu = CPUBean("Cpu", chip="MC56F8367", xtal=8e6, pll_mult=20, pll_div=1)
        findings = cpu.check(cpu.descriptor, None, None)
        assert any(f.level == "error" for f in findings)

    def test_unknown_chip_rejected(self):
        with pytest.raises(BeanConfigError):
            CPUBean("Cpu", chip="MC13337")
