"""Tests for the expert system, project validation and HAL generation."""

import pytest

from repro.pe import ApiStyle, PEProject
from repro.pe.beans import (
    ADCBean,
    AsynchroSerialBean,
    BitIOBean,
    PWMBean,
    QuadDecBean,
    TimerIntBean,
)
from repro.pe.project import PEProjectError


def servo_project(chip="MC56F8367"):
    """The case-study bean set."""
    proj = PEProject("servo", chip)
    proj.add_bean(PWMBean("PWM1", frequency=20e3))
    proj.add_bean(QuadDecBean("QD1"))
    proj.add_bean(TimerIntBean("TI1", period=1e-3))
    proj.add_bean(BitIOBean("KEY_MODE", pin=0, direction="input"))
    proj.add_bean(BitIOBean("KEY_UP", pin=1, direction="input"))
    proj.add_bean(BitIOBean("KEY_DOWN", pin=2, direction="input"))
    return proj


class TestAllocation:
    def test_automatic_packing(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(ADCBean("AD1"))
        proj.add_bean(ADCBean("AD2"))
        report = proj.validate()
        assert report.ok
        assert report.allocation["AD1"] == "adc0"
        assert report.allocation["AD2"] == "adc1"

    def test_overallocation_detected(self):
        proj = PEProject("t", "MC56F8367")  # chip has 2 ADC converters
        for i in range(3):
            proj.add_bean(ADCBean(f"AD{i}"))
        report = proj.validate()
        assert not report.ok
        assert any("already allocated" in str(f) for f in report.errors)

    def test_explicit_device_request(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(ADCBean("AD1", device="adc1"))
        proj.add_bean(ADCBean("AD2"))
        report = proj.validate()
        assert report.ok
        assert report.allocation["AD1"] == "adc1"
        assert report.allocation["AD2"] == "adc0"

    def test_conflicting_explicit_requests(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(ADCBean("AD1", device="adc0"))
        proj.add_bean(ADCBean("AD2", device="adc0"))
        report = proj.validate()
        assert not report.ok

    def test_missing_peripheral_kind(self):
        # MC56F8013 has no quadrature decoder
        proj = PEProject("t", "MC56F8013")
        proj.add_bean(QuadDecBean("QD1"))
        report = proj.validate()
        assert not report.ok
        assert any("no" in str(f).lower() for f in report.errors)


class TestValidationFindings:
    def test_servo_project_is_clean(self):
        report = servo_project().validate()
        assert report.ok, report.summary()

    def test_pin_conflict(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(BitIOBean("A", pin=4))
        proj.add_bean(BitIOBean("B", pin=4))
        report = proj.validate()
        assert not report.ok
        assert any("pin 4" in str(f) for f in report.errors)

    def test_resolution_error(self):
        proj = PEProject("t", "MC9S12DP256")  # 10-bit ADC
        proj.add_bean(ADCBean("AD1", resolution=12))
        report = proj.validate()
        assert not report.ok
        assert any("12-bit" in str(f) for f in report.errors)

    def test_unreachable_period_error(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(TimerIntBean("TI1", period=100.0))
        report = proj.validate()
        assert not report.ok

    def test_inexact_rate_warning(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(PWMBean("PWM1", frequency=19997.0))
        report = proj.validate()
        assert report.ok  # warning, not error
        # achieved will be quantized far enough to warn? (within 1% -> no
        # warning); use SCI with a known off-grid baud for a sure warning
        proj2 = PEProject("t2", "MC56F8367")
        proj2.add_bean(AsynchroSerialBean("AS1", baud=115200))
        rep2 = proj2.validate()
        assert rep2.ok
        assert any("deviates" in str(f) for f in rep2.warnings)

    def test_duplicate_bean_names_detected(self):
        proj = PEProject("t", "MC56F8367")
        proj.add_bean(ADCBean("AD1"))
        with pytest.raises(PEProjectError):
            proj.add_bean(PWMBean("AD1"))


class TestRetargeting:
    def test_swap_cpu_revalidates(self):
        proj = servo_project("MC56F8367")
        assert proj.validate().ok
        report = proj.set_cpu("MC56F8013")  # no quadrature decoder
        assert not report.ok

    def test_swap_to_capable_chip_is_clean(self):
        proj = servo_project("MC56F8367")
        report = proj.set_cpu("MCF5235")
        assert report.ok, [str(f) for f in report.errors]

    def test_beans_untouched_by_retarget(self):
        proj = servo_project()
        before = {n: b for n, b in proj.beans.items()}
        proj.set_cpu("MCF5235")
        assert proj.beans == before  # same objects, zero edits


class TestBuildDevice:
    def test_build_binds_all_beans(self):
        proj = servo_project()
        dev = proj.build_device()
        assert dev.chip.name == "MC56F8367"
        for bean in proj.beans.values():
            assert bean.bound

    def test_build_refused_on_errors(self):
        proj = PEProject("t", "MC56F8013")
        proj.add_bean(QuadDecBean("QD1"))
        with pytest.raises(PEProjectError, match="validation errors"):
            proj.build_device()


class TestHalGeneration:
    def test_bundle_has_file_pair_per_bean(self):
        proj = servo_project()
        hal = proj.generate_hal()
        for bean in proj.all_beans():
            assert f"{bean.name}.h" in hal.files
            assert f"{bean.name}.c" in hal.files
        assert "PE_Types.h" in hal.files

    def test_pe_style_symbols(self):
        hal = servo_project().generate_hal(ApiStyle.PE)
        syms = hal.symbol_table()
        assert "PWM1_SetRatio16" in syms
        assert "TI1_Enable" in syms
        assert "QD1_GetPosition" in syms

    def test_autosar_style_symbols(self):
        hal = servo_project().generate_hal(ApiStyle.AUTOSAR)
        syms = hal.symbol_table()
        assert any(s.startswith("Pwm_SetDutyCycle") for s in syms)
        assert any(s.startswith("Gpt_StartTimer") for s in syms)

    def test_api_identical_across_chips(self):
        # the portability claim: headers (the API) do not change when the
        # CPU bean changes; only the .c bodies do
        p1 = servo_project("MC56F8367")
        hal1 = p1.generate_hal()
        p2 = servo_project("MC56F8367")
        p2.set_cpu("MCF5235")
        hal2 = p2.generate_hal()
        assert hal1.symbol_table() == hal2.symbol_table()
        # bodies differ (chip-specific)
        assert hal1.files["PWM1.c"] != hal2.files["PWM1.c"]

    def test_generation_refused_on_errors(self):
        proj = PEProject("t", "MC56F8013")
        proj.add_bean(QuadDecBean("QD1"))
        with pytest.raises(PEProjectError):
            proj.generate_hal()

    def test_balanced_braces_in_sources(self):
        hal = servo_project().generate_hal()
        for name, src in hal.sources().items():
            assert src.count("{") == src.count("}"), name

    def test_loc_counter(self):
        hal = servo_project().generate_hal()
        assert hal.total_loc > 100
