"""Unit tests for the bean property system."""

import pytest

from repro.pe import (
    BeanConfigError,
    BoolProperty,
    DerivedProperty,
    EnumProperty,
    FloatProperty,
    IntProperty,
)


class TestEnumProperty:
    def test_valid_choice(self):
        p = EnumProperty("mode", ["once", "continuous"])
        assert p.validate("B", "once") == "once"

    def test_invalid_choice(self):
        p = EnumProperty("mode", ["once", "continuous"])
        with pytest.raises(BeanConfigError, match="mode"):
            p.validate("B", "sometimes")

    def test_default_is_first_choice(self):
        assert EnumProperty("m", ["a", "b"]).default == "a"

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            EnumProperty("m", [])


class TestIntProperty:
    def test_bounds(self):
        p = IntProperty("ch", minimum=0, maximum=7)
        assert p.validate("B", 3) == 3
        with pytest.raises(BeanConfigError):
            p.validate("B", 8)
        with pytest.raises(BeanConfigError):
            p.validate("B", -1)

    def test_non_integer_rejected(self):
        p = IntProperty("ch")
        with pytest.raises(BeanConfigError):
            p.validate("B", "three")
        with pytest.raises(BeanConfigError):
            p.validate("B", 1.5)

    def test_integral_float_accepted(self):
        assert IntProperty("ch").validate("B", 3.0) == 3


class TestFloatProperty:
    def test_bounds_and_units_in_message(self):
        p = FloatProperty("f", minimum=1.0, maximum=10.0, unit="Hz")
        assert p.validate("B", 5) == 5.0
        with pytest.raises(BeanConfigError, match="Hz"):
            p.validate("B", 100.0)

    def test_nan_rejected(self):
        with pytest.raises(BeanConfigError):
            FloatProperty("f").validate("B", float("nan"))

    def test_non_number_rejected(self):
        with pytest.raises(BeanConfigError):
            FloatProperty("f").validate("B", "fast")


class TestBoolProperty:
    def test_accepts_bool_and_01(self):
        p = BoolProperty("en")
        assert p.validate("B", True) is True
        assert p.validate("B", 0) is False

    def test_rejects_other(self):
        with pytest.raises(BeanConfigError):
            BoolProperty("en").validate("B", "yes")


class TestDerivedProperty:
    def test_read_only(self):
        p = DerivedProperty("achieved")
        with pytest.raises(BeanConfigError, match="read-only"):
            p.validate("B", 1.0)

    def test_describe_all(self):
        for p in (
            EnumProperty("a", [1]),
            IntProperty("b"),
            FloatProperty("c"),
            BoolProperty("d"),
            DerivedProperty("e"),
        ):
            assert isinstance(p.describe(), str) and p.describe()
