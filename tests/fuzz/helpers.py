"""Helpers shared by the fuzz tests and their subprocess probes."""

import hashlib
import json

from repro.faults import BurstErrors, FaultPlan, LineDropout, derive_rng
from repro.fuzz.mutate import MutationConfig, PlanMutator
from repro.fuzz.signature import TraceSignature, signature_hash


def lineage_digest(seed: int = 17, steps: int = 40) -> str:
    """One digest over everything the fuzzer derives from its seed:
    fault-model byte streams, the mutation lineage, and the signature
    hashes of synthetic fingerprints built from that lineage.  Any
    ``PYTHONHASHSEED`` leak in the chain changes the digest."""
    payload = {"rng": [], "lineage": [], "sig_hashes": []}

    # fault-model streams through derive_rng (the campaign contract)
    burst = BurstErrors(start=0.0, duration=1.0, rate=0.5)
    burst.reseed_from(derive_rng(seed, 0))
    payload["rng"] = [burst.apply_byte(0.5, b) for b in range(32)]

    # the mutation lineage
    mut = PlanMutator(
        seed, MutationConfig(t_final=0.2, sensor_blocks=("QD1",))
    )
    plan = FaultPlan(
        [
            BurstErrors(start=0.02, duration=0.05, rate=0.2),
            LineDropout(start=0.1, duration=0.02),
        ],
        seed=7,
    )
    for _ in range(steps):
        plan, op = mut.mutate(plan)
        doc = plan.to_dict()
        payload["lineage"].append({"op": op, "plan": doc})
        sig = TraceSignature(
            events=(("link.retransmit", len(doc["faults"]), 1),),
            counts={"retransmits": len(doc["faults"])},
            health="stressed",
            iae_band=4,
            profile=(7, 4, 2),
        )
        payload["sig_hashes"].append(signature_hash(sig))

    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()
