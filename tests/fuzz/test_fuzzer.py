"""End-to-end fuzzing: determinism, novelty, observability, replay.

Runs use a down-scoped "servo-mini" target (short horizon, two-plan
seed grid) so the whole file stays in single-digit seconds; the pinned
full-servo corpus has its own replay test.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.faults import BurstErrors, FaultPlan, LineDropout
from repro.fuzz import (
    Corpus,
    FuzzConfig,
    Fuzzer,
    FuzzTarget,
    get_target,
    register_target,
    replay_corpus,
    replay_entry,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import Tracer, use_tracer
from repro.sim import LossPolicy, PILSimulator

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _mini_pil() -> PILSimulator:
    sm = build_servo_model(ServoConfig(setpoint=100.0))
    app = PEERTTarget(sm.model).build()
    return PILSimulator(
        app,
        baud=460800,
        plant_dt=1e-4,
        reliable=True,
        loss_policy=LossPolicy(mode="safe", max_consecutive=5, default_safe=0.5),
        watchdog_timeout=8e-3,
    )


def _mini_grid() -> list:
    return [
        FaultPlan([BurstErrors(start=0.01, duration=0.03, rate=0.3)], seed=21),
        FaultPlan([LineDropout(start=0.03, duration=0.015)], seed=22),
    ]


register_target(
    FuzzTarget(
        name="servo-mini",
        make_pil=_mini_pil,
        t_final=0.08,
        reference=100.0,
        signal="speed",
        sensor_blocks=("QD1",),
        seed_grid=_mini_grid,
    )
)


def _config(**kw) -> FuzzConfig:
    defaults = dict(
        target="servo-mini", seed=5, generation_size=3, generations=2
    )
    defaults.update(kw)
    return FuzzConfig(**defaults)


def _run(corpus=None, **kw):
    fuzzer = Fuzzer(_config(**kw), corpus=corpus if corpus is not None else Corpus())
    stats = fuzzer.run()
    return fuzzer, stats


class TestCampaign:
    def test_finds_novel_signatures(self):
        fuzzer, stats = _run()
        # seed gen: clean + 2 grid plans; gen 1: 3 mutants
        assert stats.candidates == 6
        assert stats.generations == 2
        assert stats.novel >= 3
        assert len(fuzzer.corpus) == stats.novel
        assert stats.stop_reason == "generations(2)"

    def test_fixed_seed_is_fully_deterministic(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        _, sa = _run(corpus=Corpus(tmp_path / "a"))
        _, sb = _run(corpus=Corpus(tmp_path / "b"))
        assert sa.sig_hashes == sb.sig_hashes
        files_a = {p.name: p.read_bytes() for p in (tmp_path / "a").glob("*.json")}
        files_b = {p.name: p.read_bytes() for p in (tmp_path / "b").glob("*.json")}
        assert files_a == files_b

    def test_different_seeds_diverge(self):
        _, sa = _run(seed=5)
        _, sb = _run(seed=6)
        assert sa.sig_hashes[:3] == sb.sig_hashes[:3]  # same seed grid
        assert sa.sig_hashes != sb.sig_hashes

    def test_seed_generation_rerun_adds_nothing(self, tmp_path):
        """The seed generation depends only on the target's grid, never
        on corpus state — re-running it over a populated corpus must
        find zero novelty.  (Later generations are *supposed* to differ
        on a grown corpus: parent selection reads it.)"""
        corpus = Corpus(tmp_path)
        _, first = _run(corpus=corpus, generations=1)
        before = len(corpus)
        _, again = _run(corpus=corpus, generations=1)
        assert again.novel == 0
        assert len(corpus) == before

    def test_continuation_explores_beyond_first_run(self, tmp_path):
        """A rerun over the grown corpus is a continuation: candidates
        mutate from a richer parent pool and may pin new corners, but
        never duplicate existing hashes."""
        corpus = Corpus(tmp_path)
        _, first = _run(corpus=corpus)
        seen = set(corpus.entries)
        _, again = _run(corpus=corpus)
        assert set(again.sig_hashes).isdisjoint(seen)
        assert len(corpus) == len(seen) + again.novel

    def test_max_candidates_stop(self):
        _, stats = _run(generations=None, max_candidates=4)
        # stop criteria are generation-boundary checks: the seed
        # generation (3 candidates) runs whole, then one more generation
        assert stats.candidates == 6
        assert stats.stop_reason == "max_candidates(4)"

    def test_counters_and_spans(self):
        tracer = Tracer(capacity=65536, enabled=True)
        reg = get_registry()
        with use_tracer(tracer):
            _, stats = _run()
        assert reg.counter("fuzz_candidates_total").value >= stats.candidates
        assert reg.counter("fuzz_novel_signatures_total").value >= stats.novel
        names = [e["name"] for e in tracer.events()]
        assert names.count("fuzz.generation") == 2
        assert names.count("fuzz.run") == 1
        assert names.count("fuzz.candidate") == stats.candidates
        run_span = next(e for e in tracer.events() if e["name"] == "fuzz.run")
        assert run_span["args"]["candidates"] == stats.candidates
        assert run_span["args"]["novel"] == stats.novel

    def test_config_validation(self):
        with pytest.raises(ValueError, match="stop criterion"):
            FuzzConfig(target="servo-mini", generations=None)
        with pytest.raises(ValueError):
            FuzzConfig(generation_size=0, generations=1)
        with pytest.raises(KeyError, match="unknown fuzz target"):
            Fuzzer(FuzzConfig(target="nope", generations=1))


class TestReplay:
    def test_corpus_replays_bit_identically(self, tmp_path):
        corpus = Corpus(tmp_path)
        _run(corpus=corpus)
        results = replay_corpus(corpus)
        assert len(results) == len(corpus)
        assert all(r.ok for r in results.values())

    def test_replay_detects_behaviour_drift(self, tmp_path):
        corpus = Corpus(tmp_path)
        _run(corpus=corpus)
        entry = next(
            e for e in corpus if e.plan["faults"]
        )
        # sabotage: claim the corner happened 30 ms later than it did
        entry.plan["faults"][0]["start"] += 0.03
        result = replay_entry(entry)
        assert not result.ok
        assert entry.sig_hash in result.diff(entry)

    def test_replay_pins_its_own_horizon(self, tmp_path):
        corpus = Corpus(tmp_path)
        _run(corpus=corpus)
        entry = next(iter(corpus))
        assert entry.t_final == get_target("servo-mini").t_final
        assert replay_entry(entry).ok


class TestHashSeedIndependence:
    def test_mutation_stream_and_hashes_survive_hash_randomization(self):
        """Satellite pin: the whole derivation chain — derive_rng seeding,
        mutation op selection, plan serialization, signature hashing —
        must be pure integer/float arithmetic.  A child interpreter with
        a perturbed PYTHONHASHSEED must reproduce the parent's lineage
        digest exactly."""
        code = (
            "import sys, json, hashlib; "
            "sys.path.insert(0, sys.argv[1]); sys.path.insert(0, sys.argv[2]); "
            "from tests.fuzz.helpers import lineage_digest; "
            "print(lineage_digest())"
        )
        from tests.fuzz.helpers import lineage_digest

        parent = lineage_digest()
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "4242"  # perturb str hashing on purpose
        out = subprocess.run(
            [sys.executable, "-c", code, SRC, os.path.join(SRC, "..")],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == parent
