"""The pinned regression corpus: every corner the fixed-seed servo fuzz
run discovered, re-executed bit-identically.

``tests/fuzz/corpus/`` holds the content-addressed entries produced by
``python -m repro.fuzz run --model servo --seed 0 --generations 3``.
Each file re-runs here through the same execution path the fuzzer used;
a signature mismatch means observable fault behaviour changed.  If a
change is *intentional* (new obs instants, altered ARQ policy, …),
regenerate the corpus with that exact command and commit the new files
— never relax this test.
"""

import collections

import pytest

from repro.fuzz import Corpus, replay_entry

CORPUS_DIR = __file__.rsplit("/", 1)[0] + "/corpus"

CORPUS = Corpus.load(CORPUS_DIR)
ENTRIES = sorted(CORPUS, key=lambda e: e.sig_hash)


class TestCorpusShape:
    def test_meets_novelty_floor(self):
        """The acceptance floor: >= 5 distinct signatures, all servo."""
        assert len(CORPUS) >= 5
        assert all(e.target == "servo" for e in CORPUS)
        assert len({e.sig_hash for e in CORPUS}) == len(CORPUS)

    def test_covers_every_fault_family(self):
        kinds = set()
        for e in CORPUS:
            for f in e.plan["faults"]:
                kinds.add(f["type"])
        assert kinds == {
            "BurstErrors", "LineDropout", "StuckSensor", "StepOverrun"
        }

    def test_covers_multiple_health_bands(self):
        bands = collections.Counter(e.signature.health for e in CORPUS)
        assert len(bands) >= 3
        assert "diverged" in bands  # the fuzzer found a divergence corner

    def test_includes_mutated_discoveries(self):
        """Not just the seed grid: later generations pinned corners too."""
        ops = {e.op for e in CORPUS}
        assert "seed" in ops
        assert len(ops - {"seed"}) >= 2
        assert any(e.generation > 0 for e in CORPUS)

    def test_entries_pin_their_provenance(self):
        for e in CORPUS:
            assert e.fuzz_seed == 0
            assert e.t_final == pytest.approx(0.2)


class TestBitIdenticalReplay:
    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=lambda e: f"{e.sig_hash}-{e.op}"
    )
    def test_replays_bit_identically(self, entry):
        result = replay_entry(entry)
        assert result.ok, result.diff(entry)
