"""Corpus persistence: content addressing, round-trips, minimization."""

import json

import pytest

from repro.faults import BurstErrors, FaultPlan, LineDropout
from repro.fuzz.corpus import CORPUS_SCHEMA, Corpus, CorpusEntry
from repro.fuzz.signature import TraceSignature


def _entry(bucket: int = 0, health: str = "stressed", **kw) -> CorpusEntry:
    plan = FaultPlan(
        [BurstErrors(start=0.01 * (bucket + 1), duration=0.05, rate=0.2)],
        seed=bucket,
    )
    sig = TraceSignature(
        events=(("link.retransmit", bucket, 1),),
        counts={"retransmits": 1},
        health=health,
        iae_band=4,
        profile=(7, 4),
    )
    defaults = dict(
        target="servo", plan=plan.to_dict(), signature=sig, t_final=0.2
    )
    defaults.update(kw)
    return CorpusEntry(**defaults)


class TestEntry:
    def test_hash_fills_from_signature(self):
        e = _entry()
        assert e.sig_hash == e.signature.hash

    def test_round_trip(self):
        e = _entry(metrics={"iae": 17.2}, generation=3, parent="abc", op="shift")
        back = CorpusEntry.from_dict(json.loads(e.dumps()))
        assert back.to_dict() == e.to_dict()
        assert back.fault_plan() == e.fault_plan()
        assert back.t_final == 0.2

    def test_dumps_is_canonical(self):
        assert _entry().dumps() == _entry().dumps()
        assert _entry().dumps().endswith("\n")

    def test_schema_guard(self):
        doc = _entry().to_dict()
        doc["schema"] = CORPUS_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            CorpusEntry.from_dict(doc)


class TestCorpus:
    def test_add_deduplicates_by_signature(self):
        c = Corpus()
        assert c.add(_entry(0))
        assert not c.add(_entry(0))  # same signature -> same hash
        assert c.add(_entry(1))
        assert len(c) == 2
        assert _entry(0).sig_hash in c

    def test_write_and_load_round_trip(self, tmp_path):
        c = Corpus(tmp_path)
        for b in range(3):
            c.add(_entry(b))
        loaded = Corpus.load(tmp_path)
        assert len(loaded) == 3
        assert {e.sig_hash for e in loaded} == {e.sig_hash for e in c}
        # files are named by their content address
        for e in loaded:
            assert (tmp_path / f"{e.sig_hash}.json").exists()

    def test_load_rejects_tampered_content(self, tmp_path):
        c = Corpus(tmp_path)
        e = _entry(0)
        c.add(e)
        path = c.path_of(e.sig_hash)
        doc = json.loads(path.read_text())
        doc["signature"]["iae_band"] = 60  # behaviour edit, stale name
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="content address"):
            Corpus.load(tmp_path)

    def test_in_memory_corpus_needs_no_directory(self):
        c = Corpus()
        assert c.add(_entry(0), write=True)  # write is a no-op without root
        with pytest.raises(ValueError):
            c.path_of("deadbeef")

    def test_insertion_order_preserved(self):
        c = Corpus()
        hashes = []
        for b in (5, 1, 3):
            e = _entry(b)
            c.add(e)
            hashes.append(e.sig_hash)
        assert [e.sig_hash for e in c] == hashes


class TestMinimize:
    def test_distinct_coverage_all_kept(self):
        c = Corpus()
        a = _entry(0)
        b = _entry(1)  # different bucket -> different event atom
        c.add(a)
        c.add(b)
        kept, dropped = c.minimize()
        assert {e.sig_hash for e in kept} == {a.sig_hash, b.sig_hash}
        assert dropped == []

    def test_set_cover_keeps_union_coverage(self):
        c = Corpus()
        wide = _entry(0)
        wide.signature = TraceSignature(
            events=(("link.retransmit", 0, 1), ("link.nak", 1, 1)),
            counts={"retransmits": 1, "naks": 1},
            health="stressed",
            iae_band=4,
        )
        wide.sig_hash = wide.signature.hash
        narrow = _entry(1)
        narrow.signature = TraceSignature(
            events=(("link.retransmit", 0, 1),),
            counts={"retransmits": 1},
            health="stressed",
            iae_band=4,
        )
        narrow.sig_hash = narrow.signature.hash
        c.add(wide)
        c.add(narrow)
        kept, dropped = c.minimize()
        assert [e.sig_hash for e in kept] == [wide.sig_hash]
        assert [e.sig_hash for e in dropped] == [narrow.sig_hash]

    def test_apply_minimize_deletes_files(self, tmp_path):
        c = Corpus(tmp_path)
        wide = _entry(0)
        wide.signature = TraceSignature(
            events=(("link.retransmit", 0, 1), ("link.nak", 1, 1)),
            counts={}, health="stressed", iae_band=4,
        )
        wide.sig_hash = wide.signature.hash
        narrow = _entry(1)
        narrow.signature = TraceSignature(
            events=(("link.nak", 1, 1),),
            counts={}, health="stressed", iae_band=4,
        )
        narrow.sig_hash = narrow.signature.hash
        c.add(wide)
        c.add(narrow)
        n_kept, n_dropped = c.apply_minimize()
        assert (n_kept, n_dropped) == (1, 1)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_describe_lists_every_entry(self):
        c = Corpus()
        c.add(_entry(0))
        c.add(_entry(1))
        lines = list(c.describe())
        assert len(lines) == 2
        assert all("BurstErrors" in line for line in lines)
