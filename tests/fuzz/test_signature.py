"""Trace-signature extraction: banding, canonical ordering, hashing."""

import numpy as np
import pytest

from repro.fuzz.signature import (
    FAILURE_INSTANTS,
    SignatureConfig,
    TraceSignature,
    _band,
    _iae_band,
    extract_signature,
    signature_hash,
)
from repro.sim.pil import PILResult


class _FakeTrajectory:
    """Just enough of a SimulationResult for scoring: ``.t`` + signal."""

    def __init__(self, t, y):
        self.t = np.asarray(t, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.float64)

    def __getitem__(self, signal):
        return self._y


def _result(t=None, y=None, **ledger) -> PILResult:
    if t is None:
        t = np.linspace(0.0, 0.1, 101)
    if y is None:
        y = np.full(len(t), 100.0)
    return PILResult(
        result=_FakeTrajectory(t, y),
        control_period=1e-3,
        bytes_to_mcu=0,
        bytes_to_host=0,
        crc_errors=0,
        steps=len(t),
        **ledger,
    )


def _instant(name, sim_t, ph="i"):
    return {"ph": ph, "name": name, "sim_t": sim_t, "args": {}}


class TestBanding:
    def test_log2_count_bands(self):
        assert _band(0) == 0
        assert _band(1) == 1
        assert _band(2) == 2
        assert _band(3) == 2
        assert _band(4) == 3
        assert _band(7) == 3
        assert _band(8) == 4
        assert _band(1000) == 10

    def test_iae_band_monotone_and_clamped(self):
        assert _iae_band(0.0) == -64
        assert _iae_band(float("nan")) == -64
        assert _iae_band(1.0) == 0
        assert _iae_band(2.5) == 1
        assert _iae_band(16.0) == 4
        assert _iae_band(31.9) == 4
        assert _iae_band(1e300) == 64


class TestExtraction:
    def test_clean_run_is_quiet(self):
        sig = extract_signature([], _result(), reference=100.0)
        assert sig.events == ()
        assert sig.health == "nominal"
        assert all(v == 0 for v in sig.counts.values())

    def test_event_cells_bucket_and_order_canonically(self):
        cfg = SignatureConfig(time_bucket=0.025)
        # emission order scrambled on purpose; two retransmits land in
        # the same bucket and must fold into one banded cell
        events = [
            _instant("link.timeout", 0.051),
            _instant("link.retransmit", 0.010),
            _instant("link.retransmit", 0.012),
            _instant("link.retransmit", 0.090),
        ]
        sig = extract_signature(
            events, _result(retransmits=3, arq_timeouts=1, reliable=True),
            reference=100.0, config=cfg,
        )
        assert sig.events == (
            ("link.retransmit", 0, 2),   # 2 hits in bucket 0 -> band 2
            ("link.timeout", 2, 1),
            ("link.retransmit", 3, 1),
        )

    def test_spans_and_unlisted_instants_excluded(self):
        events = [
            _instant("link.retransmit", 0.01, ph="X"),  # a span, not instant
            _instant("link.send", 0.01),                # happy path
            _instant("link.data_latency", 0.01),        # happy path
        ]
        sig = extract_signature(events, _result(), reference=100.0)
        assert sig.events == ()

    def test_missing_sim_time_goes_to_sentinel_bucket(self):
        sig = extract_signature(
            [_instant("pil.recovery", None)],
            _result(recoveries=1, reliable=True),
            reference=100.0,
        )
        assert sig.events == (("pil.recovery", -1, 1),)

    def test_ledger_counts_banded(self):
        sig = extract_signature(
            [], _result(retransmits=9, recoveries=1, reliable=True),
            reference=100.0,
        )
        assert sig.counts["retransmits"] == 4
        assert sig.counts["recoveries"] == 1
        assert sig.counts["send_failures"] == 0

    def test_health_band_ladder(self):
        mk = lambda **kw: extract_signature([], _result(**kw), reference=100.0)
        assert mk().health == "nominal"
        assert mk(retransmits=2, reliable=True).health == "stressed"
        assert mk(safe_state_steps=4, reliable=True).health == "degraded"
        assert mk(recoveries=1, reliable=True).health == "recovering"

    def test_error_profile_tracks_trajectory_shape(self):
        t = np.linspace(0.0, 0.1, 1001)
        flat = np.full_like(t, 100.0)
        # perfect tracking in the first half, a 40-unit sag in the second
        sag = flat.copy()
        sag[t >= 0.05] = 60.0
        a = extract_signature([], _result(t=t, y=flat), reference=100.0)
        b = extract_signature([], _result(t=t, y=sag), reference=100.0)
        # 0.1 s / 0.025 s buckets, plus the boundary sample's own bucket
        assert len(a.profile) == 5
        assert a.profile != b.profile
        assert b.profile[-1] == _iae_band(40.0)

    def test_plant_only_fault_changes_hash(self):
        """A corner with zero link events must still be distinguishable —
        the plant-side profile layer is what separates e.g. a stuck
        sensor from the nominal run."""
        t = np.linspace(0.0, 0.1, 1001)
        clean = extract_signature(
            [], _result(t=t, y=np.full_like(t, 100.0)), reference=100.0
        )
        stuck = extract_signature(
            [], _result(t=t, y=np.full_like(t, 70.0)), reference=100.0
        )
        assert clean.events == stuck.events == ()
        assert signature_hash(clean) != signature_hash(stuck)


class TestHashing:
    def test_hash_is_content_addressed(self):
        a = TraceSignature(events=(("link.nak", 1, 1),), counts={"naks": 1})
        b = TraceSignature(events=(("link.nak", 1, 1),), counts={"naks": 1})
        c = TraceSignature(events=(("link.nak", 2, 1),), counts={"naks": 1})
        assert signature_hash(a) == signature_hash(b) == a.hash
        assert signature_hash(a) != signature_hash(c)
        assert len(a.hash) == 16

    def test_config_is_part_of_the_hash(self):
        a = TraceSignature()
        b = TraceSignature(config=SignatureConfig(time_bucket=0.05))
        assert signature_hash(a) != signature_hash(b)

    def test_round_trip_preserves_hash(self):
        sig = TraceSignature(
            events=(("link.retransmit", 0, 2), ("pil.recovery", 3, 1)),
            counts={"retransmits": 2, "recoveries": 1},
            health="recovering",
            iae_band=4,
            profile=(7, 6, 4, 1),
        )
        back = TraceSignature.from_dict(sig.to_dict())
        assert back == sig
        assert back.hash == sig.hash

    def test_schema_mismatch_raises(self):
        doc = TraceSignature().to_dict()
        doc["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            TraceSignature.from_dict(doc)

    def test_default_taxonomy_is_failure_only(self):
        assert "link.send" not in FAILURE_INSTANTS
        assert "link.acked" not in FAILURE_INSTANTS
        assert "link.retransmit" in FAILURE_INSTANTS
        assert "pil.recovery" in FAILURE_INSTANTS
