"""Plan mutation: determinism, validity, and search-space bounds."""

import json

import pytest

from repro.faults import (
    BurstErrors,
    FaultPlan,
    LineDropout,
    StepOverrun,
    StuckSensor,
)
from repro.fuzz.mutate import MUTATION_OPS, MutationConfig, PlanMutator

CFG = MutationConfig(t_final=0.2, max_faults=4, sensor_blocks=("QD1",))


def _base_plan() -> FaultPlan:
    return FaultPlan(
        [
            BurstErrors(start=0.02, duration=0.05, rate=0.2),
            LineDropout(start=0.1, duration=0.02),
        ],
        seed=7,
    )


def _lineage(seed: int, steps: int = 30) -> list:
    """A deterministic chain: each mutant becomes the next parent."""
    mut = PlanMutator(seed, CFG)
    plan, docs = _base_plan(), []
    mate = FaultPlan([StepOverrun(start=0.05, duration=0.03, factor=8.0)], seed=3)
    for _ in range(steps):
        plan, op = mut.mutate(plan, mate=mate)
        docs.append({"op": op, "plan": plan.to_dict()})
    return docs


class TestDeterminism:
    def test_same_seed_same_lineage(self):
        assert _lineage(11) == _lineage(11)

    def test_different_seed_different_lineage(self):
        assert _lineage(11) != _lineage(12)

    def test_lineage_serializes_canonically(self):
        a = json.dumps(_lineage(5), sort_keys=True)
        b = json.dumps(_lineage(5), sort_keys=True)
        assert a == b


class TestValidity:
    def test_mutants_always_reconstruct_through_real_constructors(self):
        """300 chained mutants, all within constructor validation."""
        for doc in _lineage(1, steps=300):
            plan = FaultPlan.from_dict(doc["plan"])
            for f in plan.faults:
                assert f.start >= 0.0
                assert f.duration >= 0.0
                if isinstance(f, BurstErrors):
                    assert 0.0 <= f.rate <= 1.0
                if isinstance(f, StepOverrun):
                    assert f.factor >= 1.0
                if isinstance(f, StuckSensor):
                    assert f.block == "QD1"

    def test_ops_come_from_the_table(self):
        ops = {doc["op"] for doc in _lineage(2, steps=200)}
        assert ops <= set(MUTATION_OPS)
        # a long walk should exercise most of the table
        assert len(ops) >= 5

    def test_max_faults_respected(self):
        for doc in _lineage(3, steps=300):
            assert len(doc["plan"]["faults"]) <= CFG.max_faults

    def test_empty_plan_can_only_spawn_or_reseed(self):
        mut = PlanMutator(9, CFG)
        for _ in range(20):
            mutant, op = mut.mutate(FaultPlan([], seed=0))
            assert op in ("spawn", "reseed")
            if op == "spawn":
                assert len(mutant.faults) == 1

    def test_no_crossover_without_mate(self):
        mut = PlanMutator(4, CFG)
        for _ in range(100):
            _, op = mut.mutate(_base_plan(), mate=None)
            assert op != "crossover"

    def test_crossover_splices_from_mate(self):
        mut = PlanMutator(0, CFG)
        mate = FaultPlan(
            [StepOverrun(start=0.05, duration=0.03, factor=8.0)], seed=3
        )
        for _ in range(200):
            mutant, op = mut.mutate(_base_plan(), mate=mate)
            if op == "crossover":
                assert any(
                    isinstance(f, StepOverrun) for f in mutant.faults
                )
                return
        pytest.fail("crossover never selected in 200 draws")

    def test_spawn_avoids_stuck_sensor_without_blocks(self):
        cfg = MutationConfig(t_final=0.2, sensor_blocks=())
        mut = PlanMutator(6, cfg)
        for _ in range(100):
            mutant, op = mut.mutate(FaultPlan([], seed=0))
            assert not any(isinstance(f, StuckSensor) for f in mutant.faults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MutationConfig(t_final=0.0)
        with pytest.raises(ValueError):
            MutationConfig(max_faults=0)
