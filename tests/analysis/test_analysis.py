"""Tests for step metrics, trajectory comparison and stability detection."""

import numpy as np
import pytest

from repro.analysis import (
    StepMetrics,
    iae,
    is_diverging,
    ise,
    itae,
    resample_to,
    step_metrics,
    trajectory_max_error,
    trajectory_rmse,
)


def first_order_step(tau=0.1, final=1.0, t_end=1.0, n=1001):
    t = np.linspace(0, t_end, n)
    return t, final * (1 - np.exp(-t / tau))


class TestStepMetrics:
    def test_first_order_rise_time(self):
        t, y = first_order_step(tau=0.1)
        m = step_metrics(t, y, reference=1.0)
        # analytic 10-90 rise of a first order lag: tau * ln(9)
        assert m.rise_time == pytest.approx(0.1 * np.log(9), rel=0.05)

    def test_first_order_no_overshoot(self):
        t, y = first_order_step()
        m = step_metrics(t, y, reference=1.0)
        assert m.overshoot_pct < 1.0

    def test_underdamped_overshoot(self):
        t = np.linspace(0, 5, 2001)
        wn, zeta = 5.0, 0.3
        wd = wn * np.sqrt(1 - zeta**2)
        y = 1 - np.exp(-zeta * wn * t) * (
            np.cos(wd * t) + zeta / np.sqrt(1 - zeta**2) * np.sin(wd * t)
        )
        m = step_metrics(t, y, reference=1.0)
        expected = 100 * np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert m.overshoot_pct == pytest.approx(expected, rel=0.05)

    def test_settling_time(self):
        t, y = first_order_step(tau=0.1, t_end=2.0, n=4001)
        m = step_metrics(t, y, reference=1.0, settle_band=0.02)
        # 2% settling of a first-order lag is ~4 tau
        assert m.settling_time == pytest.approx(0.4, rel=0.15)

    def test_steady_state_error(self):
        t, y = first_order_step(final=0.9)
        m = step_metrics(t, y, reference=1.0)
        assert m.steady_state_error == pytest.approx(0.1, abs=0.01)

    def test_negative_step(self):
        t, y = first_order_step(final=-2.0)
        m = step_metrics(t, y, reference=-2.0, initial=0.0)
        assert m.rise_time is not None
        assert m.steady_state_error < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            step_metrics(np.arange(3), np.arange(3), reference=1.0)
        t = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            step_metrics(t, t, reference=0.0, initial=0.0)

    def test_summary_string(self):
        t, y = first_order_step()
        assert "rise" in step_metrics(t, y, 1.0).summary()


class TestErrorIntegrals:
    def test_iae_constant_error(self):
        t = np.linspace(0, 2, 201)
        e = np.full_like(t, 0.5)
        assert iae(t, e) == pytest.approx(1.0)

    def test_ise(self):
        t = np.linspace(0, 2, 201)
        e = np.full_like(t, 0.5)
        assert ise(t, e) == pytest.approx(0.5)

    def test_itae_weights_late_error(self):
        t = np.linspace(0, 2, 201)
        early = np.where(t < 1, 1.0, 0.0)
        late = np.where(t >= 1, 1.0, 0.0)
        assert itae(t, late) > itae(t, early)


class TestTrajectoryCompare:
    def test_identical_zero(self):
        t, y = first_order_step()
        assert trajectory_rmse(t, y, t, y) == 0.0
        assert trajectory_max_error(t, y, t, y) == 0.0

    def test_offset_detected(self):
        t, y = first_order_step()
        assert trajectory_rmse(t, y, t, y + 0.1) == pytest.approx(0.1, rel=1e-6)
        assert trajectory_max_error(t, y, t, y + 0.1) == pytest.approx(0.1, rel=1e-6)

    def test_different_grids(self):
        t1, y1 = first_order_step(n=1001)
        t2, y2 = first_order_step(n=313)
        assert trajectory_rmse(t1, y1, t2, y2) < 1e-3

    def test_disjoint_spans_rejected(self):
        t1 = np.linspace(0, 1, 10)
        t2 = np.linspace(2, 3, 10)
        with pytest.raises(ValueError):
            trajectory_rmse(t1, t1, t2, t2)

    def test_resample(self):
        t = np.linspace(0, 1, 11)
        y = t.copy()
        grid = np.array([0.05, 0.5])
        assert np.allclose(resample_to(grid, t, y), grid)


class TestStability:
    def test_converging_is_stable(self):
        t, y = first_order_step()
        assert not is_diverging(t, y, reference=1.0)

    def test_blowup_detected(self):
        t = np.linspace(0, 1, 101)
        y = np.exp(8 * t)
        assert is_diverging(t, y, reference=1.0)

    def test_growing_oscillation_detected(self):
        t = np.linspace(0, 2, 401)
        y = 1.0 + np.exp(1.5 * t) * 0.05 * np.sin(40 * t)
        assert is_diverging(t, y, reference=1.0)

    def test_steady_ripple_is_stable(self):
        t = np.linspace(0, 2, 401)
        y = 1.0 + 0.05 * np.sin(40 * t)
        assert not is_diverging(t, y, reference=1.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            is_diverging(np.arange(4), np.arange(4), 1.0)
