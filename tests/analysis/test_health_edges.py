"""Health/metric edge cases: degenerate traces and all-dropped-frame runs."""

import numpy as np
import pytest

from repro.analysis import iae
from repro.analysis.health import pil_health
from repro.analysis.stability import is_diverging

from tests.service.helpers import make_fake_pil


class TestPilHealthAllDropped:
    """A run where every frame was lost: the plant trace is flat zero and
    the link spent the whole session in the safe state."""

    def test_scored_without_error_and_not_diverged(self):
        r = make_fake_pil(reliable=False).run(0.5)
        report = pil_health(r, reference=99.0)
        assert not report.diverged  # flat zero is sick, not divergent
        assert report.iae == pytest.approx(99.0 * 0.5)
        assert report.max_consecutive_loss == 12
        assert report.safe_state_steps == 12
        assert not report.stable_within(iae_budget=1.0, latency_budget=1e-3)
        assert "stable" in report.summary()

    def test_healthy_run_passes_budgets(self):
        r = make_fake_pil(reliable=True).run(0.5)
        report = pil_health(r, reference=99.0)
        assert report.stable_within(iae_budget=1.0, latency_budget=1e-3)


class TestShortTraces:
    def test_sub_window_trace_is_not_judged_diverging(self):
        """< 9 samples: the envelope heuristic cannot run; pil_health must
        degrade gracefully instead of raising like is_diverging does."""
        r = make_fake_pil(reliable=True, n=4).run(0.5)
        y = r.result["speed"]
        with pytest.raises(ValueError):
            is_diverging(r.result.t, y, 99.0)
        report = pil_health(r, reference=99.0)
        assert report.diverged is False

    def test_explicit_window_override(self):
        r = make_fake_pil(reliable=True).run(0.5)
        t = np.array([0.0, 0.1, 0.2])
        y = np.array([99.0, 99.0, 99.0])
        report = pil_health(r, reference=99.0, t=t, y=y)
        assert report.diverged is False and report.iae == pytest.approx(0.0)


class TestDegenerateIAE:
    def test_empty_arrays(self):
        assert iae(np.array([]), np.array([])) == 0.0

    def test_single_sample(self):
        assert iae(np.array([0.0]), np.array([3.0])) == 0.0

    def test_two_samples_trapezoid(self):
        assert iae(np.array([0.0, 1.0]), np.array([2.0, 4.0])) == pytest.approx(3.0)
