"""Tests for simulator targets and PIL link adapters (paper §8 future work)."""

import pytest

from repro.casestudy import ServoConfig, build_servo_model
from repro.comm import SPIBus
from repro.core import PEERTTarget
from repro.mcu import MCUDevice, MC56F8367
from repro.sim import (
    LINUX_TARGET,
    PILSimulator,
    SimulatorTargetError,
    SPIAdapter,
    XPC_TARGET,
    make_link,
)

T_SHORT = 0.2


def fresh_app():
    sm = build_servo_model(ServoConfig(setpoint=100.0))
    return PEERTTarget(sm.model).build()


class TestSPIBus:
    def test_full_duplex_exchange(self):
        dev = MCUDevice(MC56F8367)
        bus = SPIBus(dev, clock_hz=1e6)
        slave = dev.spi(0)
        slave.connect(bus)
        slave.queue_tx(b"xy")
        got = []
        bus.transfer(b"abc", on_complete=got.append)
        dev.run_for(1e-3)
        assert slave.receive() == b"abc"
        assert got == [b"xy\x00"]  # zero fill past the queued bytes

    def test_master_paces_transfer(self):
        dev = MCUDevice(MC56F8367)
        bus = SPIBus(dev, clock_hz=1e6)  # 8 µs per byte
        dev.spi(0).connect(bus)
        done = []
        bus.transfer(bytes(10), on_complete=lambda rx: done.append(dev.time))
        dev.run_for(50e-6)
        assert not done  # 10 bytes need 80 µs
        dev.run_for(50e-6)
        assert done and done[0] == pytest.approx(80e-6)

    def test_concurrent_transfer_rejected(self):
        dev = MCUDevice(MC56F8367)
        bus = SPIBus(dev, clock_hz=1e6)
        bus.transfer(b"a")
        with pytest.raises(RuntimeError):
            bus.transfer(b"b")

    def test_slave_rx_interrupt(self):
        from repro.mcu import InterruptSource

        dev = MCUDevice(MC56F8367)
        bus = SPIBus(dev, clock_hz=1e6)
        slave = dev.spi(0)
        slave.connect(bus)
        hits = []
        dev.intc.register(
            InterruptSource("spi_rx", priority=1, cycles=20,
                            on_complete=lambda d: hits.append(d.time))
        )
        slave.rx_irq_vector = "spi_rx"
        bus.transfer(b"hello")
        dev.run_for(1e-3)
        assert len(hits) == 1
        assert slave.receive() == b"hello"

    def test_invalid_clock(self):
        dev = MCUDevice(MC56F8367)
        with pytest.raises(ValueError):
            SPIBus(dev, clock_hz=0)


class TestTargetPolicy:
    def test_xpc_is_closed(self):
        app = fresh_app()
        with pytest.raises(SimulatorTargetError, match="closed"):
            PILSimulator(app, link="spi", target=XPC_TARGET)

    def test_xpc_offers_rs232(self):
        app = fresh_app()
        PILSimulator(app, link="rs232", target=XPC_TARGET)  # no raise

    def test_linux_offers_both(self):
        for link in ("rs232", "spi"):
            app = fresh_app()
            PILSimulator(app, link=link, target=LINUX_TARGET)

    def test_unknown_link_kind(self):
        with pytest.raises(ValueError):
            make_link("carrier_pigeon")


class TestSPIPil:
    def test_closed_loop_over_spi(self):
        app = fresh_app()
        pil = PILSimulator(app, link="spi", target=LINUX_TARGET, plant_dt=1e-4)
        r = pil.run(T_SHORT)
        assert r.result.final("speed") == pytest.approx(100.0, abs=10.0)
        assert r.crc_errors == 0

    def test_spi_much_fresher_than_rs232(self):
        app1 = fresh_app()
        spi = PILSimulator(app1, link="spi", target=LINUX_TARGET, plant_dt=1e-4).run(T_SHORT)
        app2 = fresh_app()
        rs = PILSimulator(app2, baud=115200, plant_dt=1e-4).run(T_SHORT)
        assert spi.mean_data_latency < rs.mean_data_latency / 5

    def test_custom_adapter_instance(self):
        app = fresh_app()
        adapter = SPIAdapter(clock_hz=1e6)
        pil = PILSimulator(app, link=adapter, target=LINUX_TARGET, plant_dt=1e-4)
        r = pil.run(T_SHORT)
        assert r.bytes_to_mcu > 0 and r.bytes_to_host > 0
