"""Integration tests for the MIL / HIL / PIL harnesses on the case study.

These are the repository's heaviest tests; durations are kept short (a
few hundred control periods) — full-length runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.analysis import trajectory_rmse
from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.core.blocks import PEBlockMode
from repro.sim import HILSimulator, MILSimulator, PILSimulator, run_mil, split_plant_model

T_SHORT = 0.25  # seconds of simulated closed loop


def fresh_app(**cfg):
    sm = build_servo_model(ServoConfig(**cfg))
    return sm, PEERTTarget(sm.model).build()


class TestSplit:
    def test_proxy_replaces_controller(self):
        sm = build_servo_model(ServoConfig())
        plant_model, proxy = split_plant_model(sm.model, "controller")
        assert "controller" in plant_model.blocks
        assert plant_model.block("controller") is proxy
        assert proxy.n_in == 1 and proxy.n_out == 1
        plant_model.compile(1e-4)  # structurally valid

    def test_original_model_untouched(self):
        sm = build_servo_model(ServoConfig())
        sig = sm.model.structural_signature()
        split_plant_model(sm.model, "controller")
        assert sm.model.structural_signature() == sig

    def test_proxy_holds_actuation(self):
        from repro.model.engine import SimulationOptions, Simulator

        sm = build_servo_model(ServoConfig())
        plant_model, proxy = split_plant_model(sm.model, "controller")
        sim = Simulator(plant_model, SimulationOptions(dt=1e-4, t_final=0.05))
        sim.initialize()
        proxy.set_output(0, 1.0)  # full positive drive
        for _ in range(500):
            sim.advance()
        assert sim.read_input("controller", 0) > 0  # counts accumulated


class TestMIL:
    def test_tracks_setpoint(self):
        sm = build_servo_model(ServoConfig(setpoint=100.0))
        res = run_mil(sm.model, t_final=0.6, dt=1e-4)
        assert res.final("speed") == pytest.approx(100.0, abs=2.0)

    def test_resets_deployed_modes(self):
        sm, app = fresh_app()
        app.deploy(PEBlockMode.HW)
        # after deployment, MIL must flip the blocks back
        mil = MILSimulator(sm.model, dt=1e-4, t_final=0.01)
        assert sm.pwm_block.mode is PEBlockMode.MIL


class TestHIL:
    def test_closed_loop_tracks(self):
        sm, app = fresh_app(setpoint=100.0)
        hil = HILSimulator(app, plant_dt=1e-4)
        res = hil.run(0.6)
        assert res.final("speed") == pytest.approx(100.0, abs=3.0)

    def test_profiler_sees_controller_isr(self):
        sm, app = fresh_app()
        hil = HILSimulator(app, plant_dt=1e-4)
        hil.run(T_SHORT)
        stats = hil.profiler().stats("TI1_OnInterrupt")
        assert stats.count == pytest.approx(T_SHORT / 1e-3, abs=2)
        assert stats.exec_avg > 0

    def test_hil_close_to_mil(self):
        cfg = dict(setpoint=100.0)
        sm1 = build_servo_model(ServoConfig(**cfg))
        mil = run_mil(sm1.model, t_final=T_SHORT, dt=1e-4)
        sm2, app = fresh_app(**cfg)
        hil = HILSimulator(app, plant_dt=1e-4).run(T_SHORT)
        rmse = trajectory_rmse(mil.t, mil["speed"], hil.t, hil["speed"])
        # same controller, same plant; differences only from real sampling
        assert rmse < 5.0

    def test_adc_feedback_variant(self):
        sm, app = fresh_app(setpoint=100.0, feedback="adc")
        res = HILSimulator(app, plant_dt=1e-4).run(0.6)
        assert res.final("speed") == pytest.approx(100.0, abs=5.0)


class TestPIL:
    def test_closed_loop_tracks_over_serial(self):
        sm, app = fresh_app(setpoint=100.0)
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)
        r = pil.run(0.6)
        assert r.result.final("speed") == pytest.approx(100.0, abs=5.0)

    def test_comm_traffic_accounted(self):
        sm, app = fresh_app()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)
        r = pil.run(T_SHORT)
        assert r.steps > 200
        assert r.bytes_per_step == pytest.approx(14.0, abs=1.0)  # 7B each way
        assert r.crc_errors == 0
        assert 0 < r.mean_rtt < 2e-3

    def test_rx_isrs_profiled(self):
        sm, app = fresh_app()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)
        pil.run(T_SHORT)
        stats = pil.profiler().stats("PIL_SCI_rx")
        assert stats.count > 500  # several bytes per period

    def test_slow_baud_increases_sensor_staleness(self):
        # at 9600 baud one 7-byte packet takes ~7.3 ms >> the 1 ms period:
        # sensor data backs up in the host UART and arrives ever later
        sm_fast, app_fast = fresh_app(setpoint=100.0)
        fast = PILSimulator(app_fast, baud=115200, plant_dt=1e-4).run(T_SHORT)
        sm_slow, app_slow = fresh_app(setpoint=100.0)
        slow = PILSimulator(app_slow, baud=9600, plant_dt=1e-4).run(T_SHORT)
        assert slow.mean_data_latency > 5 * fast.mean_data_latency
        assert slow.max_data_latency > 10 * fast.max_data_latency

    def test_line_errors_survivable(self):
        sm, app = fresh_app(setpoint=100.0)
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4, line_error_rate=0.02)
        r = pil.run(T_SHORT)
        assert r.crc_errors > 0  # corruption happened and was detected
        # control survives occasional lost packets (values hold)
        assert np.max(np.abs(r.result["speed"])) < 400

    def test_plant_dt_must_divide_period(self):
        from repro.core.target import TargetError

        sm, app = fresh_app()
        pil = PILSimulator(app, plant_dt=3e-4)
        with pytest.raises(TargetError, match="divide"):
            pil.run(0.01)

    def test_pil_matches_mil_shape(self):
        cfg = dict(setpoint=100.0)
        sm1 = build_servo_model(ServoConfig(**cfg))
        mil = run_mil(sm1.model, t_final=T_SHORT, dt=1e-4)
        sm2, app = fresh_app(**cfg)
        r = PILSimulator(app, baud=115200, plant_dt=1e-4).run(T_SHORT)
        rmse = trajectory_rmse(mil.t, mil["speed"], r.result.t, r.result["speed"])
        # one-period transport delay separates them, not divergence
        assert rmse < 10.0
