"""PIL over a lossy line: loss policies, seq-keyed latency pairing,
ARQ end-to-end behaviour, and watchdog-driven recovery.

`test_cosim.py` exercises the clean-line PIL path; this module covers the
fault-tolerance subsystem on the same servo case study.
"""

import numpy as np
import pytest

from repro.analysis import iae, pil_health
from repro.casestudy import ServoConfig, build_servo_model
from repro.core import PEERTTarget
from repro.core.target import TargetError
from repro.faults import FaultPlan, LineDropout
from repro.sim import LossPolicy, PILSimulator

SETPOINT = 100.0


def fresh_pil(**kw):
    sm = build_servo_model(ServoConfig(setpoint=SETPOINT))
    app = PEERTTarget(sm.model).build()
    kw.setdefault("plant_dt", 1e-4)
    return PILSimulator(app, **kw)


def run_iae(r):
    res = r.result
    return iae(res.t, SETPOINT - np.asarray(res["speed"]))


class TestLossyLine:
    """PILSimulator under nonzero line_error_rate / line_drop_rate."""

    def test_drop_rate_loses_packets_but_loop_survives(self):
        r = fresh_pil(baud=115200, line_drop_rate=0.02).run(0.3)
        assert r.steps > 250
        # some DATA frames never decoded -> fewer latency samples than steps
        assert 0 < len(r.data_latencies) < r.steps
        assert r.max_consecutive_loss >= 1
        # holding last values over short gaps keeps the servo bounded
        assert np.max(np.abs(r.result["speed"])) < 400

    def test_error_rate_detected_by_crc(self):
        r = fresh_pil(baud=115200, line_error_rate=0.05).run(0.3)
        assert r.crc_errors > 0
        assert np.max(np.abs(r.result["speed"])) < 400

    def test_combined_error_and_drop(self):
        r = fresh_pil(
            baud=115200, line_error_rate=0.03, line_drop_rate=0.03
        ).run(0.3)
        assert r.crc_errors > 0
        assert r.max_consecutive_loss >= 1
        assert r.steps > 250


class TestLatencyPairing:
    """Regression: DATA latency is paired by sequence number.

    The old implementation popped the oldest entry of a send-time FIFO on
    every decode, so the first lost packet shifted *every* later pairing
    and reported latency grew by one period per cumulative loss.
    """

    def test_latency_stays_bounded_under_drops(self):
        r = fresh_pil(baud=115200, line_drop_rate=0.05).run(0.3)
        lat = np.asarray(r.data_latencies)
        assert len(lat) > 100              # plenty of frames still decoded
        frame_time = 7 * 10 / 115200       # 7-byte DATA frame on the wire
        # seq pairing: every sample is the true single-frame wire time;
        # FIFO pairing would have grown these past 50x frame_time
        assert lat.max() < 2 * frame_time
        # and in particular no drift between early and late samples
        assert lat[-1] == pytest.approx(lat[0], abs=frame_time)

    def test_clean_line_pairing_matches_wire_time(self):
        r = fresh_pil(baud=115200).run(0.2)
        lat = np.asarray(r.data_latencies)
        assert len(lat) == r.steps + 1
        assert lat.max() == pytest.approx(lat.min(), rel=1e-9)

    def test_decoder_rejects_garbage_length_headers(self):
        # a drop that lands a large value in the LEN slot must not stall
        # the parser waiting for phantom payload bytes (tens of ms)
        r = fresh_pil(baud=115200, line_drop_rate=0.05).run(0.3)
        assert r.max_data_latency < 1e-3   # < one control period


class TestLossPolicy:
    def run_with_dropout(self, mode):
        pil = fresh_pil(
            baud=115200,
            reliable=True,
            watchdog_timeout=8e-3,
            loss_policy=LossPolicy(mode=mode, max_consecutive=5),
        )
        FaultPlan([LineDropout(start=0.1, duration=0.15)], seed=2).attach(pil)
        return pil.run(0.35)

    def duty_at(self, r, t_query):
        t = r.result.t
        return float(r.result["duty"][np.searchsorted(t, t_query)])

    def test_hold_policy_keeps_last_actuation(self):
        r = self.run_with_dropout("hold")
        assert r.safe_state_steps == 0
        # mid-dropout the plant still sees the pre-fault drive level
        assert self.duty_at(r, 0.22) > 0.1

    def test_safe_policy_drops_to_safe_state(self):
        r = self.run_with_dropout("safe")
        assert r.safe_state_steps > 0
        # recovery + policy force the actuation to the safe value (0.0)
        assert self.duty_at(r, 0.22) == pytest.approx(0.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LossPolicy(mode="panic")
        with pytest.raises(ValueError):
            LossPolicy(max_consecutive=0)

    def test_safe_values_per_block(self):
        p = LossPolicy(mode="safe", safe_values={"PWM1": 0.25}, default_safe=0.5)
        assert p.safe_value("PWM1") == 0.25
        assert p.safe_value("OTHER") == 0.5


class TestWatchdog:
    def test_dropout_starves_watchdog_and_recovers(self):
        pil = fresh_pil(baud=115200, reliable=True, watchdog_timeout=8e-3)
        FaultPlan([LineDropout(start=0.1, duration=0.1)], seed=3).attach(pil)
        r = pil.run(0.3)
        assert r.watchdog_resets >= 1
        assert r.recoveries >= 1
        assert r.recoveries == r.watchdog_resets

    def test_clean_run_never_fires_the_dog(self):
        r = fresh_pil(baud=460800, reliable=True, watchdog_timeout=8e-3).run(0.3)
        assert r.watchdog_resets == 0
        assert r.recoveries == 0
        assert r.result.final("speed") == pytest.approx(SETPOINT, abs=5.0)

    def test_timeout_must_exceed_control_period(self):
        pil = fresh_pil(watchdog_timeout=1e-3)  # == the control period
        with pytest.raises(TargetError, match="watchdog_timeout"):
            pil.run(0.01)


class TestReliableLink:
    """ARQ end-to-end on the servo loop (E14's acceptance shape)."""

    ERR = 0.3
    BAUD = 460800  # ACK traffic needs wire headroom inside the 1 ms period

    def test_arq_recovers_what_the_raw_link_loses(self):
        raw = fresh_pil(baud=self.BAUD, line_error_rate=self.ERR).run(0.3)
        rel = fresh_pil(
            baud=self.BAUD, line_error_rate=self.ERR, reliable=True
        ).run(0.3)
        assert rel.retransmits > 0
        assert rel.acks > 0
        assert rel.superseded > 0          # stream semantics active
        # NAK-solicited retransmits land within the control period, so
        # delivered data is never stale...
        assert rel.max_data_latency < 1e-3
        # ...and control quality degrades far less than over the raw link
        assert run_iae(rel) < 0.6 * run_iae(raw)

    def test_reliable_clean_line_costs_nothing_but_acks(self):
        r = fresh_pil(baud=self.BAUD, reliable=True).run(0.3)
        assert r.reliable
        assert r.retransmits == 0
        assert r.send_failures == 0
        assert r.duplicates == 0
        assert r.acks > 0
        assert r.result.final("speed") == pytest.approx(SETPOINT, abs=5.0)

    def test_health_report_scores_a_run(self):
        r = fresh_pil(baud=self.BAUD, line_error_rate=self.ERR, reliable=True).run(0.3)
        rep = pil_health(r, SETPOINT)
        assert rep.reliable
        assert rep.retransmits == r.retransmits
        assert not rep.diverged
        assert rep.stable_within(iae_budget=100.0, latency_budget=0.05)
        assert "rexmit" in rep.summary()

    def test_health_dict_round_trip(self):
        r = fresh_pil(baud=self.BAUD, reliable=True).run(0.1)
        h = r.health()
        assert h["reliable"] is True
        assert set(h) >= {"retransmits", "recoveries", "max_consecutive_loss"}
