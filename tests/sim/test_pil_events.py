"""PIL asynchronous events: host-injected EVENT packets fire the board's
ISRs (paper section 6: "some interrupt service routines are not invoked
by the peripherals but the communication interrupt service routine when a
corresponding event is indicated by the received packet")."""

import pytest

from repro.casestudy import ServoConfig
from repro.control import PIDController, PIDGains, LowPassFilter, QuadratureSpeed
from repro.core import PEERTTarget
from repro.core.blocks import (
    BitIOBlock,
    ProcessorExpertConfig,
    PWMBlock,
    QuadDecBlock,
    TimerIntBlock,
)
from repro.model.graph import Model
from repro.model.library import (
    Constant,
    FunctionCallSubsystem,
    Inport,
    Outport,
    Scope,
    Subsystem,
    Sum,
    UnitDelay,
)
from repro.plants import build_servo_plant
from repro.sim import PILSimulator

TS = 1e-3


def build_model_with_button_isr():
    """Servo whose set-point doubles on a button edge handled in an ISR."""
    cfg = ServoConfig(setpoint=50.0)

    # FC subsystem: each call bumps the set-point offset by +50
    bump = FunctionCallSubsystem("bump_isr")
    b = bump.inner
    one = b.add(Constant("fifty", value=50.0))
    acc = b.add(UnitDelay("acc", sample_time=TS))
    s = b.add(Sum("s", signs="++"))
    out = b.add(Outport("offset", index=0))
    b.connect(one, s, 0, 0)
    b.connect(acc, s, 0, 1)
    b.connect(s, acc)
    b.connect(s, out)

    ctrl = Subsystem("controller")
    c = ctrl.inner
    c.add(ProcessorExpertConfig("PE", chip="MC56F8367"))
    c.add(TimerIntBlock("TI1", period=TS))
    count_in = c.add(Inport("count_in", index=0))
    btn_in = c.add(Inport("btn_in", index=1))
    key = c.add(BitIOBlock("KEY_UP", pin=0, direction="input", edge_irq="rising"))
    c.add(bump)
    qd = c.add(QuadDecBlock("QD1"))
    speed = c.add(QuadratureSpeed("speed", counts_per_rev=400, sample_time=TS))
    filt = c.add(LowPassFilter("filt", cutoff_hz=80.0, sample_time=TS))
    base = c.add(Constant("base_ref", value=0.0))
    ref = c.add(Sum("ref", signs="++"))
    err = c.add(Sum("err", signs="+-"))
    pid = c.add(PIDController("pid", cfg.gains(), TS))
    pwm = c.add(PWMBlock("PWM1", frequency=20e3))
    duty_out = c.add(Outport("duty_out", index=0))
    from repro.model.library import Terminator

    t_key = c.add(Terminator("t_key"))
    c.connect(count_in, qd)
    c.connect(btn_in, key)
    c.connect(key, t_key)
    c.connect(qd, speed)
    c.connect(speed, filt)
    c.connect(bump, ref, 0, 0)
    c.connect(base, ref, 0, 1)
    c.connect(ref, err, 0, 0)
    c.connect(filt, err, 0, 1)
    c.connect(err, pid)
    c.connect(pid, pwm)
    c.connect(pwm, duty_out)
    c.connect_event(key, bump)

    m = Model("servo_btn")
    m.add(ctrl)
    plant = m.add(build_servo_plant())
    load = m.add(Constant("load", value=0.0))
    btn = m.add(Constant("btn", value=0.0))
    sc = m.add(Scope("speed_scope", label="speed"))
    m.connect(plant, ctrl, 0, 0)
    m.connect(btn, ctrl, 0, 1)
    m.connect(ctrl, plant, 0, 0)
    m.connect(load, plant, 0, 1)
    m.connect(plant, sc, 1, 0)
    return m, bump


class TestPILEventInjection:
    def test_event_packet_fires_isr_and_changes_setpoint(self):
        m, bump = build_model_with_button_isr()
        app = PEERTTarget(m).build()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)

        # first button press before the run starts (queued for the first
        # host step); a second press is injected mid-run on the timeline
        pil.trigger_event("KEY_UP")
        orig_setup = pil._setup

        def setup_and_schedule():
            orig_setup()
            pil.device.schedule(0.4, lambda: pil.trigger_event("KEY_UP"))

        pil._setup = setup_and_schedule
        r = pil.run(0.8)

        speeds = r.result
        # first press -> 50 rad/s; second press at ~0.4 s -> 100 rad/s
        assert speeds.at("speed", 0.35) == pytest.approx(50.0, abs=8.0)
        assert speeds.at("speed", 0.78) == pytest.approx(100.0, abs=8.0)

    def test_unknown_event_block_rejected(self):
        m, _ = build_model_with_button_isr()
        app = PEERTTarget(m).build()
        pil = PILSimulator(app, baud=115200, plant_dt=1e-4)
        pil._setup()
        with pytest.raises(ValueError, match="no enabled event"):
            pil.trigger_event("NOPE")
